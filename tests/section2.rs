//! End-to-end reproduction of the paper's Section 2 worked example
//! through the public facade API — every number the example derives,
//! plus the two values our exhaustive search improves on.

use repliflow::exact::{solve_pipeline, Goal};
use repliflow::prelude::*;

fn procs(ids: &[usize]) -> Vec<ProcId> {
    ids.iter().map(|&u| ProcId(u)).collect()
}

#[test]
fn homogeneous_platform_walkthrough() {
    let pipe = Pipeline::new(vec![14, 4, 2, 4]);
    let plat = Platform::homogeneous(3, 1);

    // "mapping S1 to P1, the other three stages to P2 ... leads to the
    // best period Tperiod = 14" (without replication)
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0]), Mode::Replicated),
        Assignment::interval(1, 3, procs(&[1]), Mode::Replicated),
    ]);
    assert_eq!(pipe.period(&plat, &m).unwrap(), Rat::int(14));
    // "the latency is always Tlatency = 24, whatever the mapping"
    assert_eq!(pipe.latency(&plat, &m).unwrap(), Rat::int(24));

    // "a new data set can be input to the platform every 24/3 = 8 time
    // steps" — replicate everything on all three processors
    let m = Mapping::whole(4, procs(&[0, 1, 2]), Mode::Replicated);
    assert_eq!(pipe.period(&plat, &m).unwrap(), Rat::int(8));

    // "replicate only S1 onto P1 and P2 ... Tperiod = max(14/2, 10) = 10"
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::Replicated),
        Assignment::interval(1, 3, procs(&[2]), Mode::Replicated),
    ]);
    assert_eq!(pipe.period(&plat, &m).unwrap(), Rat::int(10));

    // "using a fourth processor ... Tperiod = max(7, 5) = 7"
    let plat4 = Platform::homogeneous(4, 1);
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::Replicated),
        Assignment::interval(1, 3, procs(&[2, 3]), Mode::Replicated),
    ]);
    assert_eq!(pipe.period(&plat4, &m).unwrap(), Rat::int(7));

    // "we can reduce the latency down to Tlatency = 17 by
    // data-parallelizing S1 onto P1 and P2"
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
        Assignment::interval(1, 3, procs(&[2]), Mode::Replicated),
    ]);
    assert_eq!(pipe.latency(&plat, &m).unwrap(), Rat::int(17));
    assert_eq!(pipe.period(&plat, &m).unwrap(), Rat::int(10));
}

#[test]
fn heterogeneous_platform_walkthrough() {
    let pipe = Pipeline::new(vec![14, 4, 2, 4]);
    let plat = Platform::heterogeneous(vec![2, 2, 1, 1]);

    // "if we replicate all stages ... Tperiod = 24/(4·1) = 6"
    let m = Mapping::whole(4, procs(&[0, 1, 2, 3]), Mode::Replicated);
    assert_eq!(pipe.period(&plat, &m).unwrap(), Rat::int(6));

    // "data-parallelize S1 on P1 and P2, and replicate the interval of
    // the remaining three stages onto P3 and P4 ... Tperiod = 5 ...
    // Tlatency = 13.5"
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
        Assignment::interval(1, 3, procs(&[2, 3]), Mode::Replicated),
    ]);
    assert_eq!(pipe.period(&plat, &m).unwrap(), Rat::int(5));
    assert_eq!(pipe.latency(&plat, &m).unwrap(), Rat::new(27, 2));

    // "Tlatency = 14/5 + 10 = 12.8, achieved by data-parallelizing S1 on
    // P1, P2 and P3" — the mapping evaluates as claimed ...
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1, 2]), Mode::DataParallel),
        Assignment::interval(1, 3, procs(&[3]), Mode::Replicated),
    ]);
    assert_eq!(pipe.latency(&plat, &m).unwrap(), Rat::new(64, 5));
}

#[test]
fn paper_example_optimality_claims_are_improved_by_exhaustive_search() {
    // The example claims period 5 and latency 12.8 are optimal "as can be
    // checked by an exhaustive exploration". Our exhaustive exploration
    // (two independent engines) finds strictly better legal mappings.
    let pipe = Pipeline::new(vec![14, 4, 2, 4]);
    let plat = Platform::heterogeneous(vec![2, 2, 1, 1]);

    let best = solve_pipeline(&pipe, &plat, true, Goal::MinPeriod).unwrap();
    assert_eq!(best.period, Rat::new(9, 2)); // 4.5 < 5

    let best = solve_pipeline(&pipe, &plat, true, Goal::MinLatency).unwrap();
    assert_eq!(best.latency, Rat::new(17, 2)); // 8.5 < 12.8

    // the witnesses are plain interval mappings obeying all model rules
    assert!(best.mapping.validate_pipeline(&pipe, &plat, true).is_ok());
}
