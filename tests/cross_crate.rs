//! Cross-crate integration: algorithms, exact solvers, heuristics and the
//! simulator agree with each other through the public facade API.

use repliflow::core::gen::Gen;
use repliflow::exact::{self, Goal};
use repliflow::prelude::*;
use repliflow::{algorithms, heuristics, sim};

#[test]
fn algorithm_exact_simulator_three_way_agreement_pipeline() {
    let mut gen = Gen::new(0x3317);
    for _ in 0..15 {
        let n = gen.size(1, 5);
        let p = gen.size(1, 4);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.hom_platform(p, 1, 4);

        // Theorem 1 algorithm == exact oracle
        let sol = algorithms::hom_pipeline::min_period(&pipe, &plat);
        let oracle = exact::solve_pipeline(&pipe, &plat, true, Goal::MinPeriod).unwrap();
        assert_eq!(sol.period, oracle.period);

        // ... and the simulator sustains exactly that period
        let window = 4 * sim::pipeline::cycle_length(&sol.mapping);
        let report = sim::simulate_pipeline(
            &pipe,
            &plat,
            &sol.mapping,
            sim::Feed::Saturated,
            10 * window + window,
        )
        .unwrap();
        assert_eq!(report.measured_period(window), sol.period);
    }
}

#[test]
fn algorithm_exact_simulator_three_way_agreement_fork() {
    let mut gen = Gen::new(0x3318);
    for _ in 0..15 {
        let leaves = gen.size(0, 4);
        let p = gen.size(1, 4);
        let fork = gen.uniform_fork(leaves, 1, 10);
        let plat = gen.het_platform(p, 1, 5);

        let sol = algorithms::het_fork::min_latency_uniform(&fork, &plat);
        let oracle = exact::solve_fork(&fork, &plat, false, Goal::MinLatency).unwrap();
        assert_eq!(sol.latency, oracle.latency);

        // simulated latency never exceeds the analytic value
        let report = sim::simulate_fork(
            &fork,
            &plat,
            &sol.mapping,
            sim::Feed::Interval(sol.latency + Rat::ONE),
            24,
        )
        .unwrap();
        assert!(report.max_latency() <= sol.latency);
    }
}

#[test]
fn heuristics_are_bounded_by_baselines_and_exact() {
    let mut gen = Gen::new(0x3319);
    for _ in 0..15 {
        let n = gen.size(2, 5);
        let p = gen.size(2, 4);
        let pipe = gen.pipeline(n, 1, 15);
        let plat = gen.het_platform(p, 1, 6);
        let opt = exact::solve_pipeline(&pipe, &plat, false, Goal::MinPeriod)
            .unwrap()
            .period;
        let greedy_m = heuristics::greedy::pipeline_period_greedy(&pipe, &plat);
        let greedy = pipe.period(&plat, &greedy_m).unwrap();
        let wf: Workflow = pipe.clone().into();
        let base_m = heuristics::baselines::fastest_single(&wf, &plat);
        let base = pipe.period(&plat, &base_m).unwrap();
        assert!(opt <= greedy);
        assert!(greedy <= base);
    }
}

#[test]
fn workflow_enum_is_a_uniform_entry_point() {
    let plat = Platform::heterogeneous(vec![3, 2, 1]);
    let shapes: Vec<Workflow> = vec![
        Pipeline::new(vec![5, 7]).into(),
        Fork::new(2, vec![3, 4]).into(),
        ForkJoin::new(2, vec![3, 3], 4).into(),
    ];
    for wf in &shapes {
        let sol = exact::min_period(wf, &plat, true);
        assert_eq!(wf.period(&plat, &sol.mapping).unwrap(), sol.period);
        let sol = exact::min_latency(wf, &plat, true);
        assert_eq!(wf.latency(&plat, &sol.mapping).unwrap(), sol.latency);
    }
}

#[test]
fn problem_instances_round_trip_through_json() {
    let inst = ProblemInstance::new(
        Fork::new(2, vec![3, 4]),
        Platform::heterogeneous(vec![3, 1]),
        true,
        Objective::LatencyUnderPeriod(Rat::new(7, 2)),
    );
    let json = serde_json::to_string_pretty(&inst).unwrap();
    let back: ProblemInstance = serde_json::from_str(&json).unwrap();
    assert_eq!(inst, back);
    // ... and the oracle consumes the deserialized instance directly
    let sol = exact::solve(&back);
    assert!(sol.is_some());
}

#[test]
fn table1_classification_matches_solver_availability() {
    use repliflow::core::instance::Complexity;
    let mut gen = Gen::new(0x331A);
    // every polynomial pipeline cell on hom platforms has a solver whose
    // value the oracle confirms
    for _ in 0..5 {
        let pipe = gen.pipeline(3, 1, 9);
        let plat = gen.hom_platform(3, 1, 3);
        let inst = ProblemInstance::new(pipe.clone(), plat.clone(), true, Objective::Period);
        match inst.variant().paper_complexity() {
            Complexity::Polynomial(thm) => {
                assert_eq!(thm, "Thm 1");
                let sol = algorithms::hom_pipeline::min_period(&pipe, &plat);
                assert_eq!(sol.period, exact::solve(&inst).unwrap().period);
            }
            Complexity::NpHard(_) => panic!("this cell is polynomial"),
        }
    }
}
