#!/usr/bin/env python3
"""Aggregates the `BENCH_pr*.json` CI artifacts into one trend table.

CI's `bench-smoke` job emits one JSON artifact per benchmark family
(per-engine golden wall times, comm-bb wall times, serving throughput,
daemon latency, hedging tails, core raw speed). This script folds every
`BENCH_pr*.json` found in each input directory into:

* a machine-readable trend file (``--out``, default ``BENCH_trend.json``)
  with one row per (label, artifact, metric) triple, and
* a markdown table on stdout (and ``--markdown FILE`` if given) with
  metrics as rows and one column per input directory — so pointing the
  script at several downloaded artifact directories (one per past PR)
  yields a side-by-side trend across PRs, while a single directory
  yields this PR's summary column.

Usage::

    bench_trend.py [--out FILE] [--markdown FILE] [DIR ...]

Each ``DIR`` (default: the current directory) is labeled by its
basename (``.`` becomes ``current``).

**Schema validation is strict and the script hard-fails (exit 1) on any
malformed artifact**: unparseable JSON, a wrong top-level shape, or a
recognized artifact missing a required metric all abort the run with
one error line per problem. A benchmark bin that silently changes its
report schema therefore breaks CI here instead of producing a trend
table with holes. Unrecognized ``BENCH_pr*.json`` files are accepted
(future artifacts must not break old checkouts) but still must parse
and carry at least one numeric metric.
"""

import argparse
import json
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Schema registry: required dotted metric paths per known artifact name.
# `[]` in a path means "every element of this array" (solve batches).
# ---------------------------------------------------------------------------

SOLVE_BATCH_ROW_KEYS = ("file", "engine", "optimality", "wall_time_ms")

OBJECT_SCHEMAS = {
    "BENCH_pr_throughput.json": [
        "requests",
        "cold_solves_per_sec",
        "warm_solves_per_sec",
        "warm_speedup",
        "cache_hit_rate",
        "errors",
    ],
    "BENCH_pr_serve.json": [
        "requests",
        "requests_per_sec",
        "p50_us",
        "p95_us",
        "p99_us",
        "errors",
    ],
    "BENCH_pr_hedge.json": [
        "requests",
        "hedging_off.p99_ms",
        "hedging_on.p99_ms",
        "hedge_stats.races",
    ],
    "BENCH_pr_core.json": [
        "p8_u32_ms",
        "p8_u64_ms",
        "p33_wall_ms",
        "parallel_speedup",
        "parse_speedup",
    ],
}

SOLVE_BATCH_ARTIFACTS = {"BENCH_pr.json", "BENCH_pr_comm_bb.json"}


def lookup(tree, dotted):
    """Resolves a dotted path in nested dicts; None when absent."""
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def numeric_leaves(tree, prefix=""):
    """Every numeric leaf of a nested dict as (dotted_path, value)."""
    rows = []
    if isinstance(tree, dict):
        for key, value in tree.items():
            rows.extend(numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(tree, bool):
        pass
    elif isinstance(tree, (int, float)):
        rows.append((prefix[:-1], tree))
    return rows


def fold_solve_batch(name, data, errors):
    """Headline metrics of a `solve --json` batch artifact."""
    if not isinstance(data, list) or not data:
        errors.append(f"{name}: expected a non-empty JSON array of solve reports")
        return {}
    metrics = {}
    total_wall = 0.0
    max_wall = 0.0
    proven = 0
    for i, row in enumerate(data):
        if not isinstance(row, dict):
            errors.append(f"{name}[{i}]: solve report must be a JSON object")
            return {}
        missing = [k for k in SOLVE_BATCH_ROW_KEYS if k not in row]
        if missing:
            errors.append(f"{name}[{i}]: solve report missing {missing}")
            return {}
        wall = row["wall_time_ms"]
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            errors.append(f"{name}[{i}]: wall_time_ms must be numeric")
            return {}
        total_wall += wall
        max_wall = max(max_wall, wall)
        proven += row["optimality"] == "proven"
    metrics["instances"] = len(data)
    metrics["proven"] = proven
    metrics["total_wall_time_ms"] = round(total_wall, 3)
    metrics["max_wall_time_ms"] = round(max_wall, 3)
    return metrics


def fold_object(name, data, required, errors):
    """Headline metrics of a single-object artifact with a known schema."""
    if not isinstance(data, dict):
        errors.append(f"{name}: expected a JSON object")
        return {}
    metrics = {}
    for path in required:
        value = lookup(data, path)
        if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"{name}: required metric `{path}` is missing or non-numeric")
            continue
        metrics[path] = value
    return metrics


def fold_unknown(name, data, errors):
    """Future artifacts: accept any object/array, keep numeric leaves."""
    if isinstance(data, list):
        return {"entries": len(data)}
    if isinstance(data, dict):
        metrics = dict(numeric_leaves(data))
        if not metrics:
            errors.append(f"{name}: no numeric metrics found in unrecognized artifact")
        return metrics
    errors.append(f"{name}: expected a JSON object or array at top level")
    return {}


def fold_directory(directory, errors):
    """All BENCH_pr*.json artifacts in one directory → {artifact: {metric: v}}."""
    artifacts = {}
    paths = sorted(directory.glob("BENCH_pr*.json"))
    if not paths:
        errors.append(f"{directory}: no BENCH_pr*.json artifacts found")
        return artifacts
    for path in paths:
        name = path.name
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{name}: unreadable or invalid JSON ({e})")
            continue
        if name in SOLVE_BATCH_ARTIFACTS:
            metrics = fold_solve_batch(name, data, errors)
        elif name in OBJECT_SCHEMAS:
            metrics = fold_object(name, data, OBJECT_SCHEMAS[name], errors)
        else:
            metrics = fold_unknown(name, data, errors)
        if metrics:
            artifacts[name] = metrics
    return artifacts


def fmt(value):
    if isinstance(value, float):
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return f"{value:,}"


def markdown_table(labels, columns):
    """Metrics as rows, one column per label; `-` marks absent cells."""
    keys = []
    for column in columns:
        for artifact, metrics in column.items():
            for metric in metrics:
                key = (artifact, metric)
                if key not in keys:
                    keys.append(key)
    lines = [
        "| artifact | metric | " + " | ".join(labels) + " |",
        "|---|---|" + "---|" * len(labels),
    ]
    for artifact, metric in keys:
        cells = []
        for column in columns:
            value = column.get(artifact, {}).get(metric)
            cells.append("-" if value is None else fmt(value))
        lines.append(f"| {artifact} | {metric} | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dirs", nargs="*", default=["."], metavar="DIR")
    parser.add_argument("--out", default="BENCH_trend.json")
    parser.add_argument("--markdown", default=None)
    args = parser.parse_args()

    errors = []
    labels = []
    columns = []
    for raw in args.dirs:
        directory = Path(raw)
        if not directory.is_dir():
            errors.append(f"{raw}: not a directory")
            continue
        label = directory.resolve().name if raw in (".", "./") else directory.name
        labels.append(label or "current")
        columns.append(fold_directory(directory, errors))

    if errors:
        for line in sorted(set(errors)):
            print(f"error: {line}", file=sys.stderr)
        return 1

    rows = [
        {"label": label, "artifact": artifact, "metric": metric, "value": value}
        for label, column in zip(labels, columns)
        for artifact, metrics in sorted(column.items())
        for metric, value in metrics.items()
    ]
    trend = {"labels": labels, "rows": rows}
    Path(args.out).write_text(json.dumps(trend, indent=2) + "\n", encoding="utf-8")

    table = markdown_table(labels, columns)
    if args.markdown:
        Path(args.markdown).write_text(table, encoding="utf-8")
    sys.stdout.write(table)
    print(f"\nwrote {args.out} ({len(rows)} trend rows)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
