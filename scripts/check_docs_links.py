#!/usr/bin/env python3
"""Docs link checker: fails CI when README.md or docs/*.md reference
files or CLI flags that do not exist.

Three checks, all against the repository the script lives in:

1. **Markdown links** `[text](target)` with a relative target must
   point at an existing file (anchors are stripped; http(s) links are
   ignored).
2. **Inline repo paths** — any `crates/...`, `docs/...`, `src/...`,
   `examples/...` or `scripts/...` token — must exist on disk, so a
   renamed module or deleted golden file breaks the build instead of
   rotting in prose.
3. **CLI flags** — any `--flag` token (outside fenced ``` blocks only
   when the block is a shell transcript is NOT distinguished; all
   occurrences count) must appear in some Rust source under `crates/`,
   so documented flags are always parsed by a real binary. Flags of
   external tools (cargo) are allowlisted below.

Exit code 0 when everything resolves, 1 otherwise (one line per
failure).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

# Flags documented in prose but owned by external tools, not us.
EXTERNAL_FLAGS = {
    "--release",  # cargo
    "--bin",  # cargo
    "--no-deps",  # cargo doc
    "--test",  # cargo test (integration-test selector)
    "--cfg",  # rustc, via RUSTFLAGS (the loom model-check builds)
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_RE = re.compile(r"\b(?:crates|docs|src|examples|scripts)/[A-Za-z0-9_./-]*[A-Za-z0-9_/-]")
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]+")


def rust_sources() -> str:
    chunks = []
    for path in (ROOT / "crates").rglob("*.rs"):
        chunks.append(path.read_text(encoding="utf-8"))
    return "\n".join(chunks)


def main() -> int:
    failures = []
    sources = rust_sources()
    for doc in DOC_FILES:
        if not doc.exists():
            failures.append(f"{doc.relative_to(ROOT)}: expected doc file is missing")
            continue
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(ROOT)

        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = (doc.parent / target.split("#")[0]).resolve()
            if not path.exists():
                failures.append(f"{rel}: broken link target `{target}`")

        for match in PATH_RE.finditer(text):
            token = match.group(0)
            if not (ROOT / token).exists():
                failures.append(f"{rel}: referenced path `{token}` does not exist")

        for match in FLAG_RE.finditer(text):
            flag = match.group(0)
            if flag in EXTERNAL_FLAGS:
                continue
            if f'"{flag}"' not in sources:
                failures.append(
                    f"{rel}: flag `{flag}` is not parsed by any binary under crates/"
                )

    for failure in sorted(set(failures)):
        print(f"error: {failure}", file=sys.stderr)
    if failures:
        return 1
    checked = ", ".join(str(d.relative_to(ROOT)) for d in DOC_FILES)
    print(f"docs-link check passed ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
