//! NP-hardness, executably: solve a 2-PARTITION instance *by scheduling a
//! workflow* — and watch exhaustive mapping search blow up.
//!
//! Theorem 5's reduction turns any 2-PARTITION instance into a 2-stage
//! homogeneous pipeline on a heterogeneous platform: the pipeline admits
//! latency 2 iff the numbers admit a perfect split. This example walks
//! the reduction in both directions and then measures how exhaustive
//! search scales as the instance grows — the practical shadow of the
//! hardness proof. The solves go through the unified engine API with the
//! exact engine forced (the whole point is exponential search).
//!
//! Run with: `cargo run --release --example np_hardness`

use repliflow::prelude::*;
use repliflow::reductions::{thm5, TwoPartition};
use repliflow::solver::{EnginePref, SolveReport, SolveRequest};
use std::time::Instant;

/// Exhaustive minimum-latency solve of a reduced pipeline instance.
fn exact_min_latency(
    pipeline: &Pipeline,
    platform: &Platform,
) -> repliflow_sync::sync::Arc<SolveReport> {
    let request = SolveRequest::new(ProblemInstance::new(
        pipeline.clone(),
        platform.clone(),
        true,
        Objective::Latency,
    ))
    .engine(EnginePref::Exact);
    repliflow::solver::solve(&request).expect("latency minimization is always feasible")
}

fn main() {
    // A yes-instance: {3, 1, 1, 2, 2, 1} splits into 5 + 5.
    let tp = TwoPartition::new(vec![3, 1, 1, 2, 2, 1]);
    println!("2-PARTITION instance: {:?} (sum {})", tp.values, tp.total());

    // forward direction: a certificate subset becomes an optimal mapping
    let subset = tp.solve().expect("this instance has a perfect split");
    println!("certificate subset: {subset:?}");
    let reduced = thm5::reduce(&tp);
    let mapping = thm5::certificate_mapping(&tp, &subset);
    println!(
        "reduced pipeline: 2 stages x {} on speeds {:?}",
        reduced.pipeline.weight(0),
        reduced.platform.speeds()
    );
    println!(
        "certificate mapping achieves latency {} (bound {})",
        reduced
            .pipeline
            .latency(&reduced.platform, &mapping)
            .unwrap(),
        reduced.latency_bound
    );

    // backward direction: solving the scheduling problem solves the
    // partition problem
    let best = exact_min_latency(&reduced.pipeline, &reduced.platform);
    let best_latency = best.latency.unwrap();
    let best_mapping = best.mapping.clone().unwrap();
    println!(
        "exhaustive mapping search finds latency {} via {}",
        best_latency, best_mapping
    );
    if best_latency <= reduced.latency_bound {
        let extracted = thm5::extract_partition(&tp, &best_mapping)
            .expect("a bound-achieving mapping encodes a split");
        println!("... which decodes back into the partition {extracted:?}");
    }

    // and a no-instance can be *proved* to have no split by scheduling:
    let no = TwoPartition::new(vec![3, 1, 1, 2, 2, 2]); // sum 11, odd
    let reduced = thm5::reduce(&no);
    let best = exact_min_latency(&reduced.pipeline, &reduced.platform);
    println!(
        "\nno-instance {:?}: best achievable latency {} > bound {}",
        no.values,
        best.latency.unwrap(),
        reduced.latency_bound
    );

    // the blow-up: exhaustive search over reduced instances of growing m
    println!("\nexhaustive search runtime on reduced instances (NP-hardness in action):");
    let mut gen = repliflow::core::gen::Gen::new(42);
    for m in [3usize, 4, 5, 6, 7] {
        let tp = TwoPartition::random_yes(&mut gen, m, 9);
        let reduced = thm5::reduce(&tp);
        let t = Instant::now();
        let _ = exact_min_latency(&reduced.pipeline, &reduced.platform);
        println!("  p = {:>2} processors: {:?}", 2 * m, t.elapsed());
    }
    println!("(each +2 processors multiplies the search space by ~3x)");
}
