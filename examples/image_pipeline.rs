//! An image-processing workflow — the application domain the paper's
//! introduction motivates ("pipeline graphs occur in many applications in
//! the domains of image processing, computer vision, query processing").
//!
//! A video analytics pipeline (decode → denoise → segment → extract →
//! encode) runs on a heterogeneous edge cluster: two fast server CPUs and
//! four slower accelerator-less nodes. We want the highest sustainable
//! frame rate whose end-to-end latency stays under a deadline — the
//! bi-criteria problem — and we verify the chosen mapping by *executing*
//! it in the discrete-event simulator.
//!
//! Run with: `cargo run --example image_pipeline`

use repliflow::prelude::*;
use repliflow::{exact, heuristics, sim};

fn main() {
    // Per-frame work of each stage (Mflop): segmentation dominates.
    let pipeline = Pipeline::new(vec![60, 90, 340, 120, 48]);
    // Two fast nodes (speed 4) and four slow ones (speed 1): Mflop/ms.
    let platform = Platform::heterogeneous(vec![4, 4, 1, 1, 1, 1]);

    println!("video pipeline: {:?} Mflop/stage", pipeline.weights());
    println!("cluster speeds: {:?}\n", platform.speeds());

    // This cell of Table 1 (heterogeneous pipeline, heterogeneous
    // platform, period) is NP-hard (Theorem 9) — on this small instance
    // we can still afford the exhaustive solver; production users would
    // call the heuristics below.
    let frontier = exact::pareto_pipeline(&pipeline, &platform, true);
    println!("exact latency/period trade-off ({} points):", frontier.len());
    for point in frontier.points() {
        println!(
            "  period {:>8} ms  latency {:>8} ms   {}",
            format!("{:.2}", point.period.to_f64()),
            format!("{:.2}", point.latency.to_f64()),
            point.mapping
        );
    }

    // Deadline: 400 ms end-to-end. Pick the highest frame rate under it.
    let deadline = Rat::int(400);
    let choice = frontier
        .pick(exact::Goal::MinPeriodUnderLatency(deadline))
        .expect("deadline is achievable");
    println!(
        "\nchosen mapping (max rate under {deadline} ms deadline): {}",
        choice.mapping
    );
    println!(
        "  frame period {} ms  ->  {:.2} frames/s at latency {} ms",
        choice.period,
        1000.0 / choice.period.to_f64(),
        choice.latency
    );

    // A fast heuristic gets close without exhaustive search:
    let greedy = heuristics::greedy::pipeline_period_greedy(&pipeline, &platform);
    println!(
        "\ngreedy heuristic reaches period {} ms (optimum {})",
        pipeline.period(&platform, &greedy).unwrap(),
        frontier.pick(exact::Goal::MinPeriod).unwrap().period,
    );

    // Execute the chosen mapping in the simulator: feed 500 frames at the
    // analytic period and confirm the system sustains it.
    let report = sim::simulate_pipeline(
        &pipeline,
        &platform,
        &choice.mapping,
        sim::Feed::Interval(choice.period),
        500,
    )
    .expect("mapping is valid");
    println!(
        "\nsimulated 500 frames at the analytic period: max observed latency {} ms",
        report.max_latency()
    );
    assert!(report.max_latency() <= choice.latency);
    println!("the analytic promise holds in execution ✓");
}
