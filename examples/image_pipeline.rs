//! An image-processing workflow — the application domain the paper's
//! introduction motivates ("pipeline graphs occur in many applications in
//! the domains of image processing, computer vision, query processing").
//!
//! A video analytics pipeline (decode → denoise → segment → extract →
//! encode) runs on a heterogeneous edge cluster: two fast server CPUs and
//! four slower accelerator-less nodes. We want the highest sustainable
//! frame rate whose end-to-end latency stays under a deadline — the
//! bi-criteria problem — and we verify the chosen mapping by *executing*
//! it in the discrete-event simulator. Every solve goes through the
//! unified `SolveRequest → SolveReport` engine API.
//!
//! Run with: `cargo run --example image_pipeline`

use repliflow::prelude::*;
use repliflow::sim;
use repliflow::solver::{pareto, solve, EnginePref, SolveRequest};

fn main() {
    // Per-frame work of each stage (Mflop): segmentation dominates.
    let pipeline = Pipeline::new(vec![60, 90, 340, 120, 48]);
    // Two fast nodes (speed 4) and four slow ones (speed 1): Mflop/ms.
    let instance = ProblemInstance::new(
        pipeline.clone(),
        Platform::heterogeneous(vec![4, 4, 1, 1, 1, 1]),
        true,
        Objective::Period,
    );
    let platform = instance.platform.clone();

    println!("video pipeline: {:?} Mflop/stage", pipeline.weights());
    println!("cluster speeds: {:?}\n", platform.speeds());

    // This cell of Table 1 (heterogeneous pipeline, heterogeneous
    // platform, period) is NP-hard (Theorem 9) — the registry notices the
    // instance is small enough and auto-routes to the exhaustive engine;
    // production-size instances fall back to the heuristic portfolio.
    let frontier = pareto(&instance);
    println!(
        "exact latency/period trade-off ({} points):",
        frontier.len()
    );
    for point in frontier.points() {
        println!(
            "  period {:>8} ms  latency {:>8} ms   {}",
            format!("{:.2}", point.period.to_f64()),
            format!("{:.2}", point.latency.to_f64()),
            point.mapping
        );
    }

    // Deadline: 400 ms end-to-end. Pick the highest frame rate under it.
    let deadline = Rat::int(400);
    let choice = solve(&SolveRequest::new(ProblemInstance {
        objective: Objective::PeriodUnderLatency(deadline),
        ..instance.clone()
    }))
    .unwrap();
    let choice_mapping = choice.mapping.clone().expect("deadline is achievable");
    let (choice_period, choice_latency) = (choice.period.unwrap(), choice.latency.unwrap());
    println!(
        "\nchosen mapping (max rate under {deadline} ms deadline, {} engine, {} optimum):\n  {}",
        choice.engine_used, choice.optimality, choice_mapping
    );
    println!(
        "  frame period {} ms  ->  {:.2} frames/s at latency {} ms",
        choice_period,
        1000.0 / choice_period.to_f64(),
        choice_latency
    );

    // A fast heuristic gets close without exhaustive search:
    let greedy = solve(&SolveRequest::new(instance.clone()).engine(EnginePref::Heuristic)).unwrap();
    println!(
        "\nheuristic engine reaches period {} ms (exact optimum {})",
        greedy.period.unwrap(),
        frontier.points().first().unwrap().period,
    );

    // Execute the chosen mapping in the simulator: feed 500 frames at the
    // analytic period and confirm the system sustains it.
    let report = sim::simulate_pipeline(
        &pipeline,
        &platform,
        &choice_mapping,
        sim::Feed::Interval(choice_period),
        500,
    )
    .expect("mapping is valid");
    println!(
        "\nsimulated 500 frames at the analytic period: max observed latency {} ms",
        report.max_latency()
    );
    assert!(report.max_latency() <= choice_latency);
    println!("the analytic promise holds in execution ✓");
}
