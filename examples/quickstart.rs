//! Quickstart: map the paper's Section 2 pipeline onto a small cluster
//! and optimize the period, the latency, and a bi-criteria trade-off —
//! all through the unified `SolveRequest → SolveReport` engine API.
//!
//! Run with: `cargo run --example quickstart`

use repliflow::prelude::*;
use repliflow::solver::{pareto, solve, SolveRequest};

fn main() {
    // The 4-stage pipeline of the paper's worked example: stage weights in
    // flops. Stage 1 is a heavy low-level filter, stages 2-4 are lighter.
    // Three identical unit-speed processors.
    let instance = ProblemInstance::new(
        Pipeline::new(vec![14, 4, 2, 4]),
        Platform::homogeneous(3, 1),
        true,
        Objective::Period,
    );

    // --- throughput: the registry classifies the Table 1 cell and runs
    // Theorem 1's algorithm (replicate everything everywhere) ----------
    let by_period = solve(&SolveRequest::new(instance.clone())).unwrap();
    println!(
        "min period  : {}  [{} engine, {} optimum]  via  {}",
        by_period.period.unwrap(),
        by_period.engine_used,
        by_period.optimality,
        by_period.mapping.as_ref().unwrap()
    );

    // --- response time with data-parallel stages: Theorem 3 ------------
    let by_latency = solve(&SolveRequest::new(ProblemInstance {
        objective: Objective::Latency,
        ..instance.clone()
    }))
    .unwrap();
    println!(
        "min latency : {}  via  {}",
        by_latency.latency.unwrap(),
        by_latency.mapping.as_ref().unwrap()
    );

    // --- bi-criteria: best latency while keeping the period <= 10 ------
    let constrained = solve(&SolveRequest::new(ProblemInstance {
        objective: Objective::LatencyUnderPeriod(Rat::int(10)),
        ..instance.clone()
    }))
    .unwrap();
    println!(
        "latency under period<=10: {} (period {})  via  {}",
        constrained.latency.unwrap(),
        constrained.period.unwrap(),
        constrained.mapping.as_ref().unwrap()
    );

    // --- the whole exact trade-off curve (small instances only) --------
    println!("\nexact (period, latency) Pareto frontier:");
    for point in pareto(&instance).points() {
        println!(
            "  period {:>5}  latency {:>5}   {}",
            point.period, point.latency, point.mapping
        );
    }

    // every reported value is a real mapping — the report was already
    // re-validated through the cost model (validate_witness defaults to
    // on), but re-check one by hand:
    assert_eq!(
        instance
            .workflow
            .period(&instance.platform, by_period.mapping.as_ref().unwrap())
            .unwrap(),
        by_period.period.unwrap()
    );
}
