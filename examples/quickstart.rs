//! Quickstart: map the paper's Section 2 pipeline onto a small cluster
//! and optimize the period, the latency, and a bi-criteria trade-off.
//!
//! Run with: `cargo run --example quickstart`

use repliflow::prelude::*;
use repliflow::{algorithms, exact};

fn main() {
    // The 4-stage pipeline of the paper's worked example: stage weights in
    // flops. Stage 1 is a heavy low-level filter, stages 2-4 are lighter.
    let pipeline = Pipeline::new(vec![14, 4, 2, 4]);

    // Three identical unit-speed processors.
    let platform = Platform::homogeneous(3, 1);

    // --- throughput: Theorem 1 — replicate everything everywhere -------
    let by_period = algorithms::hom_pipeline::min_period(&pipeline, &platform);
    println!("min period  : {}  via  {}", by_period.period, by_period.mapping);

    // --- response time with data-parallel stages: Theorem 3 ------------
    let by_latency = algorithms::hom_pipeline::min_latency_dp(&pipeline, &platform);
    println!("min latency : {}  via  {}", by_latency.latency, by_latency.mapping);

    // --- bi-criteria: best latency while keeping the period <= 10 ------
    let constrained = algorithms::hom_pipeline::min_latency_under_period(
        &pipeline,
        &platform,
        Rat::int(10),
    )
    .expect("period 10 is achievable");
    println!(
        "latency under period<=10: {} (period {})  via  {}",
        constrained.latency, constrained.period, constrained.mapping
    );

    // --- the whole exact trade-off curve (small instances only) --------
    println!("\nexact (period, latency) Pareto frontier:");
    let frontier = exact::pareto_pipeline(&pipeline, &platform, true);
    for point in frontier.points() {
        println!("  period {:>5}  latency {:>5}   {}", point.period, point.latency, point.mapping);
    }

    // every reported value is a real mapping — re-check one through the
    // cost model:
    assert_eq!(
        pipeline.period(&platform, &by_period.mapping).unwrap(),
        by_period.period
    );
}
