//! A master-slave scatter/gather workload — the fork / fork-join pattern
//! the paper calls "mandatory to distribute files or databases in
//! master-slave environments" (and Section 6.3's scatter-gather view).
//!
//! A master preprocesses each incoming batch (the root stage), `n` worker
//! tasks analyze independent shards (the leaves), and a reducer merges
//! the results (the join stage). The platform is a heterogeneous cluster;
//! stages cannot be data-parallelized (each shard is opaque), so we are
//! in the Theorem 14 cell — polynomial!
//!
//! Run with: `cargo run --example master_slave`

use repliflow::algorithms::{forkjoin, het_fork};
use repliflow::prelude::*;
use repliflow::sim;

fn main() {
    // 8 identical shard-analysis tasks of 40 units, master setup 12.
    let fork = Fork::uniform(12, 8, 40);
    // One fast head node and four worker nodes.
    let platform = Platform::heterogeneous(vec![8, 3, 3, 2, 2]);

    println!(
        "master-slave fork: root {} + {} shards x {}",
        fork.root_weight(),
        fork.n_leaves(),
        fork.leaf_weights()[0]
    );
    println!("cluster speeds: {:?}\n", platform.speeds());

    // Theorem 14: optimal throughput and response time in polynomial time.
    let by_period = het_fork::min_period_uniform(&fork, &platform);
    println!(
        "max throughput : period {} via {}",
        by_period.period, by_period.mapping
    );
    let by_latency = het_fork::min_latency_uniform(&fork, &platform);
    println!(
        "min response   : latency {} via {}",
        by_latency.latency, by_latency.mapping
    );
    let tradeoff =
        het_fork::min_latency_under_period_uniform(&fork, &platform, by_period.period * Rat::new(3, 2))
            .expect("relaxed period bound is feasible");
    println!(
        "trade-off      : latency {} at period {} (bound = 1.5x optimal period)",
        tradeoff.latency, tradeoff.period
    );

    // Validate the throughput claim by executing 400 batches, saturated.
    let report = sim::simulate_fork(
        &fork,
        &platform,
        &by_period.mapping,
        sim::Feed::Saturated,
        400,
    )
    .expect("mapping is valid");
    let window = 4 * sim::fork::cycle_length(&by_period.mapping);
    println!(
        "\nsimulated steady-state period: {} (analytic {})",
        report.measured_period(window),
        by_period.period
    );
    assert_eq!(report.measured_period(window), by_period.period);

    // Scatter-gather: add a reduction stage and use the Section 6.3
    // fork-join extension.
    let fj = ForkJoin::uniform(12, 8, 40, 20);
    let sol = forkjoin::min_latency_uniform_het(&fj, &platform);
    println!(
        "\nwith a gather stage (fork-join): min latency {} via {}",
        sol.latency, sol.mapping
    );
    let report = sim::simulate_forkjoin(
        &fj,
        &platform,
        &sol.mapping,
        sim::Feed::Interval(sol.latency + Rat::ONE),
        24,
    )
    .expect("mapping is valid");
    println!(
        "simulated max latency: {} (analytic bound {})",
        report.max_latency(),
        sol.latency
    );
    assert!(report.max_latency() <= sol.latency);
}
