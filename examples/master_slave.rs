//! A master-slave scatter/gather workload — the fork / fork-join pattern
//! the paper calls "mandatory to distribute files or databases in
//! master-slave environments" (and Section 6.3's scatter-gather view).
//!
//! A master preprocesses each incoming batch (the root stage), `n` worker
//! tasks analyze independent shards (the leaves), and a reducer merges
//! the results (the join stage). The platform is a heterogeneous cluster;
//! stages cannot be data-parallelized (each shard is opaque), so we are
//! in the Theorem 14 cell — polynomial! The engine registry recognizes
//! this and routes every request to the paper's own algorithm.
//!
//! Run with: `cargo run --example master_slave`

use repliflow::prelude::*;
use repliflow::sim;
use repliflow::solver::{solve, SolveReport, SolveRequest};

fn request(
    workflow: impl Into<Workflow>,
    platform: &Platform,
    objective: Objective,
) -> repliflow_sync::sync::Arc<SolveReport> {
    solve(&SolveRequest::new(ProblemInstance {
        cost_model: repliflow_core::instance::CostModel::Simplified,
        workflow: workflow.into(),
        platform: platform.clone(),
        allow_data_parallel: false,
        objective,
    }))
    .expect("Theorem 14 cells are fully supported")
}

fn main() {
    // 8 identical shard-analysis tasks of 40 units, master setup 12.
    let fork = Fork::uniform(12, 8, 40);
    // One fast head node and four worker nodes.
    let platform = Platform::heterogeneous(vec![8, 3, 3, 2, 2]);

    println!(
        "master-slave fork: root {} + {} shards x {}",
        fork.root_weight(),
        fork.n_leaves(),
        fork.leaf_weights()[0]
    );
    println!("cluster speeds: {:?}\n", platform.speeds());

    // Theorem 14: optimal throughput and response time in polynomial time
    // — the registry routes both to the paper engine with a proven optimum.
    let by_period = request(fork.clone(), &platform, Objective::Period);
    println!(
        "max throughput : period {} via {}  [{} engine, {} optimum]",
        by_period.period.unwrap(),
        by_period.mapping.as_ref().unwrap(),
        by_period.engine_used,
        by_period.optimality
    );
    let by_latency = request(fork.clone(), &platform, Objective::Latency);
    println!(
        "min response   : latency {} via {}",
        by_latency.latency.unwrap(),
        by_latency.mapping.as_ref().unwrap()
    );
    let relaxed_bound = by_period.period.unwrap() * Rat::new(3, 2);
    let tradeoff = request(
        fork.clone(),
        &platform,
        Objective::LatencyUnderPeriod(relaxed_bound),
    );
    println!(
        "trade-off      : latency {} at period {} (bound = 1.5x optimal period)",
        tradeoff.latency.unwrap(),
        tradeoff.period.unwrap()
    );

    // Validate the throughput claim by executing 400 batches, saturated.
    let period_mapping = by_period.mapping.clone().unwrap();
    let report = sim::simulate_fork(&fork, &platform, &period_mapping, sim::Feed::Saturated, 400)
        .expect("mapping is valid");
    let window = 4 * sim::fork::cycle_length(&period_mapping);
    println!(
        "\nsimulated steady-state period: {} (analytic {})",
        report.measured_period(window),
        by_period.period.unwrap()
    );
    assert_eq!(report.measured_period(window), by_period.period.unwrap());

    // Scatter-gather: add a reduction stage and use the Section 6.3
    // fork-join extension (still auto-dispatched, still polynomial).
    let fj = ForkJoin::uniform(12, 8, 40, 20);
    let sol = request(fj.clone(), &platform, Objective::Latency);
    let sol_mapping = sol.mapping.clone().unwrap();
    let sol_latency = sol.latency.unwrap();
    println!(
        "\nwith a gather stage (fork-join): min latency {} via {}",
        sol_latency, sol_mapping
    );
    let report = sim::simulate_forkjoin(
        &fj,
        &platform,
        &sol_mapping,
        sim::Feed::Interval(sol_latency + Rat::ONE),
        24,
    )
    .expect("mapping is valid");
    println!(
        "simulated max latency: {} (analytic bound {})",
        report.max_latency(),
        sol_latency
    );
    assert!(report.max_latency() <= sol_latency);
}
