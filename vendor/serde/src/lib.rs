//! Vendored, dependency-light subset of `serde`.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal replacement for the serde stack. Instead of serde's
//! visitor-based zero-copy data model, everything funnels through one
//! owned [`Value`] tree; the sibling `serde_json` shim renders/parses
//! that tree as JSON with the same wire conventions as real
//! `serde_json` for the subset of types the workspace derives.
//!
//! Supported: named/tuple/unit structs, enums (unit / newtype / tuple /
//! struct variants, externally tagged), integers up to `i128`, floats,
//! booleans, strings, `Vec<T>`, `Option<T>`, and `&'static str`
//! (deserialized by leaking, which the workspace only uses for
//! `'static` theorem labels). Not supported: generics in derived types,
//! serde attributes, borrowed data.

pub use serde_derive::{Deserialize, Serialize};

/// The owned data-model tree every (de)serialization goes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers every integer width used in the workspace).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Externally tagged enum payload: `{"tag": value}`.
    pub fn variant(tag: &str, value: Value) -> Value {
        Value::Object(vec![(tag.to_string(), value)])
    }

    /// Object field lookup.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Single-entry object as an externally tagged variant.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }

    /// Integer contents (also accepts integral floats).
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(96) => Some(*f as i128),
            _ => None,
        }
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a data-model tree.
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a data-model tree.
    fn deserialize(value: &Value) -> Result<Self, de::Error>;
}

/// Deserialization errors.
pub mod de {
    use std::fmt;

    /// A (de)serialization error with a human-readable message.
    #[derive(Clone, Debug)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Error with a custom message.
        pub fn custom(msg: impl fmt::Display) -> Error {
            Error {
                msg: msg.to_string(),
            }
        }

        /// A required struct field is absent.
        pub fn missing_field(field: &str, ty: &str) -> Error {
            Error::custom(format!("missing field `{field}` while deserializing {ty}"))
        }

        /// The value has the wrong shape.
        pub fn expected(what: &str, ty: &str) -> Error {
            Error::custom(format!("expected {what} while deserializing {ty}"))
        }

        /// An enum tag matches no variant.
        pub fn unknown_variant(tag: &str, ty: &str) -> Error {
            Error::custom(format!("unknown variant `{tag}` for {ty}"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let i = value
                    .as_int()
                    .ok_or_else(|| de::Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i)
                    .map_err(|_| de::Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(de::Error::expected("number", "f64")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        // Only used for `'static` theorem labels; leaking keeps the shim's
        // trait object-safe without borrowed deserialization machinery.
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| de::Error::expected("string", "&'static str"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        value
            .as_array()
            .ok_or_else(|| de::Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (*self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}
