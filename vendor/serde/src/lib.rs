//! Vendored, dependency-light subset of `serde`.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal replacement for the serde stack. Instead of serde's
//! visitor-based zero-copy data model, everything funnels through one
//! owned [`Value`] tree; the sibling `serde_json` shim renders/parses
//! that tree as JSON with the same wire conventions as real
//! `serde_json` for the subset of types the workspace derives.
//!
//! Supported: named/tuple/unit structs, enums (unit / newtype / tuple /
//! struct variants, externally tagged), integers up to `i128`, floats,
//! booleans, strings, `Vec<T>`, `Option<T>`, and `&'static str`
//! (deserialized by leaking, which the workspace only uses for
//! `'static` theorem labels). Not supported: generics in derived types,
//! serde attributes.
//!
//! Two deserialization paths share one grammar:
//!
//! * [`Deserialize`] reads from an owned [`Value`] tree (flexible —
//!   callers can inspect or transform the tree first);
//! * [`DeserializeStream`] reads straight off the JSON text through the
//!   [`de::JsonParser`] cursor, borrowing escape-free strings from the
//!   input instead of allocating — the near-linear path for multi-MB
//!   instance files, where building the intermediate tree (one
//!   `String` + `Vec` per node, then a second full traversal) dominates
//!   the parse.

pub use serde_derive::{Deserialize, Serialize};

/// The owned data-model tree every (de)serialization goes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers every integer width used in the workspace).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Externally tagged enum payload: `{"tag": value}`.
    pub fn variant(tag: &str, value: Value) -> Value {
        Value::Object(vec![(tag.to_string(), value)])
    }

    /// Object field lookup.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Single-entry object as an externally tagged variant.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }

    /// Integer contents (also accepts integral floats).
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(96) => Some(*f as i128),
            _ => None,
        }
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a data-model tree.
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a data-model tree.
    fn deserialize(value: &Value) -> Result<Self, de::Error>;
}

/// Streaming deserialization straight off JSON text — no intermediate
/// [`Value`] tree. Derived alongside [`Deserialize`] by the
/// `#[derive(Deserialize)]` shim; the two paths accept the same wire
/// format.
pub trait DeserializeStream: Sized {
    /// Reads `Self` from the parser's current position, consuming
    /// exactly one JSON value.
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error>;
}

/// Deserialization errors and the streaming JSON cursor.
pub mod de {
    use std::fmt;

    /// A (de)serialization error with a human-readable message.
    #[derive(Clone, Debug)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Error with a custom message.
        pub fn custom(msg: impl fmt::Display) -> Error {
            Error {
                msg: msg.to_string(),
            }
        }

        /// A required struct field is absent.
        pub fn missing_field(field: &str, ty: &str) -> Error {
            Error::custom(format!("missing field `{field}` while deserializing {ty}"))
        }

        /// The value has the wrong shape.
        pub fn expected(what: &str, ty: &str) -> Error {
            Error::custom(format!("expected {what} while deserializing {ty}"))
        }

        /// An enum tag matches no variant.
        pub fn unknown_variant(tag: &str, ty: &str) -> Error {
            Error::custom(format!("unknown variant `{tag}` for {ty}"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    use super::Value;
    use std::borrow::Cow;

    /// A streaming JSON cursor: one pass over the input bytes, no
    /// intermediate tree, escape-free strings borrowed from the input.
    ///
    /// This is the single JSON grammar implementation of the shim —
    /// [`crate::DeserializeStream`] impls consume it directly, and the
    /// `serde_json` facade's tree parser is just
    /// [`JsonParser::parse_value_tree`].
    ///
    /// Composite values follow a first-flag protocol so impls need no
    /// side state: `begin_object`/`begin_array` consume the opener,
    /// then [`JsonParser::object_next`] / [`JsonParser::array_next`]
    /// are called with `first = true` once and `first = false` after,
    /// returning `None`/`false` when the closer is consumed.
    pub struct JsonParser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> JsonParser<'a> {
        /// A cursor at the start of `text`.
        pub fn new(text: &'a str) -> JsonParser<'a> {
            JsonParser {
                bytes: text.as_bytes(),
                pos: 0,
            }
        }

        fn err(&self, msg: &str) -> Error {
            Error::custom(format!("{msg} at byte {}", self.pos))
        }

        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        /// The next non-whitespace byte without consuming it (`None` at
        /// end of input). `Some(b'"')` means a string follows, `{` an
        /// object, and so on — what derived enum impls branch on.
        pub fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected `{}`", b as char)))
            }
        }

        fn parse_lit(&mut self, lit: &str) -> Result<(), Error> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected `{lit}`")))
            }
        }

        /// Consumes `null`.
        pub fn parse_null(&mut self) -> Result<(), Error> {
            self.parse_lit("null")
        }

        /// Consumes `true` or `false`.
        pub fn parse_bool(&mut self) -> Result<bool, Error> {
            match self.peek() {
                Some(b't') => self.parse_lit("true").map(|()| true),
                Some(b'f') => self.parse_lit("false").map(|()| false),
                _ => Err(self.err("expected boolean")),
            }
        }

        /// The raw text of the next number token (shared scan for the
        /// integer and float paths).
        fn number_text(&mut self) -> Result<&'a str, Error> {
            self.skip_ws();
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while let Some(&b) = self.bytes.get(self.pos) {
                match b {
                    b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid number"))?;
            if text.is_empty() || text == "-" {
                return Err(self.err("expected number"));
            }
            Ok(text)
        }

        /// Consumes a number as an integer (accepting integral floats,
        /// mirroring [`Value::as_int`]).
        pub fn parse_i128(&mut self) -> Result<i128, Error> {
            let text = self.number_text()?;
            if let Ok(i) = text.parse::<i128>() {
                return Ok(i);
            }
            match text.parse::<f64>() {
                Ok(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(96) => Ok(f as i128),
                _ => Err(self.err("expected integer")),
            }
        }

        /// Consumes a number as a float (integers widen losslessly).
        pub fn parse_f64(&mut self) -> Result<f64, Error> {
            let text = self.number_text()?;
            text.parse::<f64>().map_err(|_| self.err("invalid float"))
        }

        /// Consumes a string, borrowing from the input when it contains
        /// no escapes (the common case for keys and enum tags).
        pub fn parse_str(&mut self) -> Result<Cow<'a, str>, Error> {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected string"));
            }
            self.pos += 1;
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            let head = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid UTF-8"))?;
            if self.bytes.get(self.pos) == Some(&b'"') {
                self.pos += 1;
                return Ok(Cow::Borrowed(head));
            }
            // escapes present: fall back to an owned buffer
            let mut out = String::from(head);
            loop {
                match self.bytes.get(self.pos) {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(Cow::Owned(out));
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = *self
                            .bytes
                            .get(self.pos)
                            .ok_or_else(|| self.err("unterminated escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                    16,
                                )
                                .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("bad codepoint"))?,
                                );
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    None => return Err(self.err("unterminated string")),
                    Some(_) => {
                        let start = self.pos;
                        while let Some(&b) = self.bytes.get(self.pos) {
                            if b == b'"' || b == b'\\' {
                                break;
                            }
                            self.pos += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..self.pos])
                                .map_err(|_| self.err("invalid UTF-8"))?,
                        );
                    }
                }
            }
        }

        /// Consumes the opening `{` of an object.
        pub fn begin_object(&mut self) -> Result<(), Error> {
            self.expect(b'{')
        }

        /// Advances to the next key of the current object, consuming
        /// the separating `,` (when `!first`) and the key's `:`.
        /// Returns `None` after consuming the closing `}`.
        pub fn object_next(&mut self, first: bool) -> Result<Option<Cow<'a, str>>, Error> {
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(None);
                }
                Some(b',') if !first => {
                    self.pos += 1;
                }
                Some(_) if first => {}
                _ => return Err(self.err("expected `,` or `}`")),
            }
            let key = self.parse_str()?;
            self.expect(b':')?;
            Ok(Some(key))
        }

        /// Consumes the opening `[` of an array.
        pub fn begin_array(&mut self) -> Result<(), Error> {
            self.expect(b'[')
        }

        /// Whether another element follows in the current array,
        /// consuming the separating `,` (when `!first`) or the closing
        /// `]`.
        pub fn array_next(&mut self, first: bool) -> Result<bool, Error> {
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    Ok(false)
                }
                Some(b',') if !first => {
                    self.pos += 1;
                    Ok(true)
                }
                Some(_) if first => Ok(true),
                _ => Err(self.err("expected `,` or `]`")),
            }
        }

        /// Consumes and discards one value of any shape (unknown object
        /// fields, ignored enum payloads).
        pub fn skip_value(&mut self) -> Result<(), Error> {
            match self
                .peek()
                .ok_or_else(|| self.err("unexpected end of input"))?
            {
                b'{' => {
                    self.begin_object()?;
                    let mut first = true;
                    while self.object_next(first)?.is_some() {
                        first = false;
                        self.skip_value()?;
                    }
                    Ok(())
                }
                b'[' => {
                    self.begin_array()?;
                    let mut first = true;
                    while self.array_next(first)? {
                        first = false;
                        self.skip_value()?;
                    }
                    Ok(())
                }
                b'"' => self.parse_str().map(|_| ()),
                b't' => self.parse_lit("true"),
                b'f' => self.parse_lit("false"),
                b'n' => self.parse_lit("null"),
                _ => self.number_text().map(|_| ()),
            }
        }

        /// Consumes one value into an owned [`Value`] tree (the
        /// `serde_json::parse_value` backend, and the
        /// [`crate::DeserializeStream`] impl for [`Value`] itself).
        pub fn parse_value_tree(&mut self) -> Result<Value, Error> {
            match self
                .peek()
                .ok_or_else(|| self.err("unexpected end of input"))?
            {
                b'{' => {
                    self.begin_object()?;
                    let mut fields = Vec::new();
                    let mut first = true;
                    while let Some(key) = self.object_next(first)? {
                        first = false;
                        fields.push((key.into_owned(), self.parse_value_tree()?));
                    }
                    Ok(Value::Object(fields))
                }
                b'[' => {
                    self.begin_array()?;
                    let mut items = Vec::new();
                    let mut first = true;
                    while self.array_next(first)? {
                        first = false;
                        items.push(self.parse_value_tree()?);
                    }
                    Ok(Value::Array(items))
                }
                b'"' => Ok(Value::String(self.parse_str()?.into_owned())),
                b't' => self.parse_lit("true").map(|()| Value::Bool(true)),
                b'f' => self.parse_lit("false").map(|()| Value::Bool(false)),
                b'n' => self.parse_lit("null").map(|()| Value::Null),
                _ => {
                    let text = self.number_text()?;
                    if let Ok(i) = text.parse::<i128>() {
                        Ok(Value::Int(i))
                    } else {
                        text.parse::<f64>()
                            .map(Value::Float)
                            .map_err(|_| self.err("invalid number"))
                    }
                }
            }
        }

        /// Checks nothing but whitespace remains (call after the last
        /// value when the input must be exactly one document).
        pub fn end(&mut self) -> Result<(), Error> {
            self.skip_ws();
            if self.pos == self.bytes.len() {
                Ok(())
            } else {
                Err(self.err("trailing characters"))
            }
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let i = value
                    .as_int()
                    .ok_or_else(|| de::Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i)
                    .map_err(|_| de::Error::expected("in-range integer", stringify!($t)))
            }
        }
        impl DeserializeStream for $t {
            fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
                <$t>::try_from(parser.parse_i128()?)
                    .map_err(|_| de::Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(de::Error::expected("number", "f64")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        // Only used for `'static` theorem labels; leaking keeps the shim's
        // trait object-safe without borrowed deserialization machinery.
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| de::Error::expected("string", "&'static str"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        value
            .as_array()
            .ok_or_else(|| de::Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (*self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

impl DeserializeStream for bool {
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
        parser.parse_bool()
    }
}

impl DeserializeStream for f64 {
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
        parser.parse_f64()
    }
}

impl DeserializeStream for String {
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
        parser.parse_str().map(|s| s.into_owned())
    }
}

impl DeserializeStream for &'static str {
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
        // Same leak as the tree path: only `'static` theorem labels.
        parser
            .parse_str()
            .map(|s| &*Box::leak(s.into_owned().into_boxed_str()))
    }
}

impl<T: DeserializeStream> DeserializeStream for Vec<T> {
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
        parser.begin_array()?;
        let mut out = Vec::new();
        let mut first = true;
        while parser.array_next(first)? {
            first = false;
            out.push(T::deserialize_stream(parser)?);
        }
        Ok(out)
    }
}

impl<T: DeserializeStream> DeserializeStream for Option<T> {
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
        if parser.peek() == Some(b'n') {
            parser.parse_null()?;
            Ok(None)
        } else {
            T::deserialize_stream(parser).map(Some)
        }
    }
}

impl DeserializeStream for Value {
    fn deserialize_stream(parser: &mut de::JsonParser<'_>) -> Result<Self, de::Error> {
        parser.parse_value_tree()
    }
}
