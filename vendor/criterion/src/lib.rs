//! Vendored, dependency-free subset of `criterion` (the build
//! environment has no network access to fetch the real crate).
//!
//! Benchmarks compile and run against the same source API; instead of
//! criterion's statistical analysis, each benchmark runs a short warmup
//! plus a fixed measurement loop and prints mean wall-clock time per
//! iteration. Good enough for relative comparisons and for keeping
//! `cargo bench` / `cargo clippy --all-targets` functional offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement iterations per benchmark (after warmup). Setting the
/// `CRITERION_QUICK` environment variable (any value) drops to 3
/// iterations — the CI bench-smoke mode, where wall-clock trend matters
/// more than variance.
fn measure_iters() -> u32 {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        3
    } else {
        20
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (accepted, reported as-is).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running a warmup pass then a fixed number of
    /// measured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = measure_iters();
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / iters);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench  {label:<50} {mean:>12.2?}/iter"),
        None => println!("bench  {label:<50} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
