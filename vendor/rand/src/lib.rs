//! Vendored, dependency-free subset of `rand` 0.8.
//!
//! The build environment has no network access, so this shim provides
//! the exact API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges, [`Rng::gen_bool`] and [`Rng::gen`] for `f64`/`bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high
//! quality, deterministic across platforms, and stable across releases
//! of this workspace (the real `StdRng` explicitly does *not* promise
//! stream stability, so no seed-compatibility is lost by substituting).

/// Byte-oriented core RNG abstraction (subset of `rand_core`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; equal seeds produce
    /// equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a value from the standard distribution of `Self`.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Uniform `u128` in `[0, span)` by rejection sampling (unbiased).
fn uniform_below(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide < zone {
            return wide % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = uniform_below(rng, span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = uniform_below(rng, span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<i128> for ::std::ops::Range<i128> {
    fn sample(self, rng: &mut dyn RngCore) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self
            .end
            .checked_sub(self.start)
            .expect("range span overflows i128") as u128;
        self.start + uniform_below(rng, span) as i128
    }
}

impl SampleRange<i128> for ::std::ops::RangeInclusive<i128> {
    fn sample(self, rng: &mut dyn RngCore) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.checked_sub(lo).expect("range span overflows i128") as u128 + 1;
        lo + uniform_below(rng, span) as i128
    }
}

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }

    /// A value from `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `SmallRng` users keep working.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=1000), b.gen_range(0u64..=1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.gen_range(4u64..=4), 4);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
