//! The model-checking runtime: a cooperative scheduler that runs one
//! model thread at a time and explores the tree of scheduling
//! decisions by depth-first search.
//!
//! Every shimmed operation (atomic access, mutex acquire, channel
//! send/recv, spawn, yield) calls a *yield point* before taking
//! effect, handing the scheduler a chance to switch threads. Each
//! switch away from a still-runnable thread is a *preemption*; the
//! exploration is exhaustive up to a configurable preemption bound
//! (the classic CHESS-style bounded search — most interleaving bugs
//! need very few preemptions to surface).
//!
//! Model threads are real OS threads parked on a condvar; exactly one
//! is marked `active` and allowed to run between scheduling points, so
//! shim internals never race and every execution is deterministic
//! given its decision sequence. That sequence — the chosen thread id
//! at each decision point, rendered as `"0,1,1,0"` — is the *schedule
//! string*: a failing schedule is printed on failure and can be
//! replayed exactly with [`replay`].
//!
//! **Memory model.** Because the checker sequentializes execution, all
//! atomics behave as sequentially consistent regardless of their
//! declared `Ordering` — this explores interleavings of *operations*,
//! not weak-memory reorderings. Lost wakeups, deadlocks, ticket leaks
//! and torn state machines are all interleaving bugs and are in scope;
//! `Relaxed`-vs-`Acquire` fence placement is not.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to unwind model threads once an execution has
/// failed or been abandoned; never surfaces to user code.
pub(crate) struct LoomAbort;

/// Livelock backstop: scheduling points allowed in one execution.
const MAX_OPS_PER_EXECUTION: usize = 250_000;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The scheduler context of the calling thread, when it is a model
/// thread of a live execution. `None` means the shims fall back to
/// plain std behaviour.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Scheduling state of one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// May be chosen as the next active thread.
    Runnable,
    /// Waiting on a resource; a waker must mark it runnable. `timed`
    /// waits (condvar/channel timeouts) are eligible for the
    /// timeout-firing escape when the whole execution would otherwise
    /// deadlock.
    Blocked {
        timed: bool,
    },
    Finished,
}

/// One branch point of the DFS: the runnable candidates at a moment
/// where the scheduler had a choice, and which one this execution took.
#[derive(Clone, Debug)]
struct Decision {
    /// Deterministically ordered candidate thread ids (the yielding
    /// thread first when it is still runnable, then ascending).
    candidates: Vec<usize>,
    /// Index into `candidates` taken by the current execution.
    chosen: usize,
    /// `true` when the thread that was active at the decision is still
    /// runnable: choosing any candidate but the first (itself) then
    /// costs one preemption. Forced switches (block/finish) are free.
    voluntary: bool,
    /// Preemptions already spent on the path above this decision.
    preemptions_before: usize,
}

impl Decision {
    fn cost(&self, index: usize) -> usize {
        usize::from(self.voluntary && index != 0)
    }
}

struct Sched {
    active: usize,
    threads: Vec<TState>,
    /// Set when a deadlock-escape timeout fired for the thread; the
    /// timed wait that observes it reports a timeout.
    timed_out: Vec<bool>,
    /// Threads blocked joining on the indexed thread.
    joiners: Vec<Vec<usize>>,
    decisions: Vec<Decision>,
    depth: usize,
    /// Forced choices (thread ids) consumed once `decisions` is
    /// exhausted — the [`replay`] mechanism.
    forced: VecDeque<usize>,
    /// Scheduling points seen this execution; a backstop cap turns
    /// livelocks (e.g. two threads spin-yielding at each other) into a
    /// reported failure instead of a hang.
    ops: usize,
    preemptions: usize,
    failure: Option<Failure>,
    done: bool,
    live: usize,
}

#[derive(Clone, Debug)]
struct Failure {
    message: String,
    schedule: String,
}

impl Sched {
    fn schedule_string(&self) -> String {
        self.decisions
            .iter()
            .take(self.depth)
            .map(|d| d.candidates[d.chosen].to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t] == TState::Runnable)
            .collect()
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                message,
                schedule: self.schedule_string(),
            });
        }
    }

    /// Bumps the per-execution scheduling-point counter, failing on
    /// the livelock backstop.
    fn count_op(&mut self) {
        self.ops += 1;
        if self.ops == MAX_OPS_PER_EXECUTION {
            self.fail(format!(
                "execution exceeded {MAX_OPS_PER_EXECUTION} scheduling points (livelock?)"
            ));
        }
    }

    /// Picks the next active thread among the runnable ones (the
    /// yielding thread first when still runnable), recording or
    /// replaying a decision when there is a real choice.
    ///
    /// `exclude_me` models `yield_now`: the yielding thread stays
    /// runnable but hands the CPU to someone else when anyone else can
    /// run (otherwise a spin-yield loop would be scheduled forever and
    /// no execution of a spin-wait model would terminate). The switch
    /// is free — it was invited.
    fn choose(&mut self, me: usize, me_runnable: bool, exclude_me: bool) {
        let mut candidates = self.runnable();
        if me_runnable {
            candidates.retain(|&t| t != me);
            if exclude_me {
                if candidates.is_empty() {
                    // Nobody else to hand over to: keep spinning.
                    self.active = me;
                    return;
                }
            } else {
                candidates.insert(0, me);
            }
        }
        debug_assert!(!candidates.is_empty());
        if candidates.len() == 1 {
            self.active = candidates[0];
            return;
        }
        let index = if self.depth < self.decisions.len() {
            // Re-executing a recorded prefix (DFS backtrack replay).
            let recorded = &self.decisions[self.depth];
            if recorded.candidates != candidates {
                self.fail(format!(
                    "non-deterministic execution: decision {} saw candidates {:?}, \
                     previously {:?} (model closures must be deterministic)",
                    self.depth, candidates, recorded.candidates
                ));
                return;
            }
            recorded.chosen
        } else if let Some(tid) = self.forced.pop_front() {
            // Replaying a captured schedule string.
            let index = candidates.iter().position(|&c| c == tid).unwrap_or(0);
            self.decisions.push(Decision {
                candidates: candidates.clone(),
                chosen: index,
                voluntary: me_runnable && !exclude_me,
                preemptions_before: self.preemptions,
            });
            index
        } else {
            // Fresh decision: take the first candidate; siblings are
            // explored by `advance` on later executions.
            self.decisions.push(Decision {
                candidates: candidates.clone(),
                chosen: 0,
                voluntary: me_runnable && !exclude_me,
                preemptions_before: self.preemptions,
            });
            0
        };
        self.preemptions += self.decisions[self.depth].cost(index);
        self.active = candidates[index];
        self.depth += 1;
    }

    /// Called when no thread is runnable: fire a pending timed wait
    /// (timeouts only elapse when nothing else can make progress,
    /// which keeps executions finite and deterministic) or declare a
    /// deadlock.
    fn no_runnable(&mut self) {
        if self.live == 0 {
            self.done = true;
            return;
        }
        let timed =
            (0..self.threads.len()).find(|&t| self.threads[t] == TState::Blocked { timed: true });
        match timed {
            Some(t) => {
                self.threads[t] = TState::Runnable;
                self.timed_out[t] = true;
                self.active = t;
            }
            None => {
                let blocked: Vec<usize> = (0..self.threads.len())
                    .filter(|&t| matches!(self.threads[t], TState::Blocked { .. }))
                    .collect();
                self.fail(format!(
                    "deadlock: no runnable thread (blocked: {blocked:?})"
                ));
            }
        }
    }
}

/// One execution of the model closure under one schedule prefix.
pub(crate) struct Execution {
    sched: Mutex<Sched>,
    cv: Condvar,
    /// OS handles of spawned model threads, joined by the driver after
    /// each execution settles.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Execution {
    fn new(decisions: Vec<Decision>, forced: VecDeque<usize>) -> Arc<Self> {
        Arc::new(Execution {
            sched: Mutex::new(Sched {
                active: 0,
                threads: vec![TState::Runnable],
                timed_out: vec![false],
                joiners: vec![Vec::new()],
                decisions,
                depth: 0,
                forced,
                ops: 0,
                preemptions: 0,
                failure: None,
                done: false,
                live: 1,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort() -> ! {
        panic::panic_any(LoomAbort)
    }

    /// Parks until this thread is the active one (or the execution has
    /// failed, in which case the thread unwinds).
    fn wait_active<'a>(
        &'a self,
        mut sched: std::sync::MutexGuard<'a, Sched>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, Sched> {
        while sched.failure.is_none()
            && !(sched.active == me && sched.threads[me] == TState::Runnable)
        {
            sched = self.cv.wait(sched).unwrap_or_else(|e| e.into_inner());
        }
        if sched.failure.is_some() {
            drop(sched);
            Self::abort();
        }
        sched
    }

    /// A scheduling point: the calling (active, runnable) thread hands
    /// the scheduler a chance to run someone else.
    pub(crate) fn yield_point(&self, me: usize) {
        self.yield_impl(me, false);
    }

    /// An explicit `yield_now`: hand the CPU to another runnable
    /// thread when one exists (free switch — see [`Sched::choose`]).
    pub(crate) fn yield_now_point(&self, me: usize) {
        self.yield_impl(me, true);
    }

    fn yield_impl(&self, me: usize, exclude_me: bool) {
        let mut sched = self.lock();
        if sched.failure.is_some() {
            drop(sched);
            Self::abort();
        }
        debug_assert_eq!(sched.active, me, "yield from a descheduled thread");
        sched.count_op();
        sched.choose(me, true, exclude_me);
        drop(sched);
        self.cv.notify_all();
        drop(self.wait_active(self.lock(), me));
    }

    /// Blocks the calling thread until a waker marks it runnable (or,
    /// for `timed` waits, until the deadlock-escape timeout fires).
    /// Returns `true` when the wake was a timeout.
    pub(crate) fn block(&self, me: usize, timed: bool) -> bool {
        let mut sched = self.lock();
        if sched.failure.is_some() {
            drop(sched);
            Self::abort();
        }
        sched.threads[me] = TState::Blocked { timed };
        sched.timed_out[me] = false;
        sched.count_op();
        if sched.runnable().is_empty() {
            sched.no_runnable();
        } else {
            sched.choose(me, false, false);
        }
        drop(sched);
        self.cv.notify_all();
        let mut sched = self.wait_active(self.lock(), me);
        let fired = std::mem::replace(&mut sched.timed_out[me], false);
        drop(sched);
        fired
    }

    /// Marks `targets` runnable (a resource they were blocked on became
    /// available). The caller keeps running; the woken threads compete
    /// at the next decision point.
    pub(crate) fn wake(&self, targets: &[usize]) {
        if targets.is_empty() {
            return;
        }
        let mut sched = self.lock();
        for &t in targets {
            if matches!(sched.threads[t], TState::Blocked { .. }) {
                sched.threads[t] = TState::Runnable;
            }
        }
        drop(sched);
        self.cv.notify_all();
    }

    /// Registers a new model thread; returns its id. The caller then
    /// starts its OS thread via [`Execution::spawn_os`].
    pub(crate) fn register_thread(&self) -> usize {
        let mut sched = self.lock();
        let tid = sched.threads.len();
        sched.threads.push(TState::Runnable);
        sched.timed_out.push(false);
        sched.joiners.push(Vec::new());
        sched.live += 1;
        tid
    }

    /// Runs `body` as model thread `tid` on a fresh OS thread. The
    /// body parks until first scheduled.
    pub(crate) fn spawn_os(self: &Arc<Self>, tid: usize, body: impl FnOnce() + Send + 'static) {
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                set_current(Some((Arc::clone(&exec), tid)));
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    drop(exec.wait_active(exec.lock(), tid));
                    body();
                }));
                set_current(None);
                match outcome {
                    Ok(()) => exec.finish(tid),
                    Err(payload) => exec.fail_unwind(tid, payload),
                }
            })
            .expect("loom model OS thread spawns");
        self.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }

    /// Marks `me` finished, wakes its joiners, schedules a successor.
    fn finish(&self, me: usize) {
        let mut sched = self.lock();
        sched.threads[me] = TState::Finished;
        sched.live -= 1;
        let joiners = std::mem::take(&mut sched.joiners[me]);
        for j in joiners {
            if matches!(sched.threads[j], TState::Blocked { .. }) {
                sched.threads[j] = TState::Runnable;
            }
        }
        if sched.failure.is_none() {
            if sched.runnable().is_empty() {
                sched.no_runnable();
            } else {
                sched.choose(me, false, false);
            }
        }
        drop(sched);
        self.cv.notify_all();
    }

    /// Blocks `me` until `target` finishes (join support).
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        loop {
            {
                let mut sched = self.lock();
                if sched.failure.is_some() {
                    drop(sched);
                    Self::abort();
                }
                if sched.threads[target] == TState::Finished {
                    return;
                }
                sched.joiners[target].push(me);
            }
            self.block(me, false);
        }
    }

    /// Whether `target` has finished (`JoinHandle::is_finished`).
    pub(crate) fn thread_finished(&self, target: usize) -> bool {
        self.lock().threads[target] == TState::Finished
    }

    /// Records a model-thread panic as the execution's failure (unless
    /// it is the abort payload of an already-failed execution).
    fn fail_unwind(&self, me: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut sched = self.lock();
        if payload.downcast_ref::<LoomAbort>().is_none() {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked".into());
            sched.fail(format!("thread {me} panicked: {message}"));
        }
        sched.threads[me] = TState::Finished;
        sched.live -= 1;
        if sched.live == 0 {
            sched.done = true;
        }
        drop(sched);
        self.cv.notify_all();
    }
}

/// Exploration statistics returned by [`Builder::check`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: u64,
    /// `true` when the bounded-preemption exploration was exhausted;
    /// `false` when it stopped at [`Builder::max_schedules`].
    pub complete: bool,
}

/// A model failure: the assertion/deadlock message plus the schedule
/// string that reproduces it via [`replay`].
#[derive(Clone, Debug)]
pub struct ModelFailure {
    /// What went wrong (panic message or deadlock description).
    pub message: String,
    /// The failing schedule, replayable with [`replay`].
    pub schedule: String,
    /// Schedules explored up to and including the failing one.
    pub schedules: u64,
}

impl std::fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failure after {} schedule(s)\n  schedule: \"{}\"\n  {}",
            self.schedules, self.schedule, self.message
        )
    }
}

impl std::error::Error for ModelFailure {}

/// Exploration configuration.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Exhaustiveness bound: how many times the scheduler may switch
    /// away from a still-runnable thread on one execution path. 2–3
    /// preemptions surface the overwhelming majority of interleaving
    /// bugs while keeping the schedule tree tractable.
    pub max_preemptions: usize,
    /// Safety valve on the number of schedules (the exploration stops
    /// with `Report::complete == false` when it trips).
    pub max_schedules: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_preemptions: 2,
            max_schedules: 200_000,
        }
    }
}

/// Installs a panic hook that silences [`LoomAbort`] unwinds (they are
/// scheduler control flow, not failures) exactly once per process.
fn install_quiet_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<LoomAbort>().is_none() {
            previous(info);
        }
    }));
}

impl Builder {
    /// Explores `f` under every schedule within the preemption bound.
    /// Returns the exploration report, or the first failure found.
    pub fn check<F: Fn()>(&self, f: F) -> Result<Report, ModelFailure> {
        install_quiet_hook();
        let mut decisions: Vec<Decision> = Vec::new();
        let mut schedules = 0u64;
        loop {
            let exec = Execution::new(decisions, VecDeque::new());
            run_root(&exec, &f);
            join_os_threads(&exec);
            schedules += 1;
            let (failure, recorded) = {
                let mut sched = exec.lock();
                (sched.failure.clone(), std::mem::take(&mut sched.decisions))
            };
            if let Some(failure) = failure {
                return Err(ModelFailure {
                    message: failure.message,
                    schedule: failure.schedule,
                    schedules,
                });
            }
            decisions = recorded;
            if !advance(&mut decisions, self.max_preemptions) {
                return Ok(Report {
                    schedules,
                    complete: true,
                });
            }
            if schedules >= self.max_schedules {
                return Ok(Report {
                    schedules,
                    complete: false,
                });
            }
        }
    }

    /// Like [`Builder::check`], but panics with the failing schedule
    /// (the [`model`](crate::model) entry point).
    pub fn model<F: Fn()>(&self, f: F) -> Report {
        match self.check(f) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }
}

/// Runs the model closure as thread 0 on the calling thread, then
/// waits for the execution to settle (all threads finished, or failed).
fn run_root<F: Fn()>(exec: &Arc<Execution>, f: &F) {
    set_current(Some((Arc::clone(exec), 0)));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    set_current(None);
    match outcome {
        Ok(()) => exec.finish(0),
        Err(payload) => exec.fail_unwind(0, payload),
    }
    let mut sched = exec.lock();
    while !sched.done && sched.failure.is_none() {
        sched = exec.cv.wait(sched).unwrap_or_else(|e| e.into_inner());
    }
}

fn join_os_threads(exec: &Arc<Execution>) {
    let handles = std::mem::take(&mut *exec.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
    for handle in handles {
        let _ = handle.join();
    }
}

/// Advances the decision stack to the next unexplored schedule within
/// the preemption bound; `false` when the tree is exhausted.
fn advance(decisions: &mut Vec<Decision>, max_preemptions: usize) -> bool {
    while let Some(last) = decisions.last() {
        let mut next = last.chosen + 1;
        while next < last.candidates.len()
            && last.preemptions_before + last.cost(next) > max_preemptions
        {
            next += 1;
        }
        if next < last.candidates.len() {
            decisions.last_mut().expect("non-empty stack").chosen = next;
            return true;
        }
        decisions.pop();
    }
    false
}

/// Runs `f` once under the exact schedule captured from a failure
/// (decision points beyond the recorded prefix take the default
/// choice). Returns the failure it reproduces, or `Ok(())` when the
/// schedule no longer fails (e.g. after a fix).
pub fn replay<F: Fn()>(f: F, schedule: &str) -> Result<(), ModelFailure> {
    install_quiet_hook();
    let forced: VecDeque<usize> = schedule
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("malformed schedule token `{s}`"))
        })
        .collect();
    let exec = Execution::new(Vec::new(), forced);
    run_root(&exec, &f);
    join_os_threads(&exec);
    let failure = exec.lock().failure.clone();
    match failure {
        Some(failure) => Err(ModelFailure {
            message: failure.message,
            schedule: failure.schedule,
            schedules: 1,
        }),
        None => Ok(()),
    }
}
