//! Shimmed `std::thread` subset: `spawn`, `Builder`, `JoinHandle`,
//! `yield_now`, `sleep`.
//!
//! Inside a model run (`loom::model`), spawns create *model threads*
//! driven by the deterministic scheduler; outside one, everything
//! delegates to real `std::thread`, so `--cfg loom` builds of code
//! that never enters a model keep working.

use crate::rt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Handle to a spawned thread; supports `join` and `is_finished`.
pub struct JoinHandle<T> {
    inner: HandleInner<T>,
}

enum HandleInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<rt::Execution>,
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            HandleInner::Std(handle) => handle.join(),
            HandleInner::Model { exec, tid, result } => {
                let me = rt::current()
                    .map(|(_, me)| me)
                    .expect("model JoinHandle joined outside its model run");
                exec.join_thread(me, tid);
                // The child stores its value before finishing; a child
                // that panicked instead failed the whole execution and
                // unwound us inside join_thread.
                let value = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread left no value");
                Ok(value)
            }
        }
    }

    /// Whether the thread has run to completion.
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            HandleInner::Std(handle) => handle.is_finished(),
            HandleInner::Model { exec, tid, .. } => exec.thread_finished(*tid),
        }
    }
}

/// Thread factory mirroring `std::thread::Builder` (name only — stack
/// size is irrelevant to model threads and unused by this workspace).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::current() {
            Some((exec, me)) => {
                let tid = exec.register_thread();
                let result = Arc::new(Mutex::new(None));
                let slot = Arc::clone(&result);
                exec.spawn_os(tid, move || {
                    let value = f();
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                });
                // Give the scheduler a chance to run the child right
                // away — spawn is itself a visible concurrency event.
                exec.yield_point(me);
                Ok(JoinHandle {
                    inner: HandleInner::Model { exec, tid, result },
                })
            }
            None => {
                let mut builder = std::thread::Builder::new();
                if let Some(name) = self.name {
                    builder = builder.name(name);
                }
                builder.spawn(f).map(|handle| JoinHandle {
                    inner: HandleInner::Std(handle),
                })
            }
        }
    }
}

/// Spawns a thread (model thread inside `loom::model`).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("thread spawn")
}

/// Yields: in a model run, hands the CPU to another runnable thread
/// (free switch); otherwise delegates to the OS.
pub fn yield_now() {
    match rt::current() {
        Some((exec, me)) => exec.yield_now_point(me),
        None => std::thread::yield_now(),
    }
}

/// Sleeping in a model is just a yield — model time is logical, and a
/// sleep's only observable effect is letting other threads run.
pub fn sleep(dur: Duration) {
    match rt::current() {
        Some((exec, me)) => exec.yield_now_point(me),
        None => std::thread::sleep(dur),
    }
}

/// Model runs report a fixed parallelism of 2 so pool sizing stays
/// small and the schedule tree tractable; outside a model this is the
/// real value.
pub fn available_parallelism() -> std::io::Result<std::num::NonZeroUsize> {
    match rt::current() {
        Some(_) => Ok(std::num::NonZeroUsize::new(2).expect("2 is non-zero")),
        None => std::thread::available_parallelism(),
    }
}
