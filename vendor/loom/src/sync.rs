//! Shimmed `std::sync` subset: `Mutex`, `Condvar`, `RwLock`, `mpsc`,
//! and `atomic` primitives whose operations are scheduling points of
//! the model checker.
//!
//! Inside a model run every operation first yields to the scheduler,
//! then executes atomically (only one model thread runs between
//! scheduling points); blocking operations deschedule the thread until
//! a waker marks it runnable. Outside a model run everything delegates
//! to the real std primitives, so `--cfg loom` builds remain fully
//! functional for code paths no model exercises.
//!
//! `Arc` and `OnceLock` are re-exported from std unchanged: the
//! sequentialized explorer cannot race reference counts, and a custom
//! `Arc` would lose unsized coercion (`Arc<dyn Trait>`) on stable.
//! Model closures must not race `OnceLock::get_or_init` — std blocks
//! the loser internally, invisibly to the scheduler.

use crate::rt;
use std::sync::TryLockError;
use std::time::Duration;

pub use std::sync::{Arc, LockResult, OnceLock, PoisonError};

/// Waiter bookkeeping shared by the lock shims: who currently holds
/// the resource and which model threads are parked on it.
#[derive(Default)]
struct LockWaiters {
    /// Writers for `RwLock`, the single holder for `Mutex`.
    held_exclusive: bool,
    /// Shared readers (`RwLock` only; always 0 for `Mutex`).
    readers: usize,
    waiters: Vec<usize>,
}

impl LockWaiters {
    const fn new() -> Self {
        LockWaiters {
            held_exclusive: false,
            readers: 0,
            waiters: Vec::new(),
        }
    }
}

fn lock_waiters(m: &std::sync::Mutex<LockWaiters>) -> std::sync::MutexGuard<'_, LockWaiters> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Releases a lock's model slot and wakes every parked waiter (they
/// re-compete; the scheduler explores the outcomes).
fn release_model_lock(
    exec: &Arc<rt::Execution>,
    m: &std::sync::Mutex<LockWaiters>,
    exclusive: bool,
) {
    let waiters = {
        let mut state = lock_waiters(m);
        if exclusive {
            state.held_exclusive = false;
        } else {
            state.readers -= 1;
        }
        std::mem::take(&mut state.waiters)
    };
    exec.wake(&waiters);
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware mutual exclusion lock (API subset of `std::sync::Mutex`).
pub struct Mutex<T> {
    model: std::sync::Mutex<LockWaiters>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            model: std::sync::Mutex::new(LockWaiters::new()),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                loop {
                    {
                        let mut state = lock_waiters(&self.model);
                        if !state.held_exclusive {
                            state.held_exclusive = true;
                            break;
                        }
                        state.waiters.push(me);
                    }
                    exec.block(me, false);
                }
                // The model slot guarantees exclusivity, so the inner
                // std lock is always free here (poisoning aside).
                let (inner, poisoned) = match self.inner.try_lock() {
                    Ok(guard) => (guard, false),
                    Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model mutex slot held but std lock busy")
                    }
                };
                let guard = MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((exec, me)),
                };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
            None => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Forgets a previous holder's panic (mirror of
    /// `std::sync::Mutex::clear_poison`).
    pub fn clear_poison(&self) {
        self.inner.clear_poison();
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<rt::Execution>, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((exec, _)) = self.model.take() {
            release_model_lock(&exec, &self.lock.model, true);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condvar wait (mirror of std's, constructible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-aware condition variable.
///
/// Timed waits never measure real time inside a model: the timeout
/// "fires" only when the whole execution would otherwise be stuck,
/// which is exactly the set of schedules where a real timeout becomes
/// observable.
pub struct Condvar {
    waiters: std::sync::Mutex<Vec<usize>>,
    std_cv: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            waiters: std::sync::Mutex::new(Vec::new()),
            std_cv: std::sync::Condvar::new(),
        }
    }

    fn push_waiter(&self, me: usize) {
        self.waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(me);
    }

    fn remove_waiter(&self, me: usize) {
        self.waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|&t| t != me);
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match rt::current() {
            Some((exec, me)) => {
                // The yield models the check→wait gap: a notify issued
                // without holding the mutex can land here and be lost,
                // exactly as on real hardware.
                exec.yield_point(me);
                let lock = guard.lock;
                self.push_waiter(me);
                drop(guard);
                exec.block(me, false);
                lock.lock()
            }
            None => {
                let lock = guard.lock;
                let mut shell = guard;
                let inner = shell.inner.take().expect("guard holds the lock");
                drop(shell);
                match self.std_cv.wait(inner) {
                    Ok(inner) => Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match rt::current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                let lock = guard.lock;
                self.push_waiter(me);
                drop(guard);
                let fired = exec.block(me, true);
                if fired {
                    // Timed out: nobody notified us, so take ourselves
                    // off the waiter list before reacquiring.
                    self.remove_waiter(me);
                }
                match lock.lock() {
                    Ok(guard) => Ok((guard, WaitTimeoutResult(fired))),
                    Err(p) => Err(PoisonError::new((p.into_inner(), WaitTimeoutResult(fired)))),
                }
            }
            None => {
                let lock = guard.lock;
                let mut shell = guard;
                let inner = shell.inner.take().expect("guard holds the lock");
                drop(shell);
                match self.std_cv.wait_timeout(inner, dur) {
                    Ok((inner, res)) => Ok((
                        MutexGuard {
                            lock,
                            inner: Some(inner),
                            model: None,
                        },
                        WaitTimeoutResult(res.timed_out()),
                    )),
                    Err(p) => {
                        let (inner, res) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                inner: Some(inner),
                                model: None,
                            },
                            WaitTimeoutResult(res.timed_out()),
                        )))
                    }
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match rt::current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                let woken = {
                    let mut waiters = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    if waiters.is_empty() {
                        None
                    } else {
                        Some(waiters.remove(0))
                    }
                };
                if let Some(w) = woken {
                    exec.wake(&[w]);
                }
                // No waiter: the notification is lost, as with a real
                // condvar. That asymmetry is what the models probe.
            }
            None => self.std_cv.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match rt::current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                let woken =
                    std::mem::take(&mut *self.waiters.lock().unwrap_or_else(|e| e.into_inner()));
                exec.wake(&woken);
            }
            None => self.std_cv.notify_all(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-aware reader-writer lock (API subset of `std::sync::RwLock`).
pub struct RwLock<T> {
    model: std::sync::Mutex<LockWaiters>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            model: std::sync::Mutex::new(LockWaiters::new()),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match rt::current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                loop {
                    {
                        let mut state = lock_waiters(&self.model);
                        if !state.held_exclusive {
                            state.readers += 1;
                            break;
                        }
                        state.waiters.push(me);
                    }
                    exec.block(me, false);
                }
                let (inner, poisoned) = match self.inner.try_read() {
                    Ok(guard) => (guard, false),
                    Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model read slot held but std lock busy")
                    }
                };
                let guard = RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((exec, me)),
                };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
            None => match self.inner.read() {
                Ok(inner) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match rt::current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                loop {
                    {
                        let mut state = lock_waiters(&self.model);
                        if !state.held_exclusive && state.readers == 0 {
                            state.held_exclusive = true;
                            break;
                        }
                        state.waiters.push(me);
                    }
                    exec.block(me, false);
                }
                let (inner, poisoned) = match self.inner.try_write() {
                    Ok(guard) => (guard, false),
                    Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model write slot held but std lock busy")
                    }
                };
                let guard = RwLockWriteGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((exec, me)),
                };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
            None => match self.inner.write() {
                Ok(inner) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(Arc<rt::Execution>, usize)>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((exec, _)) = self.model.take() {
            release_model_lock(&exec, &self.lock.model, false);
        }
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(Arc<rt::Execution>, usize)>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((exec, _)) = self.model.take() {
            release_model_lock(&exec, &self.lock.model, true);
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

/// Model-aware unbounded channel (API subset of `std::sync::mpsc`,
/// reusing std's error types so match arms stay identical).
pub mod mpsc {
    use super::Arc;
    use crate::rt;
    use std::collections::VecDeque;
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        rx_alive: bool,
        /// Model thread id of a blocked receiver, if any.
        rx_waiting: Option<usize>,
    }

    struct Chan<T> {
        state: std::sync::Mutex<ChanState<T>>,
        /// Fallback-mode blocking (no scheduler to park on).
        cv: std::sync::Condvar,
    }

    impl<T> Chan<T> {
        fn state(&self) -> std::sync::MutexGuard<'_, ChanState<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Creates an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: std::sync::Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                rx_alive: true,
                rx_waiting: None,
            }),
            cv: std::sync::Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let model = rt::current();
            if let Some((exec, me)) = &model {
                exec.yield_point(*me);
            }
            let waiter = {
                let mut state = self.chan.state();
                if !state.rx_alive {
                    return Err(SendError(value));
                }
                state.queue.push_back(value);
                state.rx_waiting.take()
            };
            match model {
                Some((exec, _)) => {
                    if let Some(w) = waiter {
                        exec.wake(&[w]);
                    }
                }
                None => self.chan.cv.notify_one(),
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let waiter = {
                let mut state = self.chan.state();
                state.senders -= 1;
                if state.senders == 0 {
                    state.rx_waiting.take()
                } else {
                    None
                }
            };
            match rt::current() {
                Some((exec, _)) => {
                    if let Some(w) = waiter {
                        exec.wake(&[w]);
                    }
                }
                None => self.chan.cv.notify_all(),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            match rt::current() {
                Some((exec, me)) => loop {
                    exec.yield_point(me);
                    {
                        let mut state = self.chan.state();
                        if let Some(value) = state.queue.pop_front() {
                            return Ok(value);
                        }
                        if state.senders == 0 {
                            return Err(RecvError);
                        }
                        state.rx_waiting = Some(me);
                    }
                    exec.block(me, false);
                },
                None => {
                    let mut state = self.chan.state();
                    loop {
                        if let Some(value) = state.queue.pop_front() {
                            return Ok(value);
                        }
                        if state.senders == 0 {
                            return Err(RecvError);
                        }
                        state = self.chan.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match rt::current() {
                Some((exec, me)) => loop {
                    exec.yield_point(me);
                    {
                        let mut state = self.chan.state();
                        if let Some(value) = state.queue.pop_front() {
                            return Ok(value);
                        }
                        if state.senders == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        state.rx_waiting = Some(me);
                    }
                    // Timed block: the timeout fires only on schedules
                    // where nothing else can make progress.
                    if exec.block(me, true) {
                        let mut state = self.chan.state();
                        state.rx_waiting = None;
                        return match state.queue.pop_front() {
                            Some(value) => Ok(value),
                            None => Err(RecvTimeoutError::Timeout),
                        };
                    }
                },
                None => {
                    let deadline = Instant::now() + timeout;
                    let mut state = self.chan.state();
                    loop {
                        if let Some(value) = state.queue.pop_front() {
                            return Ok(value);
                        }
                        if state.senders == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        let (next, _) = self
                            .chan
                            .cv
                            .wait_timeout(state, deadline - now)
                            .unwrap_or_else(|e| e.into_inner());
                        state = next;
                    }
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if let Some((exec, me)) = rt::current() {
                exec.yield_point(me);
            }
            let mut state = self.chan.state();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over received values, ending at
        /// disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state().rx_alive = false;
        }
    }

    /// Borrowing blocking iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator (`for value in receiver`).
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

// ---------------------------------------------------------------------------
// atomic
// ---------------------------------------------------------------------------

/// Model-aware atomics. Every operation is a scheduling point; under
/// the sequentialized explorer all orderings behave as `SeqCst` (see
/// the crate docs for what that does and does not verify).
pub mod atomic {
    use crate::rt;

    pub use std::sync::atomic::Ordering;

    fn yield_op() {
        if let Some((exec, me)) = rt::current() {
            exec.yield_point(me);
        }
    }

    macro_rules! atomic_int {
        ($name:ident, $std:ident, $prim:ty) => {
            /// Model-aware integer atomic.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(value: $prim) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    yield_op();
                    self.inner.load(order)
                }

                pub fn store(&self, value: $prim, order: Ordering) {
                    yield_op();
                    self.inner.store(value, order)
                }

                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    yield_op();
                    self.inner.swap(value, order)
                }

                pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                    yield_op();
                    self.inner.fetch_add(value, order)
                }

                pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                    yield_op();
                    self.inner.fetch_sub(value, order)
                }

                pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                    yield_op();
                    self.inner.fetch_max(value, order)
                }

                pub fn fetch_min(&self, value: $prim, order: Ordering) -> $prim {
                    yield_op();
                    self.inner.fetch_min(value, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_op();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_op();
                    // Weak CAS may fail spuriously on real hardware;
                    // the model keeps it deterministic (strong) so
                    // executions replay exactly.
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    yield_op();
                    self.inner.fetch_update(set_order, fetch_order, f)
                }
            }
        };
    }

    atomic_int!(AtomicUsize, AtomicUsize, usize);
    atomic_int!(AtomicU64, AtomicU64, u64);
    atomic_int!(AtomicU32, AtomicU32, u32);

    /// Model-aware boolean atomic.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(value: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            yield_op();
            self.inner.load(order)
        }

        pub fn store(&self, value: bool, order: Ordering) {
            yield_op();
            self.inner.store(value, order)
        }

        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            yield_op();
            self.inner.swap(value, order)
        }

        pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
            yield_op();
            self.inner.fetch_or(value, order)
        }

        pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
            yield_op();
            self.inner.fetch_and(value, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            yield_op();
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}
