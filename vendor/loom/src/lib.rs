//! Vendored **loom-lite**: an offline, dependency-free model checker
//! for the repliflow concurrency facade, API-compatible with the
//! subset of [loom](https://docs.rs/loom) this workspace uses.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let c2 = Arc::clone(&counter);
//!     let handle = loom::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     handle.join().expect("joins");
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.schedules >= 2);
//! ```
//!
//! The closure is executed under **every** thread interleaving within
//! a bounded-preemption search (see [`Builder`]); a failing execution
//! reports its *schedule string*, which [`replay`] re-runs exactly.
//! See `vendor/loom/src/rt.rs` for the scheduler and the memory-model
//! caveats (operation interleavings are explored exhaustively; weak
//! memory reorderings are not).
//!
//! Outside a [`model`] run, every shim falls back to the real std
//! primitive, so `--cfg loom` builds of code that never enters a model
//! remain fully functional.

mod rt;
pub mod sync;
pub mod thread;

pub use rt::{replay, Builder, ModelFailure, Report};

/// Checks `f` under every schedule the default [`Builder`] explores,
/// panicking with a replayable schedule string on the first failure.
pub fn model<F: Fn()>(f: F) -> Report {
    Builder::default().model(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{mpsc, Arc, Condvar, Mutex, RwLock};

    #[test]
    fn sequential_closure_runs_once() {
        let report = crate::model(|| {
            let m = Mutex::new(1);
            *m.lock().expect("lock") += 1;
            assert_eq!(*m.lock().expect("lock"), 2);
        });
        assert_eq!(report.schedules, 1);
        assert!(report.complete);
    }

    #[test]
    fn explores_multiple_schedules() {
        let report = crate::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let h = crate::thread::spawn(move || {
                f2.store(true, Ordering::SeqCst);
            });
            // Both outcomes must be reachable; we only assert type
            // safety here — the counting test below checks coverage.
            let _ = flag.load(Ordering::SeqCst);
            h.join().expect("joins");
            assert!(flag.load(Ordering::SeqCst));
        });
        assert!(report.schedules >= 2, "only {} schedules", report.schedules);
        assert!(report.complete);
    }

    #[test]
    fn finds_atomicity_violation_and_replays_it() {
        // Classic lost update: read-modify-write split across two
        // atomic ops instead of one fetch_add.
        let racy = || {
            let counter = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                handles.push(crate::thread::spawn(move || {
                    let seen = c.load(Ordering::SeqCst);
                    c.store(seen + 1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().expect("joins");
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        };
        let failure = crate::Builder::default()
            .check(racy)
            .expect_err("the lost update must be found");
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
        assert!(!failure.schedule.is_empty());
        // The captured schedule reproduces the same failure on the
        // first try, and a corrected closure passes under any replay.
        let replayed =
            crate::replay(racy, &failure.schedule).expect_err("failing schedule must reproduce");
        assert!(replayed.message.contains("lost update"));
        crate::replay(
            || {
                let counter = Arc::new(AtomicUsize::new(0));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let c = Arc::clone(&counter);
                    handles.push(crate::thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }));
                }
                for h in handles {
                    h.join().expect("joins");
                }
                assert_eq!(counter.load(Ordering::SeqCst), 2);
            },
            &failure.schedule,
        )
        .expect("fixed closure passes under the old failing schedule");
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let report = crate::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = crate::thread::spawn(move || {
                let mut g = m2.lock().expect("lock");
                let seen = *g;
                *g = seen + 1;
            });
            {
                let mut g = m.lock().expect("lock");
                let seen = *g;
                *g = seen + 1;
            }
            h.join().expect("joins");
            assert_eq!(*m.lock().expect("lock"), 2);
        });
        assert!(report.schedules >= 2);
    }

    #[test]
    fn detects_deadlock_with_schedule() {
        let failure = crate::Builder::default()
            .check(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = crate::thread::spawn(move || {
                    let _ga = a2.lock().expect("lock a");
                    let _gb = b2.lock().expect("lock b");
                });
                let _gb = b.lock().expect("lock b");
                let _ga = a.lock().expect("lock a");
                drop((_gb, _ga));
                h.join().expect("joins");
            })
            .expect_err("lock-order inversion must deadlock somewhere");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn condvar_handshake_with_notify_under_lock_passes() {
        let report = crate::model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let h = crate::thread::spawn(move || {
                let (lock, cv) = &*s2;
                *lock.lock().expect("lock") = true;
                cv.notify_one();
            });
            let (lock, cv) = &*state;
            let mut ready = lock.lock().expect("lock");
            while !*ready {
                ready = cv.wait(ready).expect("wait");
            }
            drop(ready);
            h.join().expect("joins");
        });
        assert!(report.schedules >= 2);
    }

    #[test]
    fn condvar_lost_wakeup_found_when_publish_outside_lock() {
        // The notifier publishes through an atomic and notifies
        // without ever holding the mutex: the notification can land in
        // the waiter's check→wait gap and be lost for good.
        let failure = crate::Builder::default()
            .check(|| {
                let ready = Arc::new(AtomicBool::new(false));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let (r2, p2) = (Arc::clone(&ready), Arc::clone(&pair));
                let h = crate::thread::spawn(move || {
                    r2.store(true, Ordering::SeqCst);
                    p2.1.notify_one();
                });
                let (lock, cv) = &*pair;
                let mut guard = lock.lock().expect("lock");
                while !ready.load(Ordering::SeqCst) {
                    guard = cv.wait(guard).expect("wait");
                }
                drop(guard);
                h.join().expect("joins");
            })
            .expect_err("lost wakeup must be found");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn rwlock_readers_exclude_writer() {
        let report = crate::model(|| {
            let l = Arc::new(RwLock::new(7u32));
            let l2 = Arc::clone(&l);
            let h = crate::thread::spawn(move || {
                *l2.write().expect("write") += 1;
            });
            let seen = *l.read().expect("read");
            assert!(seen == 7 || seen == 8);
            h.join().expect("joins");
            assert_eq!(*l.read().expect("read"), 8);
        });
        assert!(report.schedules >= 2);
    }

    #[test]
    fn mpsc_delivers_and_disconnects() {
        let report = crate::model(|| {
            let (tx, rx) = mpsc::channel::<u32>();
            let h = crate::thread::spawn(move || {
                tx.send(1).expect("send");
                tx.send(2).expect("send");
            });
            assert_eq!(rx.recv().expect("recv"), 1);
            assert_eq!(rx.recv().expect("recv"), 2);
            h.join().expect("joins");
            assert!(rx.recv().is_err(), "all senders gone");
        });
        assert!(report.schedules >= 2);
    }

    #[test]
    fn mpsc_recv_timeout_fires_only_when_stuck() {
        let report = crate::model(|| {
            let (tx, rx) = mpsc::channel::<u32>();
            let h = crate::thread::spawn(move || {
                tx.send(9).expect("send");
                // keep tx alive until after the send
            });
            // Either the value arrives, or (on schedules where this
            // thread runs ahead and the model's logical timeout fires)
            // Timeout — never Disconnected while tx is alive and
            // unsent items remain possible.
            match rx.recv_timeout(std::time::Duration::from_millis(5)) {
                Ok(v) => assert_eq!(v, 9),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    assert_eq!(rx.recv().expect("value still arrives"), 9);
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("sender was alive")
                }
            }
            h.join().expect("joins");
        });
        assert!(report.schedules >= 1);
    }

    #[test]
    fn fallback_mode_without_model_uses_std() {
        // No model() wrapper: the shims must behave as plain std.
        let m = Mutex::new(5);
        assert_eq!(*m.lock().expect("lock"), 5);
        let (tx, rx) = mpsc::channel();
        let h = crate::thread::spawn(move || tx.send(42).expect("send"));
        assert_eq!(rx.recv().expect("recv"), 42);
        h.join().expect("joins");
        let flag = AtomicBool::new(false);
        flag.store(true, Ordering::SeqCst);
        assert!(flag.load(Ordering::SeqCst));
        assert!(crate::thread::available_parallelism().expect("cores").get() >= 1);
    }

    #[test]
    fn join_handle_reports_finish_and_value() {
        let report = crate::model(|| {
            let h = crate::thread::spawn(|| 21 * 2);
            let value = h.join().expect("joins");
            assert_eq!(value, 42);
        });
        assert!(report.schedules >= 1);
        // is_finished in fallback mode
        let h = crate::thread::spawn(|| ());
        h.join().expect("joins");
    }

    #[test]
    fn yield_now_hands_over_and_spin_waits_terminate() {
        let report = crate::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let h = crate::thread::spawn(move || {
                f2.store(true, Ordering::SeqCst);
            });
            while !flag.load(Ordering::SeqCst) {
                crate::thread::yield_now();
            }
            h.join().expect("joins");
        });
        assert!(report.schedules >= 1);
        assert!(report.complete);
    }

    #[test]
    fn preemption_bound_caps_exploration() {
        let small = crate::Builder {
            max_preemptions: 0,
            max_schedules: 10_000,
        }
        .check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let h = crate::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            h.join().expect("joins");
        })
        .expect("no failure");
        let full = crate::Builder {
            max_preemptions: 3,
            max_schedules: 10_000,
        }
        .check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let h = crate::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            h.join().expect("joins");
        })
        .expect("no failure");
        assert!(
            full.schedules > small.schedules,
            "bound 3 ({}) must explore more than bound 0 ({})",
            full.schedules,
            small.schedules
        );
    }
}
