//! Vendored, minimal property-testing harness with a `proptest`-shaped
//! API (the build environment has no network access to fetch the real
//! crate).
//!
//! Differences from real proptest: inputs are sampled from a fixed
//! deterministic seed (no persistence files), there is no shrinking —
//! a failing case panics with the sampled inputs' debug representation
//! via the standard assertion message — and only the strategy
//! combinators this workspace uses are provided: ranges over integers,
//! tuples, `prop_map`, `any::<bool>()` and `prop::collection::vec`.

use rand::rngs::StdRng;
use rand::Rng;

/// Number of sampled cases per property.
pub const CASES: usize = 96;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Always produces clones of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Marker for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen::<u64>()
    }
}

/// Strategy over every value of `T` (via [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<T>` with a length range.
        pub struct VecStrategy<S> {
            element: S,
            min_len: usize,
            max_len: usize,
        }

        /// Length specifications accepted by [`vec()`].
        pub trait IntoLenRange {
            /// The inclusive (min, max) bounds.
            fn bounds(self) -> (usize, usize);
        }

        impl IntoLenRange for ::std::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end);
                (self.start, self.end - 1)
            }
        }

        impl IntoLenRange for ::std::ops::RangeInclusive<usize> {
            fn bounds(self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl IntoLenRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self)
            }
        }

        /// proptest's `prop::collection::vec`.
        pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
            let (min_len, max_len) = len.bounds();
            VecStrategy {
                element,
                min_len,
                max_len,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.min_len..=self.max_len);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub fn new_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use super::prop;
    pub use super::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current sampled case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts `cond`, reporting the failing case number.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality, reporting both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples [`CASES`] cases from a seed derived
/// from the test name.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Deterministic per-test seed from the test name.
                let seed: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    });
                let mut rng = $crate::__rt::new_rng(seed);
                for _case in 0..$crate::CASES {
                    $(let $pat = $crate::Strategy::sample(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
}
