//! Vendored, dependency-free subset of `petgraph`: a directed graph
//! with node/edge weights plus Graphviz DOT rendering, covering exactly
//! what `repliflow-core::dot` uses (the build environment has no
//! network access to fetch the real crate).

/// Graph containers.
pub mod graph {
    /// Index of a node in a [`DiGraph`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct NodeIndex(pub usize);

    impl NodeIndex {
        /// The raw index.
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// Index of an edge in a [`DiGraph`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct EdgeIndex(pub usize);

    /// A directed graph with node weights `N` and edge weights `E`.
    #[derive(Clone, Debug, Default)]
    pub struct DiGraph<N, E> {
        pub(crate) nodes: Vec<N>,
        pub(crate) edges: Vec<(usize, usize, E)>,
    }

    impl<N, E> DiGraph<N, E> {
        /// An empty graph.
        pub fn new() -> Self {
            DiGraph {
                nodes: Vec::new(),
                edges: Vec::new(),
            }
        }

        /// Adds a node, returning its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            NodeIndex(self.nodes.len() - 1)
        }

        /// Adds a directed edge from `a` to `b`.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
            assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len());
            self.edges.push((a.0, b.0, weight));
            EdgeIndex(self.edges.len() - 1)
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }

        /// The weight of node `i`.
        pub fn node_weight(&self, i: NodeIndex) -> Option<&N> {
            self.nodes.get(i.0)
        }
    }
}

/// Graphviz DOT rendering.
pub mod dot {
    use super::graph::DiGraph;
    use std::fmt;

    /// Rendering options (subset).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Config {
        /// Emit only the graph body, without the `digraph { }` wrapper.
        GraphContentOnly,
        /// Do not emit node labels.
        NodeNoLabel,
        /// Do not emit edge labels.
        EdgeNoLabel,
    }

    /// Lazy DOT formatter over a graph, mirroring `petgraph::dot::Dot`.
    pub struct Dot<'a, N, E> {
        graph: &'a DiGraph<N, E>,
        content_only: bool,
    }

    impl<'a, N: fmt::Display, E: fmt::Display> Dot<'a, N, E> {
        /// Formatter with default options.
        pub fn new(graph: &'a DiGraph<N, E>) -> Self {
            Dot {
                graph,
                content_only: false,
            }
        }

        /// Formatter with the given options.
        pub fn with_config(graph: &'a DiGraph<N, E>, config: &[Config]) -> Self {
            Dot {
                graph,
                content_only: config.contains(&Config::GraphContentOnly),
            }
        }
    }

    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    impl<N: fmt::Display, E: fmt::Display> fmt::Display for Dot<'_, N, E> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if !self.content_only {
                writeln!(f, "digraph {{")?;
            }
            for (i, w) in self.graph.nodes.iter().enumerate() {
                writeln!(f, "    {i} [ label = \"{}\" ]", escape(&w.to_string()))?;
            }
            for (a, b, w) in &self.graph.edges {
                writeln!(
                    f,
                    "    {a} -> {b} [ label = \"{}\" ]",
                    escape(&w.to_string())
                )?;
            }
            if !self.content_only {
                writeln!(f, "}}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dot::{Config, Dot};
    use super::graph::DiGraph;

    #[test]
    fn build_and_render() {
        let mut g: DiGraph<String, String> = DiGraph::new();
        let a = g.add_node("A".to_string());
        let b = g.add_node("B \"q\"".to_string());
        g.add_edge(a, b, "e".to_string());
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let dot = format!("{}", Dot::with_config(&g, &[Config::GraphContentOnly]));
        assert!(dot.contains("label = \"A\""));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("B \\\"q\\\""));
        assert!(!dot.contains("digraph"));
        let full = format!("{}", Dot::new(&g));
        assert!(full.starts_with("digraph {"));
    }
}
