//! Vendored, dependency-free subset of `serde_json` working against the
//! vendored `serde` shim's [`Value`] data model.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] with
//! real-serde_json wire conventions for the types this workspace
//! derives (externally tagged enums, newtype structs as their inner
//! value, `null` for `Option::None`). [`from_str_streaming`] is the
//! single-pass counterpart of [`from_str`] for multi-MB inputs: it
//! deserializes straight off the text through
//! [`serde::de::JsonParser`], skipping the intermediate [`Value`] tree
//! (and its per-node allocations) entirely.

pub use serde::Value;
use serde::{Deserialize, DeserializeStream, Serialize};
use std::fmt::Write as _;

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl std::fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error::new(e)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in, colon) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * level),
            " ".repeat(width * (level + 1)),
            ": ",
        ),
        None => (Default::default(), String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(colon);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses `text` into a [`Value`] tree (one shared grammar: this is
/// [`serde::de::JsonParser::parse_value_tree`] plus an
/// end-of-input check).
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = serde::de::JsonParser::new(text);
    let value = parser.parse_value_tree()?;
    parser.end()?;
    Ok(value)
}

/// Deserializes a `T` from JSON text through the [`Value`] tree.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    Ok(T::deserialize(&parse_value(text)?)?)
}

/// Deserializes a `T` from JSON text in one streaming pass — no
/// intermediate [`Value`] tree, escape-free strings borrowed from the
/// input. Same wire format and acceptance as [`from_str`]; prefer this
/// for large instance files, where the tree's per-node allocations
/// dominate the parse.
pub fn from_str_streaming<T: DeserializeStream>(text: &str) -> Result<T, Error> {
    let mut parser = serde::de::JsonParser::new(text);
    let value = T::deserialize_stream(&mut parser)?;
    parser.end()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"\\n".into())),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            out
        };
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_floats() {
        let v = parse_value(" { \"x\" : [ 1 , 2.5 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "x".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)])
            )])
        );
    }

    #[test]
    fn streaming_primitives_match_the_tree_path() {
        assert_eq!(
            from_str_streaming::<Vec<i64>>("[1, -2, 3]").unwrap(),
            from_str::<Vec<i64>>("[1, -2, 3]").unwrap()
        );
        assert_eq!(
            from_str_streaming::<Option<bool>>("null").unwrap(),
            None::<bool>
        );
        assert_eq!(from_str_streaming::<f64>("2.5").unwrap(), 2.5);
        // escape-handling parity: escaped strings take the owned path,
        // clean strings borrow — both must decode identically
        let escaped = "\"a\\\"b\\\\c\\nd\\u0041\"";
        assert_eq!(
            from_str_streaming::<String>(escaped).unwrap(),
            from_str::<String>(escaped).unwrap()
        );
        assert_eq!(from_str_streaming::<String>("\"plain\"").unwrap(), "plain");
    }

    #[test]
    fn streaming_rejects_trailing_garbage_and_truncation() {
        assert!(from_str_streaming::<Vec<i64>>("[1] x").is_err());
        assert!(from_str_streaming::<Vec<i64>>("[1, 2").is_err());
        assert!(from_str_streaming::<bool>("tru").is_err());
    }

    #[test]
    fn streaming_value_equals_parse_value() {
        let text = "{\"a\": [1, 2.5, \"s\"], \"b\": {\"c\": null, \"d\": true}}";
        assert_eq!(
            from_str_streaming::<Value>(text).unwrap(),
            parse_value(text).unwrap()
        );
    }
}
