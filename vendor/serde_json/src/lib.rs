//! Vendored, dependency-free subset of `serde_json` working against the
//! vendored `serde` shim's [`Value`] data model.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] with
//! real-serde_json wire conventions for the types this workspace
//! derives (externally tagged enums, newtype structs as their inner
//! value, `null` for `Option::None`).

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl std::fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error::new(e)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in, colon) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * level),
            " ".repeat(width * (level + 1)),
            ": ",
        ),
        None => (Default::default(), String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(colon);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_lit("true", Value::Bool(true)),
            b'f' => self.parse_lit("false", Value::Bool(false)),
            b'n' => self.parse_lit("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Parses `text` into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    Ok(T::deserialize(&parse_value(text)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"\\n".into())),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            out
        };
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_floats() {
        let v = parse_value(" { \"x\" : [ 1 , 2.5 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "x".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)])
            )])
        );
    }
}
