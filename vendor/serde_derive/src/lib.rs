//! Vendored, dependency-free subset of `serde_derive`.
//!
//! The build environment has no network access, so the real `serde`
//! stack cannot be fetched. This proc-macro crate hand-parses the item
//! token stream (no `syn`/`quote`) and emits impls of the simplified
//! [`serde::Serialize`]/[`serde::Deserialize`] traits defined by the
//! sibling vendored `serde` crate, preserving serde_json's wire
//! conventions:
//!
//! * named struct  → JSON object of its fields
//! * newtype struct → the inner value
//! * tuple struct  → JSON array
//! * unit enum variant → `"Name"`
//! * newtype enum variant → `{"Name": value}`
//! * tuple enum variant → `{"Name": [..]}`
//! * struct enum variant → `{"Name": {..}}`
//!
//! Generics, lifetimes (other than `&'static str` fields) and serde
//! attributes are intentionally unsupported; the workspace does not use
//! them in derived types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: variants with their shapes.
    Enum(Vec<(String, Shape)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == word)
}

/// Skips outer attributes (`#[...]`, including doc comments) starting at
/// `i`; returns the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                if let TokenTree::Group(g) = &tokens[i + 1] {
                    if g.delimiter() == Delimiter::Bracket {
                        i += 2;
                        continue;
                    }
                }
            }
        }
        break;
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a field/variant list group at top-level commas.
fn split_top_level(group: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth = 0i32;
    for tt in group {
        match tt {
            TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.into_iter().filter(|seg| !seg.is_empty()).collect()
}

/// Parses `name: Type` segments of a named-field struct body.
fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    split_top_level(group)
        .into_iter()
        .map(|seg| {
            let i = skip_vis(&seg, skip_attrs(&seg, 0));
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, got {other}"),
            }
        })
        .collect()
}

fn parse_variant_shape(seg: &[TokenTree], i: usize) -> Shape {
    if i >= seg.len() {
        return Shape::Unit;
    }
    match &seg[i] {
        TokenTree::Group(g) => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match g.delimiter() {
                Delimiter::Parenthesis => Shape::Tuple(split_top_level(&inner).len()),
                Delimiter::Brace => Shape::Struct(parse_named_fields(&inner)),
                _ => panic!("serde_derive shim: unexpected variant delimiter"),
            }
        }
        other => panic!("serde_derive shim: unexpected token after variant name: {other}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!(
            "serde_derive shim: expected struct or enum, got {}",
            tokens[i]
        );
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '<' {
                panic!("serde_derive shim: generic types are not supported ({name})");
            }
        }
    }

    let shape = if is_enum {
        let TokenTree::Group(body) = &tokens[i] else {
            panic!("serde_derive shim: expected enum body");
        };
        let inner: Vec<TokenTree> = body.stream().into_iter().collect();
        let variants = split_top_level(&inner)
            .into_iter()
            .map(|seg| {
                let j = skip_attrs(&seg, 0);
                let vname = match &seg[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde_derive shim: expected variant name, got {other}"),
                };
                (vname, parse_variant_shape(&seg, j + 1))
            })
            .collect();
        Shape::Enum(variants)
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = body.stream().into_iter().collect();
                Shape::Struct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = body.stream().into_iter().collect();
                Shape::Tuple(split_top_level(&inner).len())
            }
            _ => Shape::Unit,
        }
    };
    Item { name, shape }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut fields = ::std::vec::Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Object(fields)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut s = String::from("let mut items = ::std::vec::Vec::new();\n");
            for k in 0..*n {
                s.push_str(&format!(
                    "items.push(::serde::Serialize::serialize(&self.{k}));\n"
                ));
            }
            s.push_str("::serde::Value::Array(items)");
            s
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(x0) => ::serde::Value::variant(\"{v}\", \
                         ::serde::Serialize::serialize(x0)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let mut push = String::from("let mut items = ::std::vec::Vec::new();\n");
                        for b in &binds {
                            push.push_str(&format!(
                                "items.push(::serde::Serialize::serialize({b}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v}({}) => {{ {push} ::serde::Value::variant(\"{v}\", \
                             ::serde::Value::Array(items)) }},\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut push = String::from("let mut fs = ::std::vec::Vec::new();\n");
                        for f in fields {
                            push.push_str(&format!(
                                "fs.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ {push} \
                             ::serde::Value::variant(\"{v}\", ::serde::Value::Object(fs)) }},\n"
                        ));
                    }
                    Shape::Enum(_) => unreachable!(),
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_struct_fields_de(type_path: &str, fields: &[String], src: &str) -> String {
    let mut s = format!("::std::result::Result::Ok({type_path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize({src}.field(\"{f}\")\
             .ok_or_else(|| ::serde::de::Error::missing_field(\"{f}\", \"{type_path}\"))?)?,\n"
        ));
    }
    s.push_str("})");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => gen_struct_fields_de(name, fields, "value"),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let items = value.as_array()\
                 .ok_or_else(|| ::serde::de::Error::expected(\"array\", \"{name}\"))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::expected(\"{n}-element array\", \"{name}\")); }}\n\
                 ::std::result::Result::Ok({name}(",
            );
            for k in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::deserialize(&items[{k}])?, "
                ));
            }
            s.push_str("))");
            s
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n"
                        ));
                        // externally tagged form {"V": null} also accepted
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                        ));
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let mut arm = format!(
                            "\"{v}\" => {{ let items = payload.as_array()\
                             .ok_or_else(|| ::serde::de::Error::expected(\"array\", \"{name}::{v}\"))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::de::Error::expected(\"{n}-element array\", \"{name}::{v}\")); }}\n\
                             ::std::result::Result::Ok({name}::{v}("
                        );
                        for k in 0..*n {
                            arm.push_str(&format!(
                                "::serde::Deserialize::deserialize(&items[{k}])?, "
                            ));
                        }
                        arm.push_str(")) },\n");
                        tagged_arms.push_str(&arm);
                    }
                    Shape::Struct(fields) => {
                        let construct =
                            gen_struct_fields_de(&format!("{name}::{v}"), fields, "payload");
                        tagged_arms.push_str(&format!("\"{v}\" => {{ {construct} }},\n"));
                    }
                    Shape::Enum(_) => unreachable!(),
                }
            }
            format!(
                "if let ::std::option::Option::Some(tag) = value.as_str() {{\n\
                 match tag {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(tag, \"{name}\")), }}\n}}\n\
                 let (tag, payload) = value.as_variant()\
                 .ok_or_else(|| ::serde::de::Error::expected(\"variant object\", \"{name}\"))?;\n\
                 match tag {{\n{tagged_arms}\
                 _ => ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(tag, \"{name}\")), }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Named-struct body of a streaming impl: out-of-order fields into
/// `Option` temporaries (types inferred from the construction site),
/// unknown fields skipped — same acceptance as the tree path's
/// `field()` lookups.
fn gen_struct_fields_stream(path: &str, type_name: &str, fields: &[String]) -> String {
    let mut s = String::from("{\n");
    for f in fields {
        s.push_str(&format!("let mut __f_{f} = ::std::option::Option::None;\n"));
    }
    s.push_str(
        "parser.begin_object()?;\n\
         let mut __first = true;\n\
         while let ::std::option::Option::Some(__key) = parser.object_next(__first)? {\n\
         __first = false;\n\
         match ::std::convert::AsRef::<str>::as_ref(&__key) {\n",
    );
    for f in fields {
        s.push_str(&format!(
            "\"{f}\" => __f_{f} = ::std::option::Option::Some(\
             ::serde::DeserializeStream::deserialize_stream(parser)?),\n"
        ));
    }
    s.push_str("_ => parser.skip_value()?,\n}\n}\n");
    s.push_str(&format!("::std::result::Result::Ok({path} {{\n"));
    for f in fields {
        s.push_str(&format!(
            "{f}: __f_{f}.ok_or_else(|| \
             ::serde::de::Error::missing_field(\"{f}\", \"{type_name}\"))?,\n"
        ));
    }
    s.push_str("})\n}");
    s
}

/// Tuple body of a streaming impl: fixed-arity array.
fn gen_tuple_stream(path: &str, type_name: &str, n: usize) -> String {
    let mut s = String::from("{\nparser.begin_array()?;\n");
    for k in 0..n {
        s.push_str(&format!(
            "let __x{k} = {{ if !parser.array_next({first})? {{ \
             return ::std::result::Result::Err(\
             ::serde::de::Error::expected(\"{n}-element array\", \"{type_name}\")); }} \
             ::serde::DeserializeStream::deserialize_stream(parser)? }};\n",
            first = k == 0,
        ));
    }
    s.push_str(&format!(
        "if parser.array_next(false)? {{ return ::std::result::Result::Err(\
         ::serde::de::Error::expected(\"{n}-element array\", \"{type_name}\")); }}\n"
    ));
    let binds: Vec<String> = (0..n).map(|k| format!("__x{k}")).collect();
    s.push_str(&format!(
        "::std::result::Result::Ok({path}({}))\n}}",
        binds.join(", ")
    ));
    s
}

fn gen_deserialize_stream(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => gen_struct_fields_stream(name, name, fields),
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::DeserializeStream::deserialize_stream(parser)?))"
        ),
        Shape::Tuple(n) => gen_tuple_stream(name, name, *n),
        Shape::Unit => format!("parser.skip_value()?;\n::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                        ));
                        // externally tagged form {"V": <ignored>} also accepted
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ parser.skip_value()?; \
                             ::std::result::Result::Ok({name}::{v}) }},\n"
                        ));
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::DeserializeStream::deserialize_stream(parser)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let block =
                            gen_tuple_stream(&format!("{name}::{v}"), &format!("{name}::{v}"), *n);
                        tagged_arms.push_str(&format!("\"{v}\" => {block},\n"));
                    }
                    Shape::Struct(fields) => {
                        let block = gen_struct_fields_stream(&format!("{name}::{v}"), name, fields);
                        tagged_arms.push_str(&format!("\"{v}\" => {block},\n"));
                    }
                    Shape::Enum(_) => unreachable!(),
                }
            }
            // a bare string is a unit variant; otherwise a single-key
            // externally tagged object
            format!(
                "if parser.peek() == ::std::option::Option::Some(34u8) {{\n\
                 let __tag = parser.parse_str()?;\n\
                 return match ::std::convert::AsRef::<str>::as_ref(&__tag) {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(__other, \"{name}\")), }};\n}}\n\
                 parser.begin_object()?;\n\
                 let ::std::option::Option::Some(__tag) = parser.object_next(true)? else {{\n\
                 return ::std::result::Result::Err(\
                 ::serde::de::Error::expected(\"variant object\", \"{name}\"));\n}};\n\
                 let __value = (match ::std::convert::AsRef::<str>::as_ref(&__tag) {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(__other, \"{name}\")), }})?;\n\
                 if parser.object_next(false)?.is_some() {{\n\
                 return ::std::result::Result::Err(\
                 ::serde::de::Error::expected(\"single-key variant object\", \"{name}\"));\n}}\n\
                 ::std::result::Result::Ok(__value)"
            )
        }
    };
    format!(
        "impl ::serde::DeserializeStream for {name} {{\n\
         fn deserialize_stream(parser: &mut ::serde::de::JsonParser<'_>) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the vendored `serde::Deserialize` **and**
/// `serde::DeserializeStream` traits (both read the same wire format;
/// the streaming impl parses straight off the JSON text).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = gen_deserialize(&item);
    out.push_str(&gen_deserialize_stream(&item));
    out.parse().expect("generated Deserialize impl parses")
}
