//! # repliflow
//!
//! A faithful, fully tested Rust implementation of
//! *"Complexity results for throughput and latency optimization of replicated
//! and data-parallel workflows"* (Anne Benoit & Yves Robert, IEEE Cluster
//! 2007 / INRIA RR-6308).
//!
//! The paper studies the mapping of **pipeline** and **fork** workflow graphs
//! onto homogeneous and heterogeneous platforms under a simplified
//! no-communication model, where stage intervals may be **replicated**
//! (round-robin over data sets, improving the period) or single stages may be
//! **data-parallelized** (sharing one data set across processors, improving
//! both period and latency). It establishes, for all sixteen combinations of
//! {pipeline, fork} × {homogeneous, heterogeneous app} × {homogeneous,
//! heterogeneous platform} × {with, without data-parallelism} × {period,
//! latency, bi-criteria}, whether the optimal mapping is computable in
//! polynomial time — and gives the algorithm — or NP-complete — and gives the
//! reduction.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`core`] — workflow graphs, platforms, mappings and the
//!   exact-rational cost model (Section 3).
//! * [`solver`] — **the one public way to solve anything**: the
//!   `SolveRequest → SolveReport` engine API whose registry
//!   auto-routes every Table 1 cell (paper algorithm / exhaustive
//!   search / heuristics), plus the `SolverService` serving layer
//!   (persistent worker pool, LRU solve cache, deadlines/cancellation,
//!   order-tagged streaming) that the free `solve`/`solve_batch`
//!   wrappers ride on.
//! * [`algorithms`] — every polynomial algorithm in the
//!   paper (Theorems 1–4, 6–8, 10–11, 14 and the Section 6.3 fork-join
//!   extensions).
//! * [`exact`] — exhaustive and Pareto-frontier exact
//!   solvers used as ground truth.
//! * [`reductions`] — executable NP-hardness reductions
//!   (Theorems 5, 9, 12, 13, 15) from 2-PARTITION and N3DM.
//! * [`heuristics`] — heuristics for the NP-hard
//!   variants (the paper's stated future work).
//! * [`sim`] — a discrete-event simulator that executes
//!   mapped workflows and independently validates the analytic formulas.
//!
//! ## Quickstart
//!
//! ```
//! use repliflow::prelude::*;
//!
//! // The 4-stage pipeline of the paper's Section 2 example on three
//! // identical unit-speed processors, optimizing the period.
//! let instance = ProblemInstance::new(
//!     Pipeline::new(vec![14, 4, 2, 4]),
//!     Platform::homogeneous(3, 1),
//!     true,
//!     Objective::Period,
//! );
//!
//! // The registry classifies the Table 1 cell (polynomial, Theorem 1)
//! // and runs the paper's algorithm: replicate everything everywhere.
//! let report = repliflow::solver::solve(&SolveRequest::new(instance)).unwrap();
//! assert_eq!(report.optimality, Optimality::Proven);
//! assert_eq!(report.period.unwrap(), Rat::new(24, 3)); // 24 work / 3 procs
//! ```

pub use repliflow_algorithms as algorithms;
pub use repliflow_core as core;
pub use repliflow_exact as exact;
pub use repliflow_heuristics as heuristics;
pub use repliflow_reductions as reductions;
pub use repliflow_sim as sim;
pub use repliflow_solver as solver;

/// Convenient glob-import of the most used types across the workspace.
pub mod prelude {
    pub use repliflow_core::prelude::*;
    pub use repliflow_solver::{
        Budget, CancelToken, Deadline, EnginePref, Optimality, Provenance, Quality, SolveReport,
        SolveRequest, SolverService,
    };
}
