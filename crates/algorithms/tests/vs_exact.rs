//! The central optimality validation of the reproduction: every
//! polynomial algorithm of the paper is checked against the exhaustive
//! `repliflow-exact` oracle on randomized instances of its Table 1 cell.
//!
//! Each test draws seeded random instances (small enough for exhaustive
//! optimization) and asserts the algorithm's objective value equals the
//! exact optimum — i.e. the paper's optimality claims hold empirically on
//! every sampled instance.

use repliflow_algorithms::{forkjoin, het_fork, het_pipeline, hom_fork, hom_pipeline};
use repliflow_core::gen::Gen;
use repliflow_core::rational::Rat;
use repliflow_exact::{pareto_fork, pareto_forkjoin, pareto_pipeline, Goal};

#[test]
fn theorem1_min_period_matches_exact() {
    let mut gen = Gen::new(0xA1);
    for case in 0..40 {
        let n = gen.size(1, 5);
        let p = gen.size(1, 5);
        let pipe = gen.pipeline(n, 1, 15);
        let plat = gen.hom_platform(p, 1, 4);
        let sol = hom_pipeline::min_period(&pipe, &plat);
        for allow_dp in [false, true] {
            let exact =
                repliflow_exact::solve_pipeline(&pipe, &plat, allow_dp, Goal::MinPeriod).unwrap();
            assert_eq!(sol.period, exact.period, "case {case} dp={allow_dp}");
        }
    }
}

#[test]
fn theorem2_min_latency_no_dp_matches_exact() {
    let mut gen = Gen::new(0xA2);
    for case in 0..40 {
        let n = gen.size(1, 5);
        let p = gen.size(1, 5);
        let pipe = gen.pipeline(n, 1, 15);
        let plat = gen.hom_platform(p, 1, 4);
        let sol = hom_pipeline::min_latency_no_dp(&pipe, &plat);
        let exact = repliflow_exact::solve_pipeline(&pipe, &plat, false, Goal::MinLatency).unwrap();
        assert_eq!(sol.latency, exact.latency, "case {case}");
    }
}

#[test]
fn theorem3_min_latency_dp_matches_exact() {
    let mut gen = Gen::new(0xA3);
    for case in 0..40 {
        let n = gen.size(1, 5);
        let p = gen.size(1, 5);
        let pipe = gen.pipeline(n, 1, 15);
        let plat = gen.hom_platform(p, 1, 4);
        let sol = hom_pipeline::min_latency_dp(&pipe, &plat);
        let exact = repliflow_exact::solve_pipeline(&pipe, &plat, true, Goal::MinLatency).unwrap();
        assert_eq!(sol.latency, exact.latency, "case {case}");
    }
}

#[test]
fn theorem4_bicriteria_matches_exact_frontier() {
    let mut gen = Gen::new(0xA4);
    for case in 0..25 {
        let n = gen.size(1, 4);
        let p = gen.size(1, 4);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.hom_platform(p, 1, 3);
        let frontier = pareto_pipeline(&pipe, &plat, true);
        for point in frontier.points() {
            let sol = hom_pipeline::min_latency_under_period(&pipe, &plat, point.period)
                .expect("frontier point is feasible");
            assert_eq!(sol.latency, point.latency, "case {case} P={}", point.period);
            let sol = hom_pipeline::min_period_under_latency(&pipe, &plat, point.latency)
                .expect("frontier point is feasible");
            assert_eq!(sol.period, point.period, "case {case} L={}", point.latency);
        }
    }
}

#[test]
fn theorem6_min_latency_matches_exact() {
    let mut gen = Gen::new(0xA6);
    for case in 0..40 {
        let n = gen.size(1, 5);
        let p = gen.size(1, 5);
        let pipe = gen.pipeline(n, 1, 15);
        let plat = gen.het_platform(p, 1, 6);
        let sol = het_pipeline::min_latency_no_dp(&pipe, &plat);
        let exact = repliflow_exact::solve_pipeline(&pipe, &plat, false, Goal::MinLatency).unwrap();
        assert_eq!(sol.latency, exact.latency, "case {case}");
    }
}

#[test]
fn theorem7_min_period_uniform_matches_exact() {
    let mut gen = Gen::new(0xA7);
    for case in 0..40 {
        let n = gen.size(1, 5);
        let p = gen.size(1, 5);
        let pipe = gen.uniform_pipeline(n, 1, 12);
        let plat = gen.het_platform(p, 1, 6);
        let sol = het_pipeline::min_period_uniform(&pipe, &plat);
        let exact = repliflow_exact::solve_pipeline(&pipe, &plat, false, Goal::MinPeriod).unwrap();
        assert_eq!(sol.period, exact.period, "case {case}");
    }
}

#[test]
fn theorem8_bicriteria_uniform_matches_exact_frontier() {
    let mut gen = Gen::new(0xA8);
    for case in 0..25 {
        let n = gen.size(1, 4);
        let p = gen.size(1, 4);
        let pipe = gen.uniform_pipeline(n, 1, 10);
        let plat = gen.het_platform(p, 1, 5);
        let frontier = pareto_pipeline(&pipe, &plat, false);
        for point in frontier.points() {
            let sol = het_pipeline::min_latency_under_period_uniform(&pipe, &plat, point.period)
                .expect("frontier point is feasible");
            assert_eq!(sol.latency, point.latency, "case {case} P={}", point.period);
            let sol = het_pipeline::min_period_under_latency_uniform(&pipe, &plat, point.latency)
                .expect("frontier point is feasible");
            assert_eq!(sol.period, point.period, "case {case} L={}", point.latency);
        }
    }
}

#[test]
fn theorem10_fork_min_period_matches_exact() {
    let mut gen = Gen::new(0xB0);
    for case in 0..40 {
        let leaves = gen.size(0, 4);
        let p = gen.size(1, 4);
        let fork = gen.fork(leaves, 1, 10); // heterogeneous fork allowed
        let plat = gen.hom_platform(p, 1, 4);
        let sol = hom_fork::min_period(&fork, &plat);
        for allow_dp in [false, true] {
            let exact =
                repliflow_exact::solve_fork(&fork, &plat, allow_dp, Goal::MinPeriod).unwrap();
            assert_eq!(sol.period, exact.period, "case {case} dp={allow_dp}");
        }
    }
}

#[test]
fn theorem11_fork_min_latency_matches_exact() {
    let mut gen = Gen::new(0xB1);
    for case in 0..40 {
        let leaves = gen.size(0, 4);
        let p = gen.size(1, 4);
        let fork = gen.uniform_fork(leaves, 1, 10);
        let plat = gen.hom_platform(p, 1, 4);
        for allow_dp in [false, true] {
            let sol = hom_fork::min_latency(&fork, &plat, allow_dp);
            let exact =
                repliflow_exact::solve_fork(&fork, &plat, allow_dp, Goal::MinLatency).unwrap();
            assert_eq!(sol.latency, exact.latency, "case {case} dp={allow_dp}");
        }
    }
}

#[test]
fn theorem11_fork_bicriteria_matches_exact_frontier() {
    let mut gen = Gen::new(0xB2);
    for case in 0..20 {
        let leaves = gen.size(0, 3);
        let p = gen.size(1, 4);
        let fork = gen.uniform_fork(leaves, 1, 8);
        let plat = gen.hom_platform(p, 1, 3);
        for allow_dp in [false, true] {
            let frontier = pareto_fork(&fork, &plat, allow_dp);
            for point in frontier.points() {
                let sol = hom_fork::min_latency_under_period(&fork, &plat, allow_dp, point.period)
                    .expect("frontier point is feasible");
                assert_eq!(
                    sol.latency, point.latency,
                    "case {case} dp={allow_dp} P={}",
                    point.period
                );
                let sol = hom_fork::min_period_under_latency(&fork, &plat, allow_dp, point.latency)
                    .expect("frontier point is feasible");
                assert_eq!(
                    sol.period, point.period,
                    "case {case} dp={allow_dp} L={}",
                    point.latency
                );
            }
        }
    }
}

#[test]
fn theorem14_het_fork_matches_exact() {
    let mut gen = Gen::new(0xB4);
    for case in 0..30 {
        let leaves = gen.size(0, 4);
        let p = gen.size(1, 4);
        let fork = gen.uniform_fork(leaves, 1, 10);
        let plat = gen.het_platform(p, 1, 5);
        let sol = het_fork::min_period_uniform(&fork, &plat);
        let exact = repliflow_exact::solve_fork(&fork, &plat, false, Goal::MinPeriod).unwrap();
        assert_eq!(sol.period, exact.period, "case {case} period");
        let sol = het_fork::min_latency_uniform(&fork, &plat);
        let exact = repliflow_exact::solve_fork(&fork, &plat, false, Goal::MinLatency).unwrap();
        assert_eq!(sol.latency, exact.latency, "case {case} latency");
    }
}

#[test]
fn theorem14_het_fork_bicriteria_matches_exact_frontier() {
    let mut gen = Gen::new(0xB5);
    for case in 0..15 {
        let leaves = gen.size(0, 3);
        let p = gen.size(1, 3);
        let fork = gen.uniform_fork(leaves, 1, 8);
        let plat = gen.het_platform(p, 1, 4);
        let frontier = pareto_fork(&fork, &plat, false);
        for point in frontier.points() {
            let sol = het_fork::min_latency_under_period_uniform(&fork, &plat, point.period)
                .expect("frontier point is feasible");
            assert_eq!(sol.latency, point.latency, "case {case} P={}", point.period);
            let sol = het_fork::min_period_under_latency_uniform(&fork, &plat, point.latency)
                .expect("frontier point is feasible");
            assert_eq!(sol.period, point.period, "case {case} L={}", point.latency);
        }
    }
}

#[test]
fn forkjoin_hom_platform_matches_exact() {
    let mut gen = Gen::new(0xB6);
    for case in 0..25 {
        let leaves = gen.size(0, 3);
        let p = gen.size(1, 4);
        let fj = gen.uniform_forkjoin(leaves, 1, 8);
        let plat = gen.hom_platform(p, 1, 3);
        // period (replicate-all is optimal; any fork-join)
        let sol = forkjoin::min_period(&fj, &plat);
        let exact = repliflow_exact::solve_forkjoin(&fj, &plat, false, Goal::MinPeriod).unwrap();
        assert_eq!(sol.period, exact.period, "case {case} period");
        // latency, both models
        for allow_dp in [false, true] {
            let sol = forkjoin::min_latency_hom(&fj, &plat, allow_dp);
            let exact =
                repliflow_exact::solve_forkjoin(&fj, &plat, allow_dp, Goal::MinLatency).unwrap();
            assert_eq!(sol.latency, exact.latency, "case {case} dp={allow_dp}");
        }
    }
}

#[test]
fn forkjoin_het_platform_matches_exact() {
    let mut gen = Gen::new(0xB7);
    for case in 0..20 {
        let leaves = gen.size(0, 3);
        let p = gen.size(1, 3);
        let fj = gen.uniform_forkjoin(leaves, 1, 8);
        let plat = gen.het_platform(p, 1, 4);
        let sol = forkjoin::min_period_uniform_het(&fj, &plat);
        let exact = repliflow_exact::solve_forkjoin(&fj, &plat, false, Goal::MinPeriod).unwrap();
        assert_eq!(sol.period, exact.period, "case {case} period");
        let sol = forkjoin::min_latency_uniform_het(&fj, &plat);
        let exact = repliflow_exact::solve_forkjoin(&fj, &plat, false, Goal::MinLatency).unwrap();
        assert_eq!(sol.latency, exact.latency, "case {case} latency");
    }
}

#[test]
fn forkjoin_het_bicriteria_matches_exact_frontier() {
    let mut gen = Gen::new(0xB8);
    for case in 0..10 {
        let leaves = gen.size(0, 2);
        let p = gen.size(1, 3);
        let fj = gen.uniform_forkjoin(leaves, 1, 6);
        let plat = gen.het_platform(p, 1, 4);
        let frontier = pareto_forkjoin(&fj, &plat, false);
        for point in frontier.points() {
            let sol = forkjoin::min_latency_under_period_uniform_het(&fj, &plat, point.period)
                .expect("frontier point is feasible");
            assert_eq!(sol.latency, point.latency, "case {case} P={}", point.period);
            let sol = forkjoin::min_period_under_latency_uniform_het(&fj, &plat, point.latency)
                .expect("frontier point is feasible");
            assert_eq!(sol.period, point.period, "case {case} L={}", point.latency);
        }
    }
}

#[test]
fn every_algorithm_mapping_is_self_consistent() {
    // Each returned mapping re-evaluates to the reported values.
    let mut gen = Gen::new(0xB9);
    for _ in 0..20 {
        let n = gen_size(&mut gen);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.hom_platform(3, 1, 3);
        let sol = hom_pipeline::min_latency_dp(&pipe, &plat);
        assert_eq!(pipe.latency(&plat, &sol.mapping).unwrap(), sol.latency);
        assert_eq!(pipe.period(&plat, &sol.mapping).unwrap(), sol.period);
        assert_eq!(sol.objective, sol.latency);
    }
}

fn gen_size(gen: &mut Gen) -> usize {
    gen.size(1, 5)
}

#[test]
fn unconstrained_bounds_recover_mono_criterion_optima() {
    let mut gen = Gen::new(0xBA);
    for _ in 0..15 {
        let sz = gen.size(1, 4);

        let pipe = gen.uniform_pipeline(sz, 1, 9);
        let sz = gen.size(1, 4);

        let plat = gen.het_platform(sz, 1, 5);
        let unconstrained =
            het_pipeline::min_latency_under_period_uniform(&pipe, &plat, Rat::INFINITY).unwrap();
        let direct = het_pipeline::min_latency_no_dp(&pipe, &plat);
        assert_eq!(unconstrained.latency, direct.latency);
    }
}
