//! Property-based tests over the algorithm suite: structural invariants
//! that must hold on *every* instance, independent of the exact oracle.

use proptest::prelude::*;
use repliflow_algorithms::{chains, het_fork, het_pipeline, hom_pipeline};
use repliflow_core::platform::Platform;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::{Fork, Pipeline};

proptest! {
    /// chains-to-chains: the DP optimum is a lower bound on every
    /// prefix-cut partition, and the probe agrees with it.
    #[test]
    fn chains_dp_lower_bounds_all_partitions(
        a in prop::collection::vec(1u64..=50, 1..=10),
        p in 1usize..=5,
        cut_bits in 0u32..1024,
    ) {
        let (opt, _) = chains::dp(&a, p);
        // build an arbitrary partition with at most p intervals
        let mut partition = Vec::new();
        let mut lo = 0;
        for i in 1..a.len() {
            if cut_bits >> i & 1 == 1 && partition.len() + 1 < p {
                partition.push((lo, i - 1));
                lo = i;
            }
        }
        partition.push((lo, a.len() - 1));
        prop_assert!(opt <= chains::bottleneck(&a, &partition));
        // probe consistency at the optimum
        prop_assert!(chains::probe(&a, p, opt));
        if opt > 0 {
            prop_assert!(!chains::probe(&a, p, opt - 1));
        }
    }

    /// Theorem 1's optimum is total work over total capacity and lower
    /// bounds the latency divided by p.
    #[test]
    fn thm1_value_formula(
        weights in prop::collection::vec(1u64..=30, 1..=8),
        p in 1usize..=6,
        s in 1u64..=5,
    ) {
        let pipe = Pipeline::new(weights.clone());
        let plat = Platform::homogeneous(p, s);
        let sol = hom_pipeline::min_period(&pipe, &plat);
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(sol.period, Rat::ratio(total, p as u64 * s));
        prop_assert_eq!(sol.latency, Rat::ratio(total, s));
    }

    /// Theorem 3: more processors never hurt the optimal latency, and the
    /// latency is bounded by Theorem 2's replication-only value.
    #[test]
    fn thm3_monotone_in_processors(
        weights in prop::collection::vec(1u64..=30, 1..=6),
        s in 1u64..=4,
    ) {
        let pipe = Pipeline::new(weights.clone());
        let mut previous = Rat::INFINITY;
        for p in 1..=6 {
            let plat = Platform::homogeneous(p, s);
            let sol = hom_pipeline::min_latency_dp(&pipe, &plat);
            prop_assert!(sol.latency <= previous);
            prop_assert!(sol.latency <= Rat::ratio(weights.iter().sum(), s));
            previous = sol.latency;
        }
    }

    /// Theorem 7: the optimal period of a homogeneous pipeline never
    /// increases when a processor is added, and is bounded between the
    /// work/capacity lower bound and the fastest-single-processor value.
    #[test]
    fn thm7_monotone_and_bounded(
        n in 1usize..=6,
        w in 1u64..=20,
        speeds in prop::collection::vec(1u64..=8, 1..=5),
    ) {
        let pipe = Pipeline::uniform(n, w);
        let mut previous = Rat::INFINITY;
        for used in 1..=speeds.len() {
            let plat = Platform::heterogeneous(speeds[..used].to_vec());
            let sol = het_pipeline::min_period_uniform(&pipe, &plat);
            prop_assert!(sol.period <= previous, "period must not increase");
            let lower = Rat::ratio(n as u64 * w, plat.total_speed());
            let upper = Rat::ratio(
                n as u64 * w,
                plat.speed(plat.fastest()),
            );
            prop_assert!(sol.period >= lower);
            prop_assert!(sol.period <= upper);
            previous = sol.period;
        }
    }

    /// Theorem 6: the fastest-single mapping's latency equals total work
    /// over the fastest speed, for any pipeline.
    #[test]
    fn thm6_value_formula(
        weights in prop::collection::vec(1u64..=30, 1..=8),
        speeds in prop::collection::vec(1u64..=8, 1..=6),
    ) {
        let pipe = Pipeline::new(weights.clone());
        let plat = Platform::heterogeneous(speeds.clone());
        let sol = het_pipeline::min_latency_no_dp(&pipe, &plat);
        let fastest = *speeds.iter().max().unwrap();
        prop_assert_eq!(sol.latency, Rat::ratio(weights.iter().sum(), fastest));
    }

    /// Theorem 14: both objectives bounded by the everything-on-fastest
    /// mapping; period additionally bounded below by work/capacity.
    #[test]
    fn thm14_bounds(
        leaves in 0usize..=5,
        w in 1u64..=15,
        w0 in 1u64..=15,
        speeds in prop::collection::vec(1u64..=8, 1..=4),
    ) {
        let fork = Fork::uniform(w0, leaves, w);
        let plat = Platform::heterogeneous(speeds.clone());
        let fastest = *speeds.iter().max().unwrap();
        let single = Rat::ratio(fork.total_work(), fastest);
        let sol = het_fork::min_period_uniform(&fork, &plat);
        prop_assert!(sol.period <= single);
        prop_assert!(sol.period >= Rat::ratio(fork.total_work(), plat.total_speed()));
        let sol = het_fork::min_latency_uniform(&fork, &plat);
        prop_assert!(sol.latency <= single);
        // latency can never beat the root + one leaf on the fastest proc
        let floor = Rat::ratio(w0, fastest)
            + if leaves > 0 { Rat::ratio(w, fastest) } else { Rat::ZERO };
        prop_assert!(sol.latency >= floor);
    }

    /// Bi-criteria coherence: tightening the period bound never improves
    /// the optimal latency (Theorem 4).
    #[test]
    fn thm4_latency_antitone_in_period_bound(
        weights in prop::collection::vec(1u64..=20, 1..=5),
        p in 1usize..=4,
    ) {
        let pipe = Pipeline::new(weights);
        let plat = Platform::homogeneous(p, 1);
        let loose = hom_pipeline::min_latency_under_period(&pipe, &plat, Rat::INFINITY)
            .expect("unbounded is feasible");
        let mid = hom_pipeline::min_latency_under_period(&pipe, &plat, loose.period);
        if let Some(mid) = mid {
            prop_assert!(mid.latency >= loose.latency || mid.latency == loose.latency);
        }
        // the unconstrained optimum equals Theorem 3
        let thm3 = hom_pipeline::min_latency_dp(&pipe, &plat);
        prop_assert_eq!(loose.latency, thm3.latency);
    }
}
