//! The chains-to-chains substrate (Section 1).
//!
//! Given an array `a_1 .. a_n`, partition it into at most `p` consecutive
//! intervals minimizing the largest interval sum. The paper points out that
//! period minimization of a pipeline on identical processors *without
//! replication* is exactly this classical problem ([9, 13, 21, 22] in the
//! paper's bibliography), and asks whether it stays polynomial under
//! replication / data-parallelism and different-speed processors — which is
//! what the rest of the workspace answers. This module provides three
//! independent solvers for the classical problem:
//!
//! * [`dp`] — the textbook `O(n² p)` dynamic program;
//! * [`probe`] + [`binary_search`] — the parametric-search approach: a
//!   greedy linear-time feasibility probe driven by a search over the
//!   `O(n²)` candidate bottleneck values (all interval sums), which is
//!   exact (no epsilon);
//! * [`greedy`] — the averaging heuristic, used as a baseline.

/// A partition of `0..n` into consecutive intervals, as inclusive bounds.
pub type IntervalPartition = Vec<(usize, usize)>;

/// Largest interval sum of a partition.
pub fn bottleneck(a: &[u64], partition: &IntervalPartition) -> u64 {
    partition
        .iter()
        .map(|&(lo, hi)| a[lo..=hi].iter().sum())
        .max()
        .unwrap_or(0)
}

/// Classical `O(n² p)` dynamic program. Returns the optimal bottleneck and
/// a partition achieving it (at most `p` intervals).
///
/// # Panics
/// Panics if `a` is empty or `p == 0`.
pub fn dp(a: &[u64], p: usize) -> (u64, IntervalPartition) {
    let n = a.len();
    assert!(n > 0 && p > 0);
    let p = p.min(n);
    let mut prefix = vec![0u64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + a[i];
    }
    let sum = |lo: usize, hi: usize| prefix[hi + 1] - prefix[lo];

    // best[k][i]: optimal bottleneck for the first i elements in k intervals
    let inf = u64::MAX;
    let mut best = vec![vec![inf; n + 1]; p + 1];
    let mut cut = vec![vec![0usize; n + 1]; p + 1];
    best[0][0] = 0;
    for k in 1..=p {
        best[k][0] = 0;
        for i in 1..=n {
            for j in 0..i {
                if best[k - 1][j] == inf {
                    continue;
                }
                let cand = best[k - 1][j].max(sum(j, i - 1));
                if cand < best[k][i] {
                    best[k][i] = cand;
                    cut[k][i] = j;
                }
            }
        }
    }
    // fewer intervals can never beat more on min-max, so take k = p
    let mut partition = Vec::new();
    let mut i = n;
    let mut k = p;
    while i > 0 {
        let j = cut[k][i];
        partition.push((j, i - 1));
        i = j;
        k -= 1;
    }
    partition.reverse();
    (best[p][n], partition)
}

/// Greedy feasibility probe: can `a` be split into at most `p` intervals
/// of sum `<= limit` each? `O(n)`.
pub fn probe(a: &[u64], p: usize, limit: u64) -> bool {
    if a.iter().any(|&x| x > limit) {
        return false;
    }
    let mut intervals = 1usize;
    let mut current = 0u64;
    for &x in a {
        if current + x > limit {
            intervals += 1;
            current = x;
            if intervals > p {
                return false;
            }
        } else {
            current += x;
        }
    }
    true
}

/// Exact parametric search: binary search over the sorted set of all
/// interval sums (the only achievable bottlenecks), deciding each with
/// [`probe`]. Returns the optimal bottleneck and a greedy partition
/// achieving it.
///
/// # Panics
/// Panics if `a` is empty or `p == 0`.
pub fn binary_search(a: &[u64], p: usize) -> (u64, IntervalPartition) {
    let n = a.len();
    assert!(n > 0 && p > 0);
    let mut prefix = vec![0u64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + a[i];
    }
    let mut candidates: Vec<u64> = (0..n)
        .flat_map(|lo| {
            let prefix = &prefix;
            (lo..n).map(move |hi| prefix[hi + 1] - prefix[lo])
        })
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    // smallest feasible candidate
    let idx = candidates.partition_point(|&limit| !probe(a, p, limit));
    let best = candidates[idx];
    // greedy partition under the optimal limit
    let mut partition = Vec::new();
    let mut lo = 0usize;
    let mut current = 0u64;
    for (i, &x) in a.iter().enumerate() {
        if current + x > best {
            partition.push((lo, i - 1));
            lo = i;
            current = x;
        } else {
            current += x;
        }
    }
    partition.push((lo, n - 1));
    (best, partition)
}

/// Averaging heuristic: close intervals as soon as they reach the ideal
/// average `ceil(total / p)`. Not optimal in general; used as a baseline.
pub fn greedy(a: &[u64], p: usize) -> (u64, IntervalPartition) {
    let n = a.len();
    assert!(n > 0 && p > 0);
    let total: u64 = a.iter().sum();
    let target = total.div_ceil(p as u64);
    let mut partition = Vec::new();
    let mut lo = 0usize;
    let mut current = 0u64;
    for (i, &x) in a.iter().enumerate() {
        current += x;
        let remaining_slots = p - partition.len();
        if current >= target && remaining_slots > 1 && i + 1 < n && n - (i + 1) >= 1 {
            partition.push((lo, i));
            lo = i + 1;
            current = 0;
        }
    }
    partition.push((lo, n - 1));
    (bottleneck(a, &partition), partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repliflow_core::gen::Gen;

    #[test]
    fn dp_known_example() {
        // [14, 4, 2, 4] into 2 intervals: best split is [14] | [4,2,4] = 14.
        let (best, partition) = dp(&[14, 4, 2, 4], 2);
        assert_eq!(best, 14);
        assert_eq!(bottleneck(&[14, 4, 2, 4], &partition), 14);
        // into 3: [14] | [4,2] | [4] -> still 14 (the big element).
        let (best, _) = dp(&[14, 4, 2, 4], 3);
        assert_eq!(best, 14);
    }

    #[test]
    fn partition_structure_is_valid() {
        let a = [3, 1, 4, 1, 5, 9, 2, 6];
        let (_, partition) = dp(&a, 3);
        assert_eq!(partition[0].0, 0);
        assert_eq!(partition.last().unwrap().1, a.len() - 1);
        for w in partition.windows(2) {
            assert_eq!(w[1].0, w[0].1 + 1);
        }
        assert!(partition.len() <= 3);
    }

    #[test]
    fn probe_basics() {
        let a = [5, 5, 5];
        assert!(probe(&a, 3, 5));
        assert!(!probe(&a, 2, 5));
        assert!(probe(&a, 2, 10));
        assert!(!probe(&a, 3, 4)); // an element exceeds the limit
    }

    #[test]
    fn dp_equals_binary_search_on_random_arrays() {
        let mut gen = Gen::new(0xC0);
        for _ in 0..200 {
            let n = gen.size(1, 12);
            let a = gen.positive_ints(n, 1, 50);
            let p = gen.size(1, 6);
            let (d, _) = dp(&a, p);
            let (b, partition) = binary_search(&a, p);
            assert_eq!(d, b, "a={a:?} p={p}");
            assert!(partition.len() <= p.min(n));
            assert_eq!(bottleneck(&a, &partition), b);
        }
    }

    #[test]
    fn greedy_is_feasible_but_not_always_optimal() {
        let mut gen = Gen::new(0xC1);
        let mut suboptimal = 0;
        for _ in 0..100 {
            let n = gen.size(2, 12);
            let a = gen.positive_ints(n, 1, 50);
            let p = gen.size(2, 5);
            let (g, partition) = greedy(&a, p);
            assert!(partition.len() <= p);
            let (opt, _) = dp(&a, p);
            assert!(g >= opt);
            if g > opt {
                suboptimal += 1;
            }
        }
        // the heuristic must lose on at least some instances, otherwise
        // it is not exercising anything
        assert!(suboptimal > 0);
    }

    #[test]
    fn single_interval_and_singletons() {
        let a = [7, 3];
        let (best, partition) = dp(&a, 1);
        assert_eq!(best, 10);
        assert_eq!(partition, vec![(0, 1)]);
        let (best, _) = dp(&a, 2);
        assert_eq!(best, 7);
        let (best, _) = binary_search(&[42], 5);
        assert_eq!(best, 42);
    }
}
