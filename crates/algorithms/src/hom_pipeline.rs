//! Pipeline mappings on **homogeneous platforms** — Theorems 1–4.
//!
//! * [`min_period`] — Theorem 1: the replicate-everything mapping reaches
//!   the absolute lower bound `Σw / (p·s)`, with or without
//!   data-parallelism.
//! * [`min_latency_no_dp`] — Theorem 2 / Corollary 1: without
//!   data-parallelism every mapping has latency `Σw / s`; replicating the
//!   whole pipeline on all processors is simultaneously period-optimal.
//! * [`min_latency_dp`] — Theorem 3: with data-parallel stages, a dynamic
//!   program chooses which stages to data-parallelize and on how many
//!   processors. The paper states the recurrence on `L(i,j,q)` (which
//!   contains a typo in its middle-split case); we use the equivalent
//!   left-to-right form `L(i,q)` — the leftmost group is either a
//!   replicated interval on one processor (replication cannot improve
//!   latency, Lemma 2) or stage `i` data-parallelized on `q'` processors —
//!   which explores exactly the same mapping space in `O(n·p·(n+p))`.
//! * [`min_latency_under_period`] / [`min_period_under_latency`] —
//!   Theorem 4: the bi-criteria dynamic program. Under a period bound a
//!   replicated interval needs `k = ceil(W/(P·s))` processors; a
//!   data-parallel stage needs `q' >= ceil(w/(P·s))`. The second direction
//!   performs the exact search over the finite set of achievable periods.
//!
//! All solvers are validated against `repliflow-exact` in this crate's
//! integration tests.

use crate::solution::Solved;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Pipeline;

fn assert_homogeneous(platform: &Platform) {
    assert!(
        platform.is_homogeneous(),
        "this algorithm requires a homogeneous platform"
    );
}

/// Theorem 1: minimal period `Σw/(p·s)` by replicating the whole pipeline
/// onto every processor. Optimal with or without data-parallelism.
pub fn min_period(pipeline: &Pipeline, platform: &Platform) -> Solved {
    assert_homogeneous(platform);
    let mapping = Mapping::whole(
        pipeline.n_stages(),
        platform.procs().collect(),
        Mode::Replicated,
    );
    let period = pipeline
        .period(platform, &mapping)
        .expect("valid by construction");
    let latency = pipeline
        .latency(platform, &mapping)
        .expect("valid by construction");
    Solved::for_period(mapping, period, latency)
}

/// Theorem 2 / Corollary 1: without data-parallelism every mapping has
/// latency `Σw/s`; the returned replicate-everything mapping additionally
/// minimizes the period (Corollary 1's bi-criteria optimum).
pub fn min_latency_no_dp(pipeline: &Pipeline, platform: &Platform) -> Solved {
    assert_homogeneous(platform);
    let sol = min_period(pipeline, platform);
    Solved::for_latency(sol.mapping, sol.period, sol.latency)
}

/// One dynamic-programming choice during latency optimization.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Stages `i..=j` replicated on one processor.
    Interval(usize),
    /// Stage `i` data-parallelized on `q'` processors.
    DataParallel(usize),
}

/// Theorem 3: minimal latency with data-parallel stages on a homogeneous
/// platform, in `O(n·p·(n+p))`.
pub fn min_latency_dp(pipeline: &Pipeline, platform: &Platform) -> Solved {
    assert_homogeneous(platform);
    let n = pipeline.n_stages();
    let p = platform.n_procs();
    let s = platform.speed(ProcId(0));

    // dp[i][q]: min latency for stages i.. with at most q processors.
    let mut dp = vec![vec![Rat::INFINITY; p + 1]; n + 1];
    let mut choice = vec![vec![None; p + 1]; n + 1];
    for cell in dp[n].iter_mut() {
        *cell = Rat::ZERO;
    }
    for i in (0..n).rev() {
        for q in 1..=p {
            // leftmost group: replicated interval [i..=j] on one processor
            let mut best = Rat::INFINITY;
            let mut best_choice = None;
            for j in i..n {
                let cand = Rat::ratio(pipeline.interval_work(i, j), s) + dp[j + 1][q - 1];
                if cand < best {
                    best = cand;
                    best_choice = Some(Step::Interval(j));
                }
            }
            // leftmost group: stage i data-parallel on q' >= 2 processors
            for qp in 2..=q {
                let cand = Rat::ratio(pipeline.weight(i), qp as u64 * s) + dp[i + 1][q - qp];
                if cand < best {
                    best = cand;
                    best_choice = Some(Step::DataParallel(qp));
                }
            }
            dp[i][q] = best;
            choice[i][q] = best_choice;
        }
    }

    // reconstruct: hand processors out in index order
    let mut assignments = Vec::new();
    let mut i = 0;
    let mut q = p;
    let mut next_proc = 0usize;
    while i < n {
        match choice[i][q].expect("feasible: p >= 1") {
            Step::Interval(j) => {
                assignments.push(Assignment::interval(
                    i,
                    j,
                    vec![ProcId(next_proc)],
                    Mode::Replicated,
                ));
                next_proc += 1;
                q -= 1;
                i = j + 1;
            }
            Step::DataParallel(qp) => {
                assignments.push(Assignment::interval(
                    i,
                    i,
                    (next_proc..next_proc + qp).map(ProcId).collect(),
                    Mode::DataParallel,
                ));
                next_proc += qp;
                q -= qp;
                i += 1;
            }
        }
    }
    let mapping = Mapping::new(assignments);
    let period = pipeline
        .period(platform, &mapping)
        .expect("valid by construction");
    let latency = pipeline
        .latency(platform, &mapping)
        .expect("valid by construction");
    debug_assert_eq!(latency, dp[0][p]);
    Solved::for_latency(mapping, period, latency)
}

/// Section 3.3 extension: Theorem 3's latency optimization under
/// **Amdahl's law** — data-parallelizing stage `i` on `q'` processors
/// costs `f_i + w_i/(q'·s)`, where `f_i` is the stage's inherently
/// sequential overhead ("the startup time induced by system calls"). The
/// paper introduces this refinement but analyzes only `f_i = 0`; the same
/// dynamic program solves the general case, because the overhead is a
/// per-group additive constant.
///
/// With all overheads zero this equals [`min_latency_dp`]. Large
/// overheads make data-parallelism pointless and the solver degenerates
/// to Theorem 2's behaviour (all mappings latency-equivalent).
///
/// # Panics
/// Panics if `overheads.len() != pipeline.n_stages()` or the platform is
/// heterogeneous.
pub fn min_latency_dp_amdahl(
    pipeline: &Pipeline,
    platform: &Platform,
    overheads: &[u64],
) -> Solved {
    assert_homogeneous(platform);
    assert_eq!(
        overheads.len(),
        pipeline.n_stages(),
        "one overhead per stage"
    );
    let n = pipeline.n_stages();
    let p = platform.n_procs();
    let s = platform.speed(ProcId(0));

    let mut dp = vec![vec![Rat::INFINITY; p + 1]; n + 1];
    let mut choice = vec![vec![None; p + 1]; n + 1];
    for cell in dp[n].iter_mut() {
        *cell = Rat::ZERO;
    }
    for i in (0..n).rev() {
        for q in 1..=p {
            let mut best = Rat::INFINITY;
            let mut best_choice = None;
            for j in i..n {
                let cand = Rat::ratio(pipeline.interval_work(i, j), s) + dp[j + 1][q - 1];
                if cand < best {
                    best = cand;
                    best_choice = Some(Step::Interval(j));
                }
            }
            for qp in 2..=q {
                let cand = Rat::int(overheads[i] as i128)
                    + Rat::ratio(pipeline.weight(i), qp as u64 * s)
                    + dp[i + 1][q - qp];
                if cand < best {
                    best = cand;
                    best_choice = Some(Step::DataParallel(qp));
                }
            }
            dp[i][q] = best;
            choice[i][q] = best_choice;
        }
    }

    let mut assignments = Vec::new();
    let mut i = 0;
    let mut q = p;
    let mut next_proc = 0usize;
    while i < n {
        match choice[i][q].expect("feasible: p >= 1") {
            Step::Interval(j) => {
                assignments.push(Assignment::interval(
                    i,
                    j,
                    vec![ProcId(next_proc)],
                    Mode::Replicated,
                ));
                next_proc += 1;
                q -= 1;
                i = j + 1;
            }
            Step::DataParallel(qp) => {
                assignments.push(Assignment::interval(
                    i,
                    i,
                    (next_proc..next_proc + qp).map(ProcId).collect(),
                    Mode::DataParallel,
                ));
                next_proc += qp;
                q -= qp;
                i += 1;
            }
        }
    }
    let mapping = Mapping::new(assignments);
    let period = pipeline
        .period(platform, &mapping)
        .expect("valid by construction");
    // The core cost model has no overheads; report the Amdahl-adjusted
    // latency the DP optimized.
    let latency = dp[0][p];
    Solved::for_latency(mapping, period, latency)
}

/// Minimum number of processors for a replicated group of `work` to meet
/// period `bound` at speed `s`: `ceil(work / (bound·s))` (1 if unbounded).
fn min_replicas(work: u64, s: u64, bound: Rat) -> Option<usize> {
    if bound == Rat::INFINITY {
        return Some(1);
    }
    if bound <= Rat::ZERO {
        return None;
    }
    let k = (Rat::ratio(work, s) / bound).ceil().max(1);
    usize::try_from(k).ok()
}

/// Theorem 4 (one direction): minimal latency among mappings of period at
/// most `period_bound`, with data-parallel stages, on a homogeneous
/// platform. `None` if the bound is infeasible.
pub fn min_latency_under_period(
    pipeline: &Pipeline,
    platform: &Platform,
    period_bound: Rat,
) -> Option<Solved> {
    assert_homogeneous(platform);
    let n = pipeline.n_stages();
    let p = platform.n_procs();
    let s = platform.speed(ProcId(0));

    #[derive(Clone, Copy, Debug)]
    enum BStep {
        /// interval [i..=j] replicated on k processors
        Interval(usize, usize),
        /// stage i data-parallel on q' processors
        DataParallel(usize),
    }

    let mut dp = vec![vec![Rat::INFINITY; p + 1]; n + 1];
    let mut choice = vec![vec![None; p + 1]; n + 1];
    for cell in dp[n].iter_mut() {
        *cell = Rat::ZERO;
    }
    for i in (0..n).rev() {
        for q in 1..=p {
            let mut best = Rat::INFINITY;
            let mut best_choice = None;
            for j in i..n {
                let work = pipeline.interval_work(i, j);
                let Some(k) = min_replicas(work, s, period_bound) else {
                    continue;
                };
                if k > q {
                    continue;
                }
                let cand = Rat::ratio(work, s) + dp[j + 1][q - k];
                if cand < best {
                    best = cand;
                    best_choice = Some(BStep::Interval(j, k));
                }
            }
            // data-parallel stage i on q' processors: period = delay =
            // w/(q'·s), decreasing in q' — iterate all legal q'.
            let w = pipeline.weight(i);
            for qp in 2..=q {
                let t = Rat::ratio(w, qp as u64 * s);
                if t > period_bound {
                    continue;
                }
                let cand = t + dp[i + 1][q - qp];
                if cand < best {
                    best = cand;
                    best_choice = Some(BStep::DataParallel(qp));
                }
            }
            dp[i][q] = best;
            choice[i][q] = best_choice;
        }
    }
    if dp[0][p] == Rat::INFINITY {
        return None;
    }

    let mut assignments = Vec::new();
    let mut i = 0;
    let mut q = p;
    let mut next_proc = 0usize;
    while i < n {
        match choice[i][q].expect("dp value finite") {
            BStep::Interval(j, k) => {
                assignments.push(Assignment::interval(
                    i,
                    j,
                    (next_proc..next_proc + k).map(ProcId).collect(),
                    Mode::Replicated,
                ));
                next_proc += k;
                q -= k;
                i = j + 1;
            }
            BStep::DataParallel(qp) => {
                assignments.push(Assignment::interval(
                    i,
                    i,
                    (next_proc..next_proc + qp).map(ProcId).collect(),
                    Mode::DataParallel,
                ));
                next_proc += qp;
                q -= qp;
                i += 1;
            }
        }
    }
    let mapping = Mapping::new(assignments);
    let period = pipeline
        .period(platform, &mapping)
        .expect("valid by construction");
    let latency = pipeline
        .latency(platform, &mapping)
        .expect("valid by construction");
    debug_assert!(period <= period_bound);
    debug_assert_eq!(latency, dp[0][p]);
    Some(Solved::for_latency(mapping, period, latency))
}

/// All achievable group periods: `W_interval/(k·s)` for replicated groups
/// and `w_i/(q'·s)` for data-parallel stages — the candidate set the
/// bi-criteria searches sweep.
fn period_candidates(pipeline: &Pipeline, platform: &Platform) -> Vec<Rat> {
    let n = pipeline.n_stages();
    let p = platform.n_procs();
    let s = platform.speed(ProcId(0));
    let mut candidates = Vec::new();
    for i in 0..n {
        for j in i..n {
            let work = pipeline.interval_work(i, j);
            for k in 1..=p {
                candidates.push(Rat::ratio(work, k as u64 * s));
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Theorem 4 (other direction): minimal period among mappings of latency
/// at most `latency_bound`, found by exact search over the candidate
/// period set. `None` if the bound is infeasible.
pub fn min_period_under_latency(
    pipeline: &Pipeline,
    platform: &Platform,
    latency_bound: Rat,
) -> Option<Solved> {
    assert_homogeneous(platform);
    let candidates = period_candidates(pipeline, platform);
    // feasibility is monotone in the period bound: binary search the
    // smallest candidate whose latency optimum fits the latency bound
    let feasible = |k: Rat| {
        min_latency_under_period(pipeline, platform, k)
            .is_some_and(|sol| sol.latency <= latency_bound)
    };
    let idx = candidates.partition_point(|&k| !feasible(k));
    if idx == candidates.len() {
        return None;
    }
    let sol = min_latency_under_period(pipeline, platform, candidates[idx])
        .expect("feasible by binary search");
    Some(Solved::for_period(sol.mapping, sol.period, sol.latency))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section2() -> (Pipeline, Platform) {
        (
            Pipeline::new(vec![14, 4, 2, 4]),
            Platform::homogeneous(3, 1),
        )
    }

    #[test]
    fn theorem1_period_is_total_over_capacity() {
        let (pipe, plat) = section2();
        let sol = min_period(&pipe, &plat);
        assert_eq!(sol.period, Rat::int(8));
        assert_eq!(sol.latency, Rat::int(24));
        assert_eq!(sol.objective, sol.period);
    }

    #[test]
    fn theorem2_latency_without_dp() {
        let (pipe, plat) = section2();
        let sol = min_latency_no_dp(&pipe, &plat);
        assert_eq!(sol.latency, Rat::int(24));
        // Corollary 1: also period-optimal
        assert_eq!(sol.period, Rat::int(8));
    }

    #[test]
    fn theorem3_latency_with_dp_section2() {
        // The paper's example: dp S1 on two processors, rest on the third
        // -> latency 17.
        let (pipe, plat) = section2();
        let sol = min_latency_dp(&pipe, &plat);
        assert_eq!(sol.latency, Rat::int(17));
        assert!(sol.mapping.uses_data_parallelism());
    }

    #[test]
    fn theorem3_single_processor_degenerates() {
        let pipe = Pipeline::new(vec![3, 5]);
        let plat = Platform::homogeneous(1, 2);
        let sol = min_latency_dp(&pipe, &plat);
        assert_eq!(sol.latency, Rat::int(4));
    }

    #[test]
    fn theorem4_latency_under_period() {
        let (pipe, plat) = section2();
        // unconstrained: 17
        let sol = min_latency_under_period(&pipe, &plat, Rat::INFINITY).unwrap();
        assert_eq!(sol.latency, Rat::int(17));
        // period <= 8 forces spending processors on throughput
        let sol = min_latency_under_period(&pipe, &plat, Rat::int(8)).unwrap();
        assert!(sol.period <= Rat::int(8));
        assert_eq!(sol.latency, Rat::int(24)); // replicate-all is forced
                                               // impossible period
        assert!(min_latency_under_period(&pipe, &plat, Rat::int(1)).is_none());
    }

    #[test]
    fn theorem4_period_under_latency() {
        let (pipe, plat) = section2();
        let sol = min_period_under_latency(&pipe, &plat, Rat::int(24)).unwrap();
        assert_eq!(sol.period, Rat::int(8));
        let sol = min_period_under_latency(&pipe, &plat, Rat::int(17)).unwrap();
        assert!(sol.latency <= Rat::int(17));
        assert_eq!(sol.period, Rat::int(10)); // dp S1 {P1,P2}, rest on P3
        assert!(min_period_under_latency(&pipe, &plat, Rat::int(1)).is_none());
    }

    #[test]
    fn amdahl_zero_overhead_equals_plain_dp() {
        let (pipe, plat) = section2();
        let plain = min_latency_dp(&pipe, &plat);
        let amdahl = min_latency_dp_amdahl(&pipe, &plat, &[0, 0, 0, 0]);
        assert_eq!(plain.latency, amdahl.latency);
        assert_eq!(plain.mapping, amdahl.mapping);
    }

    #[test]
    fn amdahl_large_overhead_disables_data_parallelism() {
        // With a prohibitive startup cost on every stage, the optimum is
        // a pure-replication mapping of latency 24 (Theorem 2 behaviour).
        let (pipe, plat) = section2();
        let sol = min_latency_dp_amdahl(&pipe, &plat, &[100, 100, 100, 100]);
        assert_eq!(sol.latency, Rat::int(24));
        assert!(!sol.mapping.uses_data_parallelism());
    }

    #[test]
    fn amdahl_moderate_overhead_shifts_the_tradeoff() {
        // Data-parallelizing S1 on 2 procs saves 7 time units; with f1 = 3
        // it still pays off (latency 17 + 3 = 20 < 24). With f1 = 8 the
        // S1 split no longer pays, but data-parallelizing the overhead-free
        // S4 still shaves 2: [S1..S3] on P1, S4 dp on {P2,P3} = 22.
        let (pipe, plat) = section2();
        let sol = min_latency_dp_amdahl(&pipe, &plat, &[3, 0, 0, 0]);
        assert_eq!(sol.latency, Rat::int(20));
        assert!(sol.mapping.uses_data_parallelism());
        let sol = min_latency_dp_amdahl(&pipe, &plat, &[8, 0, 0, 0]);
        assert_eq!(sol.latency, Rat::int(22));
        // with the same overhead on every stage, no split pays at all
        let sol = min_latency_dp_amdahl(&pipe, &plat, &[8, 8, 8, 8]);
        assert_eq!(sol.latency, Rat::int(24));
        assert!(!sol.mapping.uses_data_parallelism());
    }

    #[test]
    fn amdahl_latency_is_monotone_in_overhead() {
        let (pipe, plat) = section2();
        let mut previous = Rat::ZERO;
        for f in 0..10 {
            let sol = min_latency_dp_amdahl(&pipe, &plat, &[f, f, f, f]);
            assert!(sol.latency >= previous);
            previous = sol.latency;
        }
    }

    #[test]
    fn min_replicas_math() {
        assert_eq!(min_replicas(10, 1, Rat::int(5)), Some(2));
        assert_eq!(min_replicas(10, 1, Rat::int(3)), Some(4));
        assert_eq!(min_replicas(10, 2, Rat::int(5)), Some(1));
        assert_eq!(min_replicas(10, 1, Rat::INFINITY), Some(1));
        assert_eq!(min_replicas(10, 1, Rat::ZERO), None);
    }
}
