//! # repliflow-algorithms
//!
//! Every polynomial algorithm of Benoit & Robert (Cluster 2007), one
//! module per platform/graph family:
//!
//! | Module | Paper results |
//! |---|---|
//! | [`chains`] | chains-to-chains substrate (Section 1) |
//! | [`hom_pipeline`] | Theorems 1–4 (pipelines, homogeneous platforms) |
//! | [`het_pipeline`] | Theorems 6–8 (pipelines, heterogeneous platforms) |
//! | [`hom_fork`] | Theorems 10–11 (forks, homogeneous platforms) |
//! | [`het_fork`] | Theorem 14 (homogeneous forks, heterogeneous platforms) |
//! | [`forkjoin`] | Section 6.3 fork-join extensions |
//!
//! Each solver returns a [`Solved`] carrying the constructed
//! [`Mapping`](repliflow_core::mapping::Mapping) plus its evaluated period
//! and latency, so every reported optimum is backed by a concrete witness
//! the caller can re-check through `repliflow-core`'s cost model. The
//! workspace integration tests verify each solver against the exhaustive
//! `repliflow-exact` oracle on randomized instances.
//!
//! The NP-hard cells of Table 1 (Theorems 5, 9, 12, 13, 15) have no
//! algorithms here by design — see `repliflow-reductions` for the hardness
//! machinery and `repliflow-heuristics` for practical approximations.

#![warn(missing_docs)]

pub mod chains;
pub mod forkjoin;
pub mod het_fork;
pub mod het_pipeline;
pub mod hom_fork;
pub mod hom_pipeline;
mod solution;

pub use solution::Solved;
