//! Fork mappings on **homogeneous platforms** — Theorems 10 and 11.
//!
//! * [`min_period`] — Theorem 10: replicating the whole fork on all
//!   processors reaches the lower bound `(w0 + Σw)/(p·s)`, for *any* fork
//!   (homogeneous or not), with or without data-parallelism.
//! * [`min_latency`] / [`min_latency_under_period`] /
//!   [`min_period_under_latency`] — Theorem 11, for a *homogeneous fork*
//!   (`n` identical leaves of weight `w`, root `w0`):
//!   - **with data-parallelism**, the optimal shape enumerates `n0` (leaves
//!     grouped with the root) and `q0` (processors of the root group); the
//!     remaining leaves form a single data-parallel group on all remaining
//!     processors (a single group dominates any split by the mediant
//!     inequality, and data-parallelism dominates replication on
//!     homogeneous platforms for both criteria);
//!   - **without data-parallelism**, the remaining leaves are partitioned
//!     into replicated groups; a memoized Pareto dynamic program over
//!     (leaf count, processor count) explores every such partition, as in
//!     the paper's `(P,L)(i,q)` recurrence.
//!
//! Latency minimization for a *heterogeneous* fork is NP-hard even on
//! homogeneous platforms (Theorem 12) — see `repliflow-reductions`.

use crate::solution::Solved;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Fork;
use std::collections::HashMap;

fn assert_homogeneous_platform(platform: &Platform) {
    assert!(
        platform.is_homogeneous(),
        "this algorithm requires a homogeneous platform"
    );
}

fn uniform_leaf_weight(fork: &Fork) -> u64 {
    assert!(
        fork.is_homogeneous(),
        "this algorithm requires a homogeneous fork (identical leaf weights)"
    );
    if fork.n_leaves() == 0 {
        0
    } else {
        fork.weight(1)
    }
}

/// Theorem 10: minimal period `(w0 + Σw)/(p·s)` by replicating the whole
/// fork onto every processor (any fork, both models).
pub fn min_period(fork: &Fork, platform: &Platform) -> Solved {
    assert_homogeneous_platform(platform);
    let mapping = Mapping::whole(
        fork.n_stages(),
        platform.procs().collect(),
        Mode::Replicated,
    );
    let period = fork
        .period(platform, &mapping)
        .expect("valid by construction");
    let latency = fork
        .latency(platform, &mapping)
        .expect("valid by construction");
    Solved::for_period(mapping, period, latency)
}

/// A partition of `i` identical leaves into replicated groups `(count,
/// procs)`, Pareto-tracked by (max group period, max group delay).
pub(crate) type LeafSplit = Vec<(usize, usize)>;
pub(crate) type LeafFrontier = Vec<(Rat, Rat, LeafSplit)>;

/// Memoized Pareto DP over (leaf count, processor budget) for covering
/// identical leaves with replicated groups — the paper's `(P,L)(i,q)`.
pub(crate) struct UniformLeafDp {
    w: u64,
    s: u64,
    memo: HashMap<(usize, usize), LeafFrontier>,
}

impl UniformLeafDp {
    pub(crate) fn new(w: u64, s: u64) -> Self {
        UniformLeafDp {
            w,
            s,
            memo: HashMap::new(),
        }
    }

    pub(crate) fn frontier(&mut self, leaves: usize, procs: usize) -> LeafFrontier {
        if leaves == 0 {
            return vec![(Rat::ZERO, Rat::ZERO, Vec::new())];
        }
        if procs == 0 {
            return Vec::new();
        }
        if let Some(cached) = self.memo.get(&(leaves, procs)) {
            return cached.clone();
        }
        let mut result: LeafFrontier = Vec::new();
        // first group: c leaves on k processors (canonical: c is the
        // largest group, avoiding permuted duplicates)
        for c in 1..=leaves {
            for k in 1..=procs {
                let gp = Rat::ratio(c as u64 * self.w, k as u64 * self.s);
                let gd = Rat::ratio(c as u64 * self.w, self.s);
                for (sp, sd, split) in self.frontier(leaves - c, procs - k) {
                    let cand = (gp.max(sp), gd.max(sd));
                    if !result
                        .iter()
                        .any(|&(fp, fd, _)| fp <= cand.0 && fd <= cand.1)
                    {
                        result.retain(|&(fp, fd, _)| !(cand.0 <= fp && cand.1 <= fd));
                        let mut split = split;
                        split.push((c, k));
                        result.push((cand.0, cand.1, split));
                    }
                }
            }
        }
        self.memo.insert((leaves, procs), result.clone());
        result
    }
}

/// A candidate mapping shape explored by the Theorem 11 enumeration.
struct Shape {
    mapping: Mapping,
    period: Rat,
    latency: Rat,
}

/// Enumerates every optimal-candidate shape of Theorem 11 and evaluates
/// (period, latency) through the core cost model.
fn shapes(fork: &Fork, platform: &Platform, allow_dp: bool) -> Vec<Shape> {
    assert_homogeneous_platform(platform);
    let w = uniform_leaf_weight(fork);
    let n = fork.n_leaves();
    let p = platform.n_procs();
    let s = platform.speed(ProcId(0));
    let mut out = Vec::new();
    let mut leaf_dp = UniformLeafDp::new(w.max(1), s);

    let mut push = |mapping: Mapping| {
        let period = fork
            .period(platform, &mapping)
            .expect("constructed shape valid");
        let latency = fork
            .latency(platform, &mapping)
            .expect("constructed shape valid");
        out.push(Shape {
            mapping,
            period,
            latency,
        });
    };

    for n0 in 0..=n {
        let rest = n - n0;
        for q0 in 1..=p {
            let procs_rest = p - q0;
            if rest > 0 && procs_rest == 0 {
                continue;
            }
            // root group: stages {0} ∪ first n0 leaves on processors 0..q0
            let mut root_stages = vec![0usize];
            root_stages.extend(1..=n0);
            let root_procs: Vec<ProcId> = (0..q0).map(ProcId).collect();
            let rest_procs: Vec<ProcId> = (q0..p).map(ProcId).collect();
            let rest_stages: Vec<usize> = (n0 + 1..=n).collect();

            let mut root_modes = vec![Mode::Replicated];
            if allow_dp && n0 == 0 && q0 >= 2 {
                root_modes.push(Mode::DataParallel);
            }
            for root_mode in root_modes {
                let root = Assignment::new(root_stages.clone(), root_procs.clone(), root_mode);
                if rest == 0 {
                    push(Mapping::new(vec![root.clone()]));
                    continue;
                }
                if allow_dp {
                    // single data-parallel group on all remaining processors
                    let group = Assignment::new(
                        rest_stages.clone(),
                        rest_procs.clone(),
                        if procs_rest >= 2 {
                            Mode::DataParallel
                        } else {
                            Mode::Replicated
                        },
                    );
                    push(Mapping::new(vec![root.clone(), group]));
                } else {
                    // every Pareto-optimal partition into replicated groups
                    for (_, _, split) in leaf_dp.frontier(rest, procs_rest) {
                        let mut assignments = vec![root.clone()];
                        let mut next_leaf = n0 + 1;
                        let mut next_proc = q0;
                        for (c, k) in split {
                            assignments.push(Assignment::new(
                                (next_leaf..next_leaf + c).collect(),
                                (next_proc..next_proc + k).map(ProcId).collect(),
                                Mode::Replicated,
                            ));
                            next_leaf += c;
                            next_proc += k;
                        }
                        push(Mapping::new(assignments));
                    }
                }
            }
        }
    }
    out
}

/// Theorem 11: minimal latency for a homogeneous fork on a homogeneous
/// platform (`allow_dp` selects the model).
pub fn min_latency(fork: &Fork, platform: &Platform, allow_dp: bool) -> Solved {
    shapes(fork, platform, allow_dp)
        .into_iter()
        .map(|s| Solved::for_latency(s.mapping, s.period, s.latency))
        .min_by_key(|s| (s.latency, s.period))
        .expect("at least one shape exists")
}

/// Theorem 11 bi-criteria: minimal latency under a period bound.
pub fn min_latency_under_period(
    fork: &Fork,
    platform: &Platform,
    allow_dp: bool,
    period_bound: Rat,
) -> Option<Solved> {
    shapes(fork, platform, allow_dp)
        .into_iter()
        .filter(|s| s.period <= period_bound)
        .map(|s| Solved::for_latency(s.mapping, s.period, s.latency))
        .min_by_key(|s| (s.latency, s.period))
}

/// Theorem 11 bi-criteria: minimal period under a latency bound.
pub fn min_period_under_latency(
    fork: &Fork,
    platform: &Platform,
    allow_dp: bool,
    latency_bound: Rat,
) -> Option<Solved> {
    shapes(fork, platform, allow_dp)
        .into_iter()
        .filter(|s| s.latency <= latency_bound)
        .map(|s| Solved::for_period(s.mapping, s.period, s.latency))
        .min_by_key(|s| (s.period, s.latency))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem10_replicate_all() {
        let fork = Fork::new(3, vec![1, 2, 3]); // heterogeneous is fine
        let plat = Platform::homogeneous(3, 1);
        let sol = min_period(&fork, &plat);
        assert_eq!(sol.period, Rat::int(3)); // 9 / (3·1)
    }

    #[test]
    fn theorem11_latency_with_dp() {
        // root 4, two leaves of 6, p=3, s=1. Data-parallelize the root on
        // one processor? No — dp of root alone on q0=1 is plain execution.
        // Best: root on P1 (done at 4), leaves dp on {P2,P3}: 4 + 12/2 = 10.
        // Alternative: root+leaf on P1 (10), leaf on P2: max(10, 4+6)=10.
        let fork = Fork::uniform(4, 2, 6);
        let plat = Platform::homogeneous(3, 1);
        let sol = min_latency(&fork, &plat, true);
        assert_eq!(sol.latency, Rat::int(10));
    }

    #[test]
    fn theorem11_latency_without_dp_prefers_splitting() {
        // root 1, four leaves of 4, p=5, s=1: root alone, each leaf its own
        // processor: latency 1 + 4 = 5.
        let fork = Fork::uniform(1, 4, 4);
        let plat = Platform::homogeneous(5, 1);
        let sol = min_latency(&fork, &plat, false);
        assert_eq!(sol.latency, Rat::int(5));
        // with only 3 processors: root+leaf on P1 (1+8=9 as one group of 2?)
        // options: groups {root,l1,l2} | {l3} | {l4}: max(9, 1+4) = 9;
        // {root} | {l1,l2} | {l3,l4}: max(1, 1+8) = 9; {root,l1} | ...
        let plat3 = Platform::homogeneous(3, 1);
        let sol = min_latency(&fork, &plat3, false);
        assert_eq!(sol.latency, Rat::int(9));
    }

    #[test]
    fn theorem11_bicriteria() {
        let fork = Fork::uniform(2, 4, 3);
        let plat = Platform::homogeneous(4, 1);
        // total work 14; min period = 14/4 (Theorem 10)
        let unconstrained = min_latency(&fork, &plat, false);
        let tight = min_latency_under_period(&fork, &plat, false, Rat::new(14, 4)).unwrap();
        assert!(tight.period <= Rat::new(14, 4));
        assert!(tight.latency >= unconstrained.latency);
        // latency bound at the unconstrained optimum
        let sol = min_period_under_latency(&fork, &plat, false, unconstrained.latency).unwrap();
        assert!(sol.latency <= unconstrained.latency);
        // infeasible bounds
        assert!(min_latency_under_period(&fork, &plat, false, Rat::new(1, 100)).is_none());
        assert!(min_period_under_latency(&fork, &plat, false, Rat::new(1, 100)).is_none());
    }

    #[test]
    fn leafless_fork_works() {
        let fork = Fork::new(5, vec![]);
        let plat = Platform::homogeneous(2, 1);
        let sol = min_latency(&fork, &plat, true);
        assert_eq!(sol.latency, Rat::new(5, 2)); // dp root on both procs
        let sol = min_latency(&fork, &plat, false);
        assert_eq!(sol.latency, Rat::int(5));
    }
}
