//! The result type returned by every algorithm in this crate.

use repliflow_core::mapping::Mapping;
use repliflow_core::rational::Rat;

/// A mapping produced by one of the paper's algorithms, together with its
/// evaluated period and latency and the value of the optimized objective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solved {
    /// The constructed mapping.
    pub mapping: Mapping,
    /// Period of the mapping.
    pub period: Rat,
    /// Latency of the mapping.
    pub latency: Rat,
    /// The value of whichever objective the algorithm optimized
    /// (equals `period` or `latency` accordingly).
    pub objective: Rat,
}

impl Solved {
    /// Solved instance optimizing the period.
    pub fn for_period(mapping: Mapping, period: Rat, latency: Rat) -> Self {
        Solved {
            mapping,
            period,
            latency,
            objective: period,
        }
    }

    /// Solved instance optimizing the latency.
    pub fn for_latency(mapping: Mapping, period: Rat, latency: Rat) -> Self {
        Solved {
            mapping,
            period,
            latency,
            objective: latency,
        }
    }
}
