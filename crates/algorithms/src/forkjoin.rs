//! Fork-join mappings — the Section 6.3 extensions.
//!
//! The paper shows that every polynomial fork entry of Table 1 extends to
//! fork-join graphs with the same complexity, by adding loops over the
//! placement of the final stage `Sn+1`:
//!
//! * [`min_period`] — homogeneous platforms: replicating the whole graph on
//!   all processors still reaches `(w0 + Σw + wn+1)/(p·s)` (any fork-join,
//!   both models).
//! * [`min_latency_hom`] and the bi-criteria variants — homogeneous
//!   platform, homogeneous fork-join: the Theorem 11 shape enumeration
//!   extended with the join group (either merged with the root group or
//!   separate with its own `n1` leaves and `q1` processors).
//! * [`min_period_uniform_het`] / [`min_latency_uniform_het`] and the
//!   bi-criteria variants — heterogeneous platform, homogeneous fork-join,
//!   no data-parallelism: the Theorem 14 probe with *two* marked processor
//!   runs (root at `g0`, join at `g1`, possibly merged), `O(p⁴)` per probe.
//!
//! NP-hard fork cells stay NP-hard for fork-join (a fork is a fork-join
//! with `wn+1 = 0`).

use crate::hom_fork::UniformLeafDp;
use crate::solution::Solved;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::ForkJoin;

fn uniform_leaf_weight(fj: &ForkJoin) -> u64 {
    assert!(
        fj.is_homogeneous(),
        "this algorithm requires a homogeneous fork-join (identical leaf weights)"
    );
    if fj.n_leaves() == 0 {
        0
    } else {
        fj.weight(1)
    }
}

/// Section 6.3 + Theorem 10: minimal period on a homogeneous platform by
/// replicating the whole fork-join onto every processor (any fork-join).
pub fn min_period(fj: &ForkJoin, platform: &Platform) -> Solved {
    assert!(platform.is_homogeneous(), "requires a homogeneous platform");
    let mapping = Mapping::whole(fj.n_stages(), platform.procs().collect(), Mode::Replicated);
    let period = fj
        .period(platform, &mapping)
        .expect("valid by construction");
    let latency = fj
        .latency(platform, &mapping)
        .expect("valid by construction");
    Solved::for_period(mapping, period, latency)
}

struct Shape {
    mapping: Mapping,
    period: Rat,
    latency: Rat,
}

/// Enumerates the candidate-optimal shapes of the Theorem 11 extension on
/// homogeneous platforms: root group `(n0, q0)`, join either merged into
/// the root group or separate `(n1, q1)`, remaining leaves as one
/// data-parallel group (with dp) or any Pareto partition into replicated
/// groups (without dp).
fn shapes_hom(fj: &ForkJoin, platform: &Platform, allow_dp: bool) -> Vec<Shape> {
    assert!(platform.is_homogeneous(), "requires a homogeneous platform");
    let w = uniform_leaf_weight(fj);
    let n = fj.n_leaves();
    let p = platform.n_procs();
    let s = platform.speed(ProcId(0));
    let join_id = fj.join_stage();
    let mut out = Vec::new();
    let mut leaf_dp = UniformLeafDp::new(w.max(1), s);

    let mut push = |assignments: Vec<Assignment>| {
        let mapping = Mapping::new(assignments);
        let period = fj
            .period(platform, &mapping)
            .expect("constructed shape valid");
        let latency = fj
            .latency(platform, &mapping)
            .expect("constructed shape valid");
        out.push(Shape {
            mapping,
            period,
            latency,
        });
    };

    // Fills the "remaining leaves" cover, then pushes complete mappings.
    let mut with_rest = |base: Vec<Assignment>,
                         first_leaf: usize,
                         rest: usize,
                         first_proc: usize,
                         push: &mut dyn FnMut(Vec<Assignment>)| {
        let procs_rest = p - first_proc;
        if rest == 0 {
            push(base);
            return;
        }
        if procs_rest == 0 {
            return;
        }
        if allow_dp {
            let mut assignments = base;
            assignments.push(Assignment::new(
                (first_leaf..first_leaf + rest).collect(),
                (first_proc..p).map(ProcId).collect(),
                if procs_rest >= 2 {
                    Mode::DataParallel
                } else {
                    Mode::Replicated
                },
            ));
            push(assignments);
        } else {
            for (_, _, split) in leaf_dp.frontier(rest, procs_rest) {
                let mut assignments = base.clone();
                let mut next_leaf = first_leaf;
                let mut next_proc = first_proc;
                for (c, k) in split {
                    assignments.push(Assignment::new(
                        (next_leaf..next_leaf + c).collect(),
                        (next_proc..next_proc + k).map(ProcId).collect(),
                        Mode::Replicated,
                    ));
                    next_leaf += c;
                    next_proc += k;
                }
                push(assignments);
            }
        }
    };

    for n0 in 0..=n {
        for q0 in 1..=p {
            // ---- Case A: root and join share one replicated group ----
            {
                let mut stages = vec![0usize, join_id];
                stages.extend(1..=n0);
                let group =
                    Assignment::new(stages, (0..q0).map(ProcId).collect(), Mode::Replicated);
                with_rest(vec![group], n0 + 1, n - n0, q0, &mut push);
            }
            // ---- Case B: separate join group (n1 leaves, q1 procs) ----
            let mut root_modes = vec![Mode::Replicated];
            if allow_dp && n0 == 0 && q0 >= 2 {
                root_modes.push(Mode::DataParallel);
            }
            for root_mode in root_modes {
                let mut root_stages = vec![0usize];
                root_stages.extend(1..=n0);
                let root = Assignment::new(root_stages, (0..q0).map(ProcId).collect(), root_mode);
                for n1 in 0..=(n - n0) {
                    for q1 in 1..=(p - q0) {
                        let mut join_modes = vec![Mode::Replicated];
                        if allow_dp && n1 == 0 && q1 >= 2 {
                            join_modes.push(Mode::DataParallel);
                        }
                        for join_mode in join_modes {
                            let mut join_stages = vec![join_id];
                            join_stages.extend(n0 + 1..=n0 + n1);
                            let join = Assignment::new(
                                join_stages,
                                (q0..q0 + q1).map(ProcId).collect(),
                                join_mode,
                            );
                            with_rest(
                                vec![root.clone(), join],
                                n0 + n1 + 1,
                                n - n0 - n1,
                                q0 + q1,
                                &mut push,
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// Section 6.3 extension of Theorem 11: minimal latency of a homogeneous
/// fork-join on a homogeneous platform.
pub fn min_latency_hom(fj: &ForkJoin, platform: &Platform, allow_dp: bool) -> Solved {
    shapes_hom(fj, platform, allow_dp)
        .into_iter()
        .map(|s| Solved::for_latency(s.mapping, s.period, s.latency))
        .min_by_key(|s| (s.latency, s.period))
        .expect("at least one shape exists")
}

/// Section 6.3 / Theorem 11 bi-criteria: minimal latency under a period
/// bound (homogeneous platform).
pub fn min_latency_under_period_hom(
    fj: &ForkJoin,
    platform: &Platform,
    allow_dp: bool,
    period_bound: Rat,
) -> Option<Solved> {
    shapes_hom(fj, platform, allow_dp)
        .into_iter()
        .filter(|s| s.period <= period_bound)
        .map(|s| Solved::for_latency(s.mapping, s.period, s.latency))
        .min_by_key(|s| (s.latency, s.period))
}

/// Section 6.3 / Theorem 11 bi-criteria: minimal period under a latency
/// bound (homogeneous platform).
pub fn min_period_under_latency_hom(
    fj: &ForkJoin,
    platform: &Platform,
    allow_dp: bool,
    latency_bound: Rat,
) -> Option<Solved> {
    shapes_hom(fj, platform, allow_dp)
        .into_iter()
        .filter(|s| s.latency <= latency_bound)
        .map(|s| Solved::for_period(s.mapping, s.period, s.latency))
        .min_by_key(|s| (s.period, s.latency))
}

/// Max `m >= 0` with `base + m·w <= bound·x`; `None` if `m = 0` fails.
fn max_count(bound: Rat, x: u64, base: u64, w: u64, n: usize) -> Option<usize> {
    if bound == Rat::INFINITY {
        return Some(n);
    }
    let slack = bound * Rat::int(x as i128) - Rat::int(base as i128);
    if slack < Rat::ZERO {
        return None;
    }
    if w == 0 {
        return Some(n);
    }
    Some(((slack / Rat::int(w as i128)).floor().max(0) as usize).min(n))
}

/// Where the root and join stages live among the speed-sorted runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MarkPlan {
    /// Root and join share the run starting at this position.
    Together(usize),
    /// Root run starts at `.0`, join run at `.1`.
    Separate(usize, usize),
}

/// Theorem 14 extension: feasibility probe for a homogeneous fork-join on
/// a heterogeneous platform (no data-parallelism) under period `k_bound`
/// and latency `l_bound`.
fn feasible_uniform_het(
    fj: &ForkJoin,
    platform: &Platform,
    k_bound: Rat,
    l_bound: Rat,
) -> Option<Mapping> {
    let n = fj.n_leaves();
    let w = uniform_leaf_weight(fj);
    let w0 = fj.root_weight();
    let wj = fj.join_weight();
    let join_id = fj.join_stage();
    let order = platform.by_speed_asc();
    let p = order.len();
    let speed = |i: usize| platform.speed(order[i]);

    let mut plans: Vec<MarkPlan> = (0..p).map(MarkPlan::Together).collect();
    for g0 in 0..p {
        for g1 in 0..p {
            if g0 != g1 {
                plans.push(MarkPlan::Separate(g0, g1));
            }
        }
    }

    for plan in plans {
        let (g0, g_join) = match plan {
            MarkPlan::Together(g) => (g, g),
            MarkPlan::Separate(g0, g1) => (g0, g1),
        };
        // latency budget for "all leaves done" after subtracting the join
        let l_all = if l_bound == Rat::INFINITY {
            Rat::INFINITY
        } else {
            l_bound - Rat::ratio(wj, speed(g_join))
        };
        if l_all < Rat::ZERO {
            continue;
        }
        let l_rest = if l_all == Rat::INFINITY {
            Rat::INFINITY
        } else {
            l_all - Rat::ratio(w0, speed(g0))
        };
        if l_rest < Rat::ZERO {
            continue;
        }

        let cap = |i: usize, j: usize| -> Option<usize> {
            let len = (j - i + 1) as u64;
            let s = speed(i);
            match plan {
                MarkPlan::Together(g) if i == g => {
                    let by_k = max_count(k_bound, len * s, w0 + wj, w, n)?;
                    let by_l = max_count(l_all, s, w0, w, n)?;
                    Some(by_k.min(by_l))
                }
                MarkPlan::Separate(g0, _) if i == g0 => {
                    let by_k = max_count(k_bound, len * s, w0, w, n)?;
                    let by_l = max_count(l_all, s, w0, w, n)?;
                    Some(by_k.min(by_l))
                }
                MarkPlan::Separate(_, g1) if i == g1 => {
                    let by_k = max_count(k_bound, len * s, wj, w, n)?;
                    let by_l = max_count(l_rest, s, 0, w, n)?;
                    Some(by_k.min(by_l))
                }
                _ => {
                    let by_k = max_count(k_bound, len * s, 0, w, n)?;
                    let by_l = max_count(l_rest, s, 0, w, n)?;
                    Some(by_k.min(by_l))
                }
            }
        };

        // positions that must start a run
        let is_marked = |pos: usize| match plan {
            MarkPlan::Together(g) => pos == g,
            MarkPlan::Separate(g0, g1) => pos == g0 || pos == g1,
        };

        let mut best = vec![i64::MIN; p + 1];
        let mut choice = vec![0usize; p + 1];
        best[p] = 0;
        for i in (0..p).rev() {
            for j in i..p {
                if (i + 1..=j).any(is_marked) {
                    break; // a marked position must start its own run
                }
                if best[j + 1] == i64::MIN {
                    continue;
                }
                if let Some(c) = cap(i, j) {
                    let total = best[j + 1] + c as i64;
                    if total > best[i] {
                        best[i] = total;
                        choice[i] = j;
                    }
                }
            }
        }
        if best[0] < n as i64 {
            continue;
        }

        // reconstruct
        let mut assignments = Vec::new();
        let mut next_leaf = 1usize;
        let mut remaining = n;
        let mut i = 0;
        while i < p {
            let j = choice[i];
            let c = cap(i, j).expect("on optimal path").min(remaining);
            let procs: Vec<ProcId> = order[i..=j].to_vec();
            let mut stages: Vec<usize> = (next_leaf..next_leaf + c).collect();
            next_leaf += c;
            remaining -= c;
            match plan {
                MarkPlan::Together(g) if i == g => {
                    stages.push(0);
                    stages.push(join_id);
                }
                MarkPlan::Separate(g0, _) if i == g0 => stages.push(0),
                MarkPlan::Separate(_, g1) if i == g1 => stages.push(join_id),
                _ => {}
            }
            if !stages.is_empty() {
                assignments.push(Assignment::new(stages, procs, Mode::Replicated));
            }
            i = j + 1;
        }
        debug_assert_eq!(remaining, 0);
        return Some(Mapping::new(assignments));
    }
    None
}

fn k_candidates(fj: &ForkJoin, platform: &Platform) -> Vec<Rat> {
    let n = fj.n_leaves() as u64;
    let w = uniform_leaf_weight(fj);
    let bases = [
        0,
        fj.root_weight(),
        fj.join_weight(),
        fj.root_weight() + fj.join_weight(),
    ];
    let mut out = Vec::new();
    for &s in platform.speeds() {
        for k in 1..=platform.n_procs() as u64 {
            for m in 0..=n {
                for &b in &bases {
                    if b + m * w > 0 {
                        out.push(Rat::ratio(b + m * w, k * s));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn l_candidates(fj: &ForkJoin, platform: &Platform) -> Vec<Rat> {
    let n = fj.n_leaves() as u64;
    let w = uniform_leaf_weight(fj);
    let w0 = fj.root_weight();
    let wj = fj.join_weight();
    let mut all_leaves_done = Vec::new();
    for &su in platform.speeds() {
        for m in 0..=n {
            all_leaves_done.push(Rat::ratio(w0 + m * w, su));
        }
        for &sv in platform.speeds() {
            for m in 1..=n {
                all_leaves_done.push(Rat::ratio(w0, su) + Rat::ratio(m * w, sv));
            }
        }
    }
    let mut out = Vec::new();
    for &sx in platform.speeds() {
        for &a in &all_leaves_done {
            out.push(a + Rat::ratio(wj, sx));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn solved_from(fj: &ForkJoin, platform: &Platform, mapping: Mapping, by_period: bool) -> Solved {
    let period = fj.period(platform, &mapping).expect("valid mapping");
    let latency = fj.latency(platform, &mapping).expect("valid mapping");
    if by_period {
        Solved::for_period(mapping, period, latency)
    } else {
        Solved::for_latency(mapping, period, latency)
    }
}

/// Theorem 14 extension: minimal period of a homogeneous fork-join on a
/// heterogeneous platform (no data-parallelism).
pub fn min_period_uniform_het(fj: &ForkJoin, platform: &Platform) -> Solved {
    let candidates = k_candidates(fj, platform);
    let idx = candidates
        .partition_point(|&k| feasible_uniform_het(fj, platform, k, Rat::INFINITY).is_none());
    let mapping = feasible_uniform_het(fj, platform, candidates[idx], Rat::INFINITY)
        .expect("largest candidate feasible");
    solved_from(fj, platform, mapping, true)
}

/// Theorem 14 extension: minimal latency of a homogeneous fork-join on a
/// heterogeneous platform (no data-parallelism).
pub fn min_latency_uniform_het(fj: &ForkJoin, platform: &Platform) -> Solved {
    let candidates = l_candidates(fj, platform);
    let idx = candidates
        .partition_point(|&l| feasible_uniform_het(fj, platform, Rat::INFINITY, l).is_none());
    let mapping = feasible_uniform_het(fj, platform, Rat::INFINITY, candidates[idx])
        .expect("largest candidate feasible");
    solved_from(fj, platform, mapping, false)
}

/// Bi-criteria: minimal latency under a period bound (heterogeneous
/// platform, homogeneous fork-join, no data-parallelism).
pub fn min_latency_under_period_uniform_het(
    fj: &ForkJoin,
    platform: &Platform,
    period_bound: Rat,
) -> Option<Solved> {
    let candidates = l_candidates(fj, platform);
    let idx = candidates
        .partition_point(|&l| feasible_uniform_het(fj, platform, period_bound, l).is_none());
    if idx == candidates.len() {
        return None;
    }
    let mapping = feasible_uniform_het(fj, platform, period_bound, candidates[idx])
        .expect("feasible by binary search");
    Some(solved_from(fj, platform, mapping, false))
}

/// Bi-criteria: minimal period under a latency bound (heterogeneous
/// platform, homogeneous fork-join, no data-parallelism).
pub fn min_period_under_latency_uniform_het(
    fj: &ForkJoin,
    platform: &Platform,
    latency_bound: Rat,
) -> Option<Solved> {
    let candidates = k_candidates(fj, platform);
    let idx = candidates
        .partition_point(|&k| feasible_uniform_het(fj, platform, k, latency_bound).is_none());
    if idx == candidates.len() {
        return None;
    }
    let mapping = feasible_uniform_het(fj, platform, candidates[idx], latency_bound)
        .expect("feasible by binary search");
    Some(solved_from(fj, platform, mapping, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_all_min_period() {
        let fj = ForkJoin::new(1, vec![2, 3], 4); // heterogeneous ok
        let plat = Platform::homogeneous(2, 1);
        let sol = min_period(&fj, &plat);
        assert_eq!(sol.period, Rat::int(5)); // 10/(2·1)
    }

    #[test]
    fn scatter_gather_latency() {
        // w0=2, two leaves of 4, join 2, p=3 s=1: root on P1 (2), leaves
        // on P2/P3 (done at 6), join back on P1: 6 + 2 = 8.
        let fj = ForkJoin::uniform(2, 2, 4, 2);
        let plat = Platform::homogeneous(3, 1);
        let sol = min_latency_hom(&fj, &plat, false);
        assert_eq!(sol.latency, Rat::int(8));
    }

    #[test]
    fn dp_join_improves_latency() {
        // join is heavy: data-parallelizing it helps.
        // w0=1, one leaf of 1, join 12, p=4, s=1.
        // Without dp: root+leaf+join on one proc: 14; or root+leaf on P1,
        // join on P2: AllLeavesDone=2, +12 = 14; root on P1, leaf on P2
        // (AllLeavesDone = 1+1 = 2) join on P3: 14.
        let fj = ForkJoin::uniform(1, 1, 1, 12);
        let plat = Platform::homogeneous(4, 1);
        let no_dp = min_latency_hom(&fj, &plat, false);
        assert_eq!(no_dp.latency, Rat::int(14));
        // With dp: join on three procs: AllLeavesDone 2 + 12/3 = 6.
        let with_dp = min_latency_hom(&fj, &plat, true);
        assert_eq!(with_dp.latency, Rat::int(6));
    }

    #[test]
    fn het_platform_latency() {
        // All stages on the fastest processor: (1+2+3)/3 = 2.
        let fj = ForkJoin::uniform(1, 1, 2, 3);
        let plat = Platform::heterogeneous(vec![3, 1]);
        let sol = min_latency_uniform_het(&fj, &plat);
        assert_eq!(sol.latency, Rat::int(2));
    }

    #[test]
    fn het_platform_period() {
        // root 1, leaves [2,2], join 1 (total 6) on speeds {3,1}: the
        // winner puts the root alone on the slow processor (period 1) and
        // {join, leaf, leaf} on the fast one: (1+4)/3 = 5/3. Everything on
        // the fast processor gives 2; replicate-all gives 6/(2·1) = 3.
        // (Cross-checked against repliflow-exact in integration tests.)
        let fj = ForkJoin::uniform(1, 2, 2, 1);
        let plat = Platform::heterogeneous(vec![3, 1]);
        let sol = min_period_uniform_het(&fj, &plat);
        assert_eq!(sol.period, Rat::new(5, 3));
    }

    #[test]
    fn bicriteria_bounds_hold_het() {
        let fj = ForkJoin::uniform(2, 3, 3, 2);
        let plat = Platform::heterogeneous(vec![4, 2, 1]);
        let best_k = min_period_uniform_het(&fj, &plat);
        let best_l = min_latency_uniform_het(&fj, &plat);
        let sol = min_latency_under_period_uniform_het(&fj, &plat, best_k.period).unwrap();
        assert!(sol.period <= best_k.period && sol.latency >= best_l.latency);
        let sol = min_period_under_latency_uniform_het(&fj, &plat, best_l.latency).unwrap();
        assert!(sol.latency <= best_l.latency && sol.period >= best_k.period);
        assert!(min_latency_under_period_uniform_het(&fj, &plat, Rat::new(1, 1000)).is_none());
    }

    #[test]
    fn bicriteria_hom_platform() {
        let fj = ForkJoin::uniform(1, 3, 2, 1);
        let plat = Platform::homogeneous(3, 1);
        let min_p = min_period(&fj, &plat); // 8/3
        let sol = min_latency_under_period_hom(&fj, &plat, false, min_p.period).unwrap();
        assert!(sol.period <= min_p.period);
        let best_l = min_latency_hom(&fj, &plat, false);
        let sol = min_period_under_latency_hom(&fj, &plat, false, best_l.latency).unwrap();
        assert!(sol.latency <= best_l.latency);
    }
}
