//! Fork mappings on **heterogeneous platforms** without data-parallelism —
//! Theorem 14 (homogeneous fork, any objective).
//!
//! Lemma 4: there is an optimal solution that sorts the enrolled
//! processors by non-decreasing speed and replicates leaf groups onto
//! *intervals* of consecutive processors, one distinguished interval
//! (starting at position `q0`) carrying the root stage `S0`.
//!
//! The solver follows the paper's scheme — an exact binary search over the
//! finite candidate value sets, each probe deciding feasibility of a
//! (period `K`, latency `L`) pair by a dynamic program — with one
//! mechanical simplification: processor runs may carry zero leaves (idle
//! processors), which subsumes the paper's outer loop over the number of
//! enrolled processors. For each root position `g0` a linear DP packs the
//! maximum number of leaves into consecutive runs (`O(p²)` per position,
//! `O(p³)` per probe):
//!
//! * root run `[g0..e]`: `(w0 + m·w)/((e-g0+1)·s_{g0}) <= K` and delay
//!   `(w0 + m·w)/s_{g0} <= L`;
//! * other runs `[i..j]`: `m·w/((j-i+1)·s_i) <= K` and, because they start
//!   only when `S0` finishes, `w0/s_{g0} + m·w/s_i <= L`.
//!
//! Every term above is one of `O(n·p²)` rational candidates, so the binary
//! searches return exact optima.
//!
//! The heterogeneous-fork variants are NP-hard on heterogeneous platforms
//! (Theorem 15) — see `repliflow-reductions`.

use crate::solution::Solved;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Fork;

fn uniform_leaf_weight(fork: &Fork) -> u64 {
    assert!(
        fork.is_homogeneous(),
        "this algorithm requires a homogeneous fork (identical leaf weights)"
    );
    if fork.n_leaves() == 0 {
        0
    } else {
        fork.weight(1)
    }
}

/// Max `m >= 0` with `num + m·w <= bound · denom_speed_terms`, i.e.
/// `m <= (bound·x - base)/w`; `None` if even `m = 0` fails.
fn max_count(bound: Rat, x: u64, base: u64, w: u64, n: usize) -> Option<usize> {
    if bound == Rat::INFINITY {
        return Some(n);
    }
    let slack = bound * Rat::int(x as i128) - Rat::int(base as i128);
    if slack < Rat::ZERO {
        return None;
    }
    if w == 0 {
        return Some(n);
    }
    let m = (slack / Rat::int(w as i128)).floor();
    Some((m.max(0) as usize).min(n))
}

/// Feasibility probe: a mapping with period `<= k_bound` and latency
/// `<= l_bound`, if one exists.
fn feasible_uniform(
    fork: &Fork,
    platform: &Platform,
    k_bound: Rat,
    l_bound: Rat,
) -> Option<Mapping> {
    let n = fork.n_leaves();
    let w = uniform_leaf_weight(fork);
    let w0 = fork.root_weight();
    let order = platform.by_speed_asc();
    let p = order.len();
    let speed = |i: usize| platform.speed(order[i]);

    for g0 in 0..p {
        let s0 = speed(g0);
        // latency budget left for non-root runs after S0 completes
        let l_rest = if l_bound == Rat::INFINITY {
            Rat::INFINITY
        } else {
            l_bound - Rat::ratio(w0, s0)
        };
        if l_rest < Rat::ZERO {
            continue; // even an empty mapping cannot hide w0/s0 > L
        }

        // capacity of run [i..=j]
        let cap = |i: usize, j: usize| -> Option<usize> {
            let len = (j - i + 1) as u64;
            let s = speed(i);
            if i == g0 {
                let by_k = max_count(k_bound, len * s, w0, w, n)?;
                let by_l = max_count(l_bound, s, w0, w, n)?;
                Some(by_k.min(by_l))
            } else {
                let by_k = max_count(k_bound, len * s, 0, w, n)?;
                let by_l = max_count(l_rest, s, 0, w, n)?;
                Some(by_k.min(by_l))
            }
        };

        // best[i]: max leaves over partitions of processors i..p-1 into
        // consecutive runs, none straddling g0.
        let mut best = vec![i64::MIN; p + 1];
        let mut choice = vec![0usize; p + 1];
        best[p] = 0;
        for i in (0..p).rev() {
            for j in i..p {
                if i < g0 && j >= g0 {
                    break; // would straddle the root position
                }
                if best[j + 1] == i64::MIN {
                    continue;
                }
                if let Some(c) = cap(i, j) {
                    let total = best[j + 1] + c as i64;
                    if total > best[i] {
                        best[i] = total;
                        choice[i] = j;
                    }
                }
            }
        }
        if best[0] < n as i64 {
            continue;
        }

        // reconstruct: walk runs, assign leaf counts greedily
        let mut assignments = Vec::new();
        let mut next_leaf = 1usize; // stage ids of leaves are 1..=n
        let mut remaining = n;
        let mut i = 0;
        while i < p {
            let j = choice[i];
            let c = cap(i, j).expect("on optimal path").min(remaining);
            let procs: Vec<ProcId> = order[i..=j].to_vec();
            if i == g0 {
                let mut stages = vec![0usize];
                stages.extend(next_leaf..next_leaf + c);
                assignments.push(Assignment::new(stages, procs, Mode::Replicated));
                next_leaf += c;
                remaining -= c;
            } else if c > 0 && remaining > 0 {
                let take = c.min(remaining);
                assignments.push(Assignment::new(
                    (next_leaf..next_leaf + take).collect(),
                    procs,
                    Mode::Replicated,
                ));
                next_leaf += take;
                remaining -= take;
            }
            i = j + 1;
        }
        debug_assert_eq!(remaining, 0);
        return Some(Mapping::new(assignments));
    }
    None
}

/// Candidate period values (every achievable group period).
fn period_candidates(fork: &Fork, platform: &Platform) -> Vec<Rat> {
    let n = fork.n_leaves() as u64;
    let w = uniform_leaf_weight(fork);
    let w0 = fork.root_weight();
    let p = platform.n_procs() as u64;
    let mut out = Vec::new();
    for &s in platform.speeds() {
        for k in 1..=p {
            for m in 0..=n {
                out.push(Rat::ratio(w0 + m * w, k * s));
                if m > 0 {
                    out.push(Rat::ratio(m * w, k * s));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Candidate latency values (every achievable latency).
fn latency_candidates(fork: &Fork, platform: &Platform) -> Vec<Rat> {
    let n = fork.n_leaves() as u64;
    let w = uniform_leaf_weight(fork);
    let w0 = fork.root_weight();
    let mut out = Vec::new();
    for &su in platform.speeds() {
        for m in 0..=n {
            out.push(Rat::ratio(w0 + m * w, su));
        }
        for &sv in platform.speeds() {
            for m in 1..=n {
                out.push(Rat::ratio(w0, su) + Rat::ratio(m * w, sv));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn solved_from(fork: &Fork, platform: &Platform, mapping: Mapping, by_period: bool) -> Solved {
    let period = fork.period(platform, &mapping).expect("valid mapping");
    let latency = fork.latency(platform, &mapping).expect("valid mapping");
    if by_period {
        Solved::for_period(mapping, period, latency)
    } else {
        Solved::for_latency(mapping, period, latency)
    }
}

/// Theorem 14: minimal period of a homogeneous fork on a heterogeneous
/// platform (no data-parallelism).
pub fn min_period_uniform(fork: &Fork, platform: &Platform) -> Solved {
    let candidates = period_candidates(fork, platform);
    let idx = candidates
        .partition_point(|&k| feasible_uniform(fork, platform, k, Rat::INFINITY).is_none());
    let mapping = feasible_uniform(fork, platform, candidates[idx], Rat::INFINITY)
        .expect("largest candidate is feasible");
    solved_from(fork, platform, mapping, true)
}

/// Theorem 14: minimal latency of a homogeneous fork on a heterogeneous
/// platform (no data-parallelism).
pub fn min_latency_uniform(fork: &Fork, platform: &Platform) -> Solved {
    let candidates = latency_candidates(fork, platform);
    let idx = candidates
        .partition_point(|&l| feasible_uniform(fork, platform, Rat::INFINITY, l).is_none());
    let mapping = feasible_uniform(fork, platform, Rat::INFINITY, candidates[idx])
        .expect("largest candidate is feasible");
    solved_from(fork, platform, mapping, false)
}

/// Theorem 14 bi-criteria: minimal latency under a period bound.
pub fn min_latency_under_period_uniform(
    fork: &Fork,
    platform: &Platform,
    period_bound: Rat,
) -> Option<Solved> {
    let candidates = latency_candidates(fork, platform);
    let idx = candidates
        .partition_point(|&l| feasible_uniform(fork, platform, period_bound, l).is_none());
    if idx == candidates.len() {
        return None;
    }
    let mapping = feasible_uniform(fork, platform, period_bound, candidates[idx])
        .expect("feasible by binary search");
    Some(solved_from(fork, platform, mapping, false))
}

/// Theorem 14 bi-criteria: minimal period under a latency bound.
pub fn min_period_under_latency_uniform(
    fork: &Fork,
    platform: &Platform,
    latency_bound: Rat,
) -> Option<Solved> {
    let candidates = period_candidates(fork, platform);
    let idx = candidates
        .partition_point(|&k| feasible_uniform(fork, platform, k, latency_bound).is_none());
    if idx == candidates.len() {
        return None;
    }
    let mapping = feasible_uniform(fork, platform, candidates[idx], latency_bound)
        .expect("feasible by binary search");
    Some(solved_from(fork, platform, mapping, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_period_simple() {
        // root 2, two leaves of 2 (total 6) on speeds {3, 1}. Exhaustive
        // cases: everything on the fast processor = 6/3 = 2; replicate the
        // whole fork on both = 6/(2·1) = 3; root+leaf on fast with the
        // other leaf on slow = max(4/3, 2) = 2. Optimum: 2.
        let fork = Fork::uniform(2, 2, 2);
        let plat = Platform::heterogeneous(vec![3, 1]);
        let sol = min_period_uniform(&fork, &plat);
        assert_eq!(sol.period, Rat::int(2));
    }

    #[test]
    fn min_latency_simple() {
        // Everything on the fastest processor: (2 + 4)/3 = 2.
        let fork = Fork::uniform(2, 2, 2);
        let plat = Platform::heterogeneous(vec![3, 1]);
        let sol = min_latency_uniform(&fork, &plat);
        // root on fast (2/3), leaves: leaf on fast with root: (2+2)/3;
        // leaf on slow: 2/3 + 2 = 8/3. max(4/3, 8/3) = 8/3 > 2. So 2.
        assert_eq!(sol.latency, Rat::int(2));
    }

    #[test]
    fn bicriteria_bounds_hold() {
        let fork = Fork::uniform(3, 4, 5);
        let plat = Platform::heterogeneous(vec![4, 2, 1]);
        let by_period = min_period_uniform(&fork, &plat);
        let by_latency = min_latency_uniform(&fork, &plat);
        // constraining at each unconstrained optimum must be feasible
        let sol = min_latency_under_period_uniform(&fork, &plat, by_period.period).unwrap();
        assert!(sol.period <= by_period.period);
        assert!(sol.latency >= by_latency.latency);
        let sol = min_period_under_latency_uniform(&fork, &plat, by_latency.latency).unwrap();
        assert!(sol.latency <= by_latency.latency);
        assert!(sol.period >= by_period.period);
        // absurd bounds are infeasible
        assert!(min_latency_under_period_uniform(&fork, &plat, Rat::new(1, 1000)).is_none());
        assert!(min_period_under_latency_uniform(&fork, &plat, Rat::new(1, 1000)).is_none());
    }

    #[test]
    fn leafless_fork() {
        let fork = Fork::new(6, vec![]);
        let plat = Platform::heterogeneous(vec![1, 3]);
        assert_eq!(min_latency_uniform(&fork, &plat).latency, Rat::int(2));
        // period: replicate the root on both? runs are consecutive in
        // ascending speed: [1,3] as one run: 6/(2·1) = 3; fast alone: 2.
        assert_eq!(min_period_uniform(&fork, &plat).period, Rat::int(2));
    }

    #[test]
    fn max_count_math() {
        // m <= (K·x - base)/w
        assert_eq!(max_count(Rat::int(5), 2, 4, 3, 100), Some(2)); // (10-4)/3
        assert_eq!(max_count(Rat::int(1), 2, 4, 3, 100), None); // 2 < 4
        assert_eq!(max_count(Rat::INFINITY, 2, 4, 3, 7), Some(7));
        assert_eq!(max_count(Rat::int(2), 2, 4, 3, 100), Some(0));
    }
}
