//! Pipeline mappings on **heterogeneous platforms** — Theorems 6–8.
//!
//! * [`min_latency_no_dp`] — Theorem 6: without data-parallelism the
//!   minimal latency maps the whole pipeline onto the fastest processor
//!   (replication cannot improve latency, Lemma 2). Works for any pipeline.
//! * [`min_period_uniform`] — Theorem 7: for a *homogeneous pipeline*
//!   (all stages of weight `w`) without data-parallelism, the optimal
//!   period is found by an exact binary search over the finite candidate
//!   set `{m·w/(k·s_u)}` combined with a feasibility dynamic program that
//!   packs stage counts onto intervals of speed-consecutive processors
//!   (Lemma 3).
//! * [`min_latency_under_period_uniform`] / [`min_period_under_latency_uniform`]
//!   — Theorem 8: the bi-criteria variant; a dynamic program
//!   `L(m, i, j)` = minimal latency for `m` stages on the speed-sorted
//!   processor range `i..=j` under the period bound.
//!
//! The remaining heterogeneous-pipeline cells of Table 1 are NP-hard
//! (Theorems 5 and 9) — see `repliflow-reductions` for the reductions and
//! `repliflow-heuristics` for practical solvers.
//!
//! Implementation notes kept faithful to the paper, with two mechanical
//! simplifications justified in the code: intervals may be assigned zero
//! stages (making the paper's outer loop over "number of enrolled
//! processors q" redundant — a zero-stage interval is an idle processor),
//! and the binary searches run over the exact candidate value sets rather
//! than epsilon-terminated real searches, so returned optima are exact.

use crate::solution::Solved;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Pipeline;

/// Theorem 6: minimal latency without data-parallelism — the whole
/// pipeline on the fastest processor.
pub fn min_latency_no_dp(pipeline: &Pipeline, platform: &Platform) -> Solved {
    let fastest = platform.fastest();
    let mapping = Mapping::whole(pipeline.n_stages(), vec![fastest], Mode::Replicated);
    let period = pipeline
        .period(platform, &mapping)
        .expect("valid by construction");
    let latency = pipeline
        .latency(platform, &mapping)
        .expect("valid by construction");
    Solved::for_latency(mapping, period, latency)
}

fn uniform_weight(pipeline: &Pipeline) -> u64 {
    assert!(
        pipeline.is_homogeneous(),
        "this algorithm requires a homogeneous pipeline (identical stage weights)"
    );
    pipeline.weight(0)
}

/// How many stages a replicated interval on processors `procs[i..=j]`
/// (speed-ascending) can host within period `k_bound` and *interval
/// latency* `l_bound`: `m·w/(len·s_i) <= K` and `m·w/s_i <= L`.
fn interval_capacity(
    s_slowest: u64,
    len: usize,
    w: u64,
    n: usize,
    k_bound: Rat,
    l_bound: Rat,
) -> usize {
    let by_period = if k_bound == Rat::INFINITY {
        n as i128
    } else {
        // m <= K·len·s / w
        (k_bound * Rat::int(len as i128) * Rat::int(s_slowest as i128) / Rat::int(w as i128))
            .floor()
    };
    let by_latency = if l_bound == Rat::INFINITY {
        n as i128
    } else {
        (l_bound * Rat::int(s_slowest as i128) / Rat::int(w as i128)).floor()
    };
    by_period.min(by_latency).clamp(0, n as i128) as usize
}

/// Feasibility core shared by Theorems 7 and 8: can `n` stages of weight
/// `w` be mapped onto the platform with every interval period `<= k_bound`
/// and total latency `<= l_bound`? Returns a mapping when feasible.
///
/// The processors are sorted by non-decreasing speed (Lemma 3) and
/// partitioned into consecutive runs, each replicating one stage interval.
/// For the pure period problem (`l_bound = ∞`) a greedy argument applies:
/// each run contributes its capacity independently, so we maximize the
/// total. With a latency bound the per-run latency contributions add up,
/// so we run the paper's `L(m, i, j)` dynamic program instead.
fn feasible_uniform(
    pipeline: &Pipeline,
    platform: &Platform,
    k_bound: Rat,
    l_bound: Rat,
) -> Option<Mapping> {
    let n = pipeline.n_stages();
    let w = uniform_weight(pipeline);
    let order = platform.by_speed_asc();
    let p = order.len();
    let speed = |i: usize| platform.speed(order[i]);

    // L[m][i][j]: minimal latency to host exactly m stages on processor
    // run i..=j (possibly splitting into sub-runs), within k_bound.
    // We only need L over runs; to keep the state space O(n·p) we use the
    // left-to-right form: best[i][m] = minimal latency for m stages using
    // processors i.. (suffix), choosing the run starting at i.
    let inf = Rat::INFINITY;
    let mut best = vec![vec![inf; n + 1]; p + 1];
    // choice[i][m] = (j, c): run i..=j hosts c stages
    let mut choice = vec![vec![(0usize, 0usize); n + 1]; p + 1];
    best[p][0] = Rat::ZERO;
    for i in (0..p).rev() {
        for m in 0..=n {
            let mut b = inf;
            let mut ch = (0usize, 0usize);
            for j in i..p {
                let cap = interval_capacity(speed(i), j - i + 1, w, n, k_bound, l_bound);
                for c in 0..=cap.min(m) {
                    let rest = best[j + 1][m - c];
                    if rest == inf {
                        continue;
                    }
                    let lat = if c == 0 {
                        rest
                    } else {
                        Rat::ratio(c as u64 * w, speed(i)) + rest
                    };
                    if lat < b {
                        b = lat;
                        ch = (j, c);
                    }
                }
            }
            best[i][m] = b;
            choice[i][m] = ch;
        }
    }
    if best[0][n] == Rat::INFINITY || best[0][n] > l_bound {
        return None;
    }

    // reconstruct: walk runs, then hand out stage intervals left to right
    let mut counts: Vec<(usize, usize, usize)> = Vec::new(); // (i, j, stages)
    let mut i = 0;
    let mut m = n;
    while i < p {
        let (j, c) = choice[i][m];
        if m == 0 {
            break; // remaining processors idle
        }
        counts.push((i, j, c));
        m -= c;
        i = j + 1;
    }
    debug_assert_eq!(m, 0);
    let mut assignments = Vec::new();
    let mut next_stage = 0usize;
    for (i, j, c) in counts {
        if c == 0 {
            continue;
        }
        let procs: Vec<ProcId> = order[i..=j].to_vec();
        assignments.push(Assignment::interval(
            next_stage,
            next_stage + c - 1,
            procs,
            Mode::Replicated,
        ));
        next_stage += c;
    }
    Some(Mapping::new(assignments))
}

/// All achievable period values `m·w/(k·s_u)` for a homogeneous pipeline.
fn period_candidates(pipeline: &Pipeline, platform: &Platform) -> Vec<Rat> {
    let n = pipeline.n_stages() as u64;
    let w = uniform_weight(pipeline);
    let mut candidates = Vec::new();
    for &s in platform.speeds() {
        for k in 1..=platform.n_procs() as u64 {
            for m in 1..=n {
                candidates.push(Rat::ratio(m * w, k * s));
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// All achievable latency values `Σ m_r·w/s_{u_r}` are sums, but the
/// optimum of the latency-bounded problems is always attained at a value
/// of the dynamic program, so for the latency direction we search over
/// the values the DP can output: we take the grid `m·w/s_u` closed under
/// the partial sums that appear as `best[0][n]` — in practice probing the
/// DP directly with each candidate period and reading its latency is
/// exact, which is what the public functions below do.
fn latency_of_best_mapping(pipeline: &Pipeline, platform: &Platform, k_bound: Rat) -> Option<Rat> {
    feasible_uniform(pipeline, platform, k_bound, Rat::INFINITY)
        .map(|m| pipeline.latency(platform, &m).expect("valid mapping"))
}

/// Theorem 7: optimal period for a homogeneous pipeline on a heterogeneous
/// platform (no data-parallelism), via exact candidate binary search.
pub fn min_period_uniform(pipeline: &Pipeline, platform: &Platform) -> Solved {
    let candidates = period_candidates(pipeline, platform);
    let idx = candidates
        .partition_point(|&k| feasible_uniform(pipeline, platform, k, Rat::INFINITY).is_none());
    let k = candidates[idx.min(candidates.len() - 1)];
    let mapping =
        feasible_uniform(pipeline, platform, k, Rat::INFINITY).expect("largest candidate feasible");
    let period = pipeline.period(platform, &mapping).expect("valid mapping");
    let latency = pipeline.latency(platform, &mapping).expect("valid mapping");
    debug_assert!(period <= k);
    Solved::for_period(mapping, period, latency)
}

/// Theorem 8 (one direction): minimal latency under a period bound for a
/// homogeneous pipeline on a heterogeneous platform. `None` if infeasible.
pub fn min_latency_under_period_uniform(
    pipeline: &Pipeline,
    platform: &Platform,
    period_bound: Rat,
) -> Option<Solved> {
    let mapping = feasible_uniform(pipeline, platform, period_bound, Rat::INFINITY)?;
    // `feasible_uniform` minimizes latency among period-feasible mappings
    // (its DP objective is the latency), so this is the optimum.
    let period = pipeline.period(platform, &mapping).expect("valid mapping");
    let latency = pipeline.latency(platform, &mapping).expect("valid mapping");
    debug_assert!(period <= period_bound);
    Some(Solved::for_latency(mapping, period, latency))
}

/// Theorem 8 (other direction): minimal period under a latency bound,
/// via exact candidate binary search on the period. `None` if infeasible.
pub fn min_period_under_latency_uniform(
    pipeline: &Pipeline,
    platform: &Platform,
    latency_bound: Rat,
) -> Option<Solved> {
    let candidates = period_candidates(pipeline, platform);
    let feasible = |k: Rat| {
        latency_of_best_mapping(pipeline, platform, k).is_some_and(|lat| lat <= latency_bound)
    };
    let idx = candidates.partition_point(|&k| !feasible(k));
    if idx == candidates.len() {
        return None;
    }
    let mapping = feasible_uniform(pipeline, platform, candidates[idx], Rat::INFINITY)
        .expect("feasible by binary search");
    let period = pipeline.period(platform, &mapping).expect("valid mapping");
    let latency = pipeline.latency(platform, &mapping).expect("valid mapping");
    debug_assert!(latency <= latency_bound);
    Some(Solved::for_period(mapping, period, latency))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem6_fastest_processor() {
        let pipe = Pipeline::new(vec![14, 4, 2, 4]);
        let plat = Platform::heterogeneous(vec![2, 2, 1, 1]);
        let sol = min_latency_no_dp(&pipe, &plat);
        assert_eq!(sol.latency, Rat::int(12)); // 24/2
        assert_eq!(sol.mapping.n_assignments(), 1);
    }

    #[test]
    fn theorem7_uniform_pipeline() {
        // 4 identical stages of weight 6 on speeds {3, 1}: replicate all
        // four on the fast processor: 24/3 = 8; or split 3/1:
        // max(18/3, 6/1) = 6; or replicate all on both: 24/(2·1) = 12.
        let pipe = Pipeline::uniform(4, 6);
        let plat = Platform::heterogeneous(vec![3, 1]);
        let sol = min_period_uniform(&pipe, &plat);
        assert_eq!(sol.period, Rat::int(6));
    }

    #[test]
    fn theorem7_homogeneous_platform_matches_theorem1_bound() {
        // On a homogeneous platform the bound Σw/(p·s) is reachable by
        // replicating everything, which the DP finds via a single run.
        let pipe = Pipeline::uniform(5, 10);
        let plat = Platform::homogeneous(4, 2);
        let sol = min_period_uniform(&pipe, &plat);
        assert_eq!(sol.period, Rat::new(50, 8));
    }

    #[test]
    fn theorem8_latency_under_period() {
        let pipe = Pipeline::uniform(4, 6);
        let plat = Platform::heterogeneous(vec![3, 1]);
        // unconstrained latency: everything on the fast processor = 8
        let sol = min_latency_under_period_uniform(&pipe, &plat, Rat::INFINITY).unwrap();
        assert_eq!(sol.latency, Rat::int(8));
        // period <= 6 forces the 3/1 split: latency 18/3 + 6/1 = 12
        let sol = min_latency_under_period_uniform(&pipe, &plat, Rat::int(6)).unwrap();
        assert_eq!(sol.latency, Rat::int(12));
        assert!(sol.period <= Rat::int(6));
        // infeasible bound
        assert!(min_latency_under_period_uniform(&pipe, &plat, Rat::new(1, 100)).is_none());
    }

    #[test]
    fn theorem8_period_under_latency() {
        let pipe = Pipeline::uniform(4, 6);
        let plat = Platform::heterogeneous(vec![3, 1]);
        let sol = min_period_under_latency_uniform(&pipe, &plat, Rat::int(8)).unwrap();
        assert_eq!(sol.period, Rat::int(8)); // everything on fast proc
        let sol = min_period_under_latency_uniform(&pipe, &plat, Rat::int(12)).unwrap();
        assert_eq!(sol.period, Rat::int(6));
        assert!(min_period_under_latency_uniform(&pipe, &plat, Rat::int(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "homogeneous pipeline")]
    fn theorem7_rejects_heterogeneous_pipeline() {
        let pipe = Pipeline::new(vec![1, 2]);
        let plat = Platform::heterogeneous(vec![2, 1]);
        let _ = min_period_uniform(&pipe, &plat);
    }

    #[test]
    fn capacity_formula() {
        // period bound 2, 3 procs of slowest speed 2, w=4:
        // m <= 2·3·2/4 = 3
        assert_eq!(
            interval_capacity(2, 3, 4, 10, Rat::int(2), Rat::INFINITY),
            3
        );
        // latency bound 6: m <= 6·2/4 = 3
        assert_eq!(
            interval_capacity(2, 3, 4, 10, Rat::INFINITY, Rat::int(6)),
            3
        );
        // both: min
        assert_eq!(interval_capacity(2, 3, 4, 10, Rat::int(1), Rat::int(6)), 1);
        // clamped to n
        assert_eq!(
            interval_capacity(100, 3, 1, 5, Rat::INFINITY, Rat::INFINITY),
            5
        );
    }
}
