//! Front engine integration tests: endpoint agreement with the
//! single-objective optima, dominance ordering, completeness,
//! determinism/byte-identity, reliability annotations, and the front
//! cache's provenance tagging.

use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_core::platform::Platform;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::{Pipeline, Workflow};
use repliflow_multicrit::{FrontEnginePref, FrontRequest, FrontSolver};
use repliflow_solver::{Budget, Optimality, Provenance, SolverService};
use repliflow_sync::sync::Arc;

fn service() -> Arc<SolverService> {
    Arc::new(SolverService::builder().workers(1).build())
}

/// A small heterogeneous pipeline instance with a real period/latency
/// trade-off (replication shortens period but hurts nothing here;
/// data-parallel off keeps the exact enumeration tiny).
fn golden_instance() -> ProblemInstance {
    ProblemInstance {
        cost_model: CostModel::Simplified,
        workflow: Pipeline::new(vec![4, 7, 3, 5]).into(),
        platform: Platform::heterogeneous(vec![1, 2, 3]),
        allow_data_parallel: true,
        objective: Objective::Period,
    }
}

fn failing_instance() -> ProblemInstance {
    let mut instance = golden_instance();
    instance.platform = Platform::heterogeneous(vec![1, 2, 3]).with_failure_probs(vec![
        Rat::new(1, 10),
        Rat::new(1, 20),
        Rat::new(1, 4),
    ]);
    instance
}

/// A random small instance with exact-range size, varied shape.
fn random_instance(gen: &mut Gen) -> ProblemInstance {
    let n = gen.size(2, 5);
    let workflow: Workflow = gen.uniform_pipeline(n, 1, 9).into();
    let platform = if gen.int(0, 1) == 0 {
        let p = gen.size(2, 4);
        gen.hom_platform(p, 1, 4)
    } else {
        Platform::heterogeneous(vec![gen.int(1, 4), gen.int(2, 5), gen.int(1, 6)])
    };
    ProblemInstance {
        cost_model: CostModel::Simplified,
        workflow,
        platform,
        allow_data_parallel: gen.int(0, 1) == 1,
        objective: Objective::Period,
    }
}

fn single_optimum(
    service: &SolverService,
    instance: &ProblemInstance,
    objective: Objective,
) -> Rat {
    let inner = ProblemInstance {
        objective,
        ..instance.clone()
    };
    let report = service
        .solve(&service.request(inner))
        .expect("single-objective solve succeeds");
    match objective {
        Objective::Period => report.period.expect("period witness"),
        Objective::Latency => report.latency.expect("latency witness"),
        _ => unreachable!("endpoint helper only handles the two pure objectives"),
    }
}

#[test]
fn exact_front_is_complete_sorted_and_witnessed() {
    let service = service();
    let solver = FrontSolver::new(service.clone());
    let report = solver
        .solve_front(&FrontRequest::new(golden_instance()).engine(FrontEnginePref::Exact))
        .expect("exact front");
    assert_eq!(report.engine_used, "front-exact");
    assert!(report.complete, "small instance front must complete");
    assert!(!report.truncated);
    assert!(!report.points.is_empty());
    assert!(report.is_dominance_sorted());
    for p in &report.points {
        assert_eq!(p.optimality, Optimality::Proven);
        assert_eq!(p.reliability, None, "fail-free platform: no annotation");
        // The witness really achieves the reported coordinates.
        let instance = golden_instance();
        assert_eq!(
            instance.period(&p.mapping).expect("valid witness"),
            p.period
        );
        assert_eq!(
            instance.latency(&p.mapping).expect("valid witness"),
            p.latency
        );
    }
}

#[test]
fn exact_front_endpoints_match_single_objective_optima_golden() {
    let service = service();
    let solver = FrontSolver::new(service.clone());
    let instance = golden_instance();
    let report = solver
        .solve_front(&FrontRequest::new(instance.clone()).engine(FrontEnginePref::Exact))
        .expect("exact front");
    let best_period = single_optimum(&service, &instance, Objective::Period);
    let best_latency = single_optimum(&service, &instance, Objective::Latency);
    assert_eq!(report.points.first().expect("nonempty").period, best_period);
    assert_eq!(
        report.points.last().expect("nonempty").latency,
        best_latency
    );
}

#[test]
fn exact_front_endpoints_match_single_objective_optima_random() {
    let service = service();
    let solver = FrontSolver::new(service.clone());
    let mut gen = Gen::new(0xF5041);
    for _ in 0..12 {
        let instance = random_instance(&mut gen);
        let report = solver
            .solve_front(&FrontRequest::new(instance.clone()).engine(FrontEnginePref::Exact))
            .expect("exact front");
        assert!(report.complete);
        assert!(report.is_dominance_sorted());
        let best_period = single_optimum(&service, &instance, Objective::Period);
        let best_latency = single_optimum(&service, &instance, Objective::Latency);
        assert_eq!(report.points.first().expect("nonempty").period, best_period);
        assert_eq!(
            report.points.last().expect("nonempty").latency,
            best_latency
        );
    }
}

#[test]
fn sweep_front_never_worse_than_portfolio_endpoints() {
    let service = service();
    let solver = FrontSolver::new(service.clone());
    let mut gen = Gen::new(0xBEEF);
    for _ in 0..8 {
        let instance = random_instance(&mut gen);
        let report = solver
            .solve_front(&FrontRequest::new(instance.clone()).engine(FrontEnginePref::Sweep))
            .expect("sweep front");
        assert_eq!(report.engine_used, "front-sweep");
        assert!(!report.complete, "sweeps never claim completeness");
        assert!(report.is_dominance_sorted());
        let best_period = single_optimum(&service, &instance, Objective::Period);
        let best_latency = single_optimum(&service, &instance, Objective::Latency);
        let first = report.points.first().expect("nonempty");
        let last = report.points.last().expect("nonempty");
        assert!(
            first.period <= best_period,
            "sweep endpoint beats portfolio"
        );
        assert!(
            last.latency <= best_latency,
            "sweep endpoint beats portfolio"
        );
        for p in &report.points {
            assert_eq!(p.optimality, Optimality::Heuristic);
        }
    }
}

#[test]
fn exact_front_annotates_reliability_on_failing_platforms() {
    let solver = FrontSolver::new(service());
    let instance = failing_instance();
    let report = solver
        .solve_front(&FrontRequest::new(instance.clone()).engine(FrontEnginePref::Exact))
        .expect("exact front");
    assert!(!report.points.is_empty());
    for p in &report.points {
        let r = p.reliability.expect("failing platform: annotation present");
        assert_eq!(r, instance.reliability(&p.mapping));
        assert!(r > Rat::new(0, 1) && r <= Rat::new(1, 1));
    }
}

#[test]
fn fronts_are_byte_identical_across_runs_and_worker_counts() {
    let mut snapshots = Vec::new();
    for workers in [1, 4] {
        let service = Arc::new(SolverService::builder().workers(workers).build());
        let solver = FrontSolver::without_cache(service);
        for _ in 0..2 {
            let report = solver
                .solve_front(&FrontRequest::new(golden_instance()))
                .expect("front");
            snapshots.push(report.canonical_json());
        }
    }
    for s in &snapshots[1..] {
        assert_eq!(s, &snapshots[0], "canonical JSON must be byte-identical");
    }
}

#[test]
fn auto_routes_small_instances_exact_and_capped_budgets_to_sweep() {
    let solver = FrontSolver::new(service());
    let exact = solver
        .solve_front(&FrontRequest::new(golden_instance()))
        .expect("auto front");
    assert_eq!(exact.engine_used, "front-exact");

    // Shrinking the exact budget below the instance size flips Auto to
    // the sweep.
    let tiny = Budget {
        max_exact_stages: 2,
        max_exact_procs: 2,
        ..Budget::default()
    };
    let sweep = solver
        .solve_front(&FrontRequest::new(golden_instance()).budget(tiny))
        .expect("auto front");
    assert_eq!(sweep.engine_used, "front-sweep");
}

#[test]
fn max_front_points_truncates_deterministically() {
    let solver = FrontSolver::new(service());
    let full = solver
        .solve_front(&FrontRequest::new(golden_instance()).engine(FrontEnginePref::Exact))
        .expect("full front");
    assert!(full.points.len() > 1, "golden instance has a trade-off");

    let capped = solver
        .solve_front(
            &FrontRequest::new(golden_instance())
                .engine(FrontEnginePref::Exact)
                .budget(Budget::default().max_front_points(1)),
        )
        .expect("capped front");
    assert_eq!(capped.points.len(), 1);
    assert!(capped.truncated);
    assert!(!capped.complete);
    // The cap cuts the tail, never reorders: the prefix is shared.
    assert_eq!(capped.points[0], full.points[0]);
}

#[test]
fn front_cache_serves_tagged_clones() {
    let solver = FrontSolver::new(service());
    let request = FrontRequest::new(golden_instance());
    let first = solver.solve_front(&request).expect("fresh front");
    assert_eq!(first.provenance, Provenance::Computed);
    let second = solver.solve_front(&request).expect("cached front");
    assert_eq!(second.provenance, Provenance::Cached);
    // Serving metadata aside, the hit is byte-identical.
    assert_eq!(first.canonical_json(), second.canonical_json());
    let stats = solver.cache_stats().expect("cache enabled");
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);

    // A different budget is a different fingerprint — no false hits.
    let other = solver
        .solve_front(
            &request
                .clone()
                .budget(Budget::default().max_front_points(1)),
        )
        .expect("front");
    assert_eq!(other.provenance, Provenance::Computed);

    solver.clear_cache();
    let third = solver.solve_front(&request).expect("recomputed front");
    assert_eq!(third.provenance, Provenance::Computed);
}

#[test]
fn without_cache_never_serves_cached_fronts() {
    let solver = FrontSolver::without_cache(service());
    assert!(solver.cache_stats().is_none());
    let request = FrontRequest::new(golden_instance());
    for _ in 0..2 {
        let report = solver.solve_front(&request).expect("front");
        assert_eq!(report.provenance, Provenance::Computed);
    }
}

#[test]
fn front_request_fingerprints_are_domain_separated_and_knob_sensitive() {
    let base = FrontRequest::new(golden_instance());
    let fp = base.fingerprint();
    assert_eq!(fp, base.clone().fingerprint(), "fingerprint is stable");
    assert_ne!(
        fp,
        base.clone().engine(FrontEnginePref::Exact).fingerprint()
    );
    assert_ne!(
        fp,
        base.clone()
            .budget(Budget::default().max_front_points(7))
            .fingerprint()
    );
    assert_ne!(
        fp,
        base.clone()
            .budget(Budget::default().front_time_limit_ms(1))
            .fingerprint()
    );
    assert_ne!(fp, base.clone().validate_witness(false).fingerprint());
    // Same instance, but a plain solve fingerprint: the leading domain
    // tag keeps the keyspaces apart.
    let solve_fp = repliflow_solver::SolveRequest::new(golden_instance()).fingerprint();
    assert_ne!(fp, solve_fp);
}
