//! The request side of the front API: what instance to trace the
//! front of, with which front engine, under which budget.

use repliflow_core::fingerprint::{Fingerprinter, InstanceFingerprint};
use repliflow_core::instance::ProblemInstance;
use repliflow_solver::{Budget, Quality};

/// Which front engine a [`FrontRequest`] routes to.
///
/// [`FrontRequest`]: crate::FrontRequest
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontEnginePref {
    /// `front-exact` when the instance fits the budget's exact
    /// enumeration guards (`allows_exact` / `allows_comm_exact` plus
    /// the solvers' representation caps), `front-sweep` beyond.
    #[default]
    Auto,
    /// Force the exact ε-constraint enumeration, whatever the budget
    /// says; instances beyond the exact solvers' hard representation
    /// caps fail with `ExceedsExactCapacity` instead of degrading.
    Exact,
    /// Force the heuristic grid sweep, even on tiny instances.
    Sweep,
}

impl FrontEnginePref {
    /// Parses the CLI spelling (`auto`, `exact`, `sweep`).
    pub fn parse(s: &str) -> Option<FrontEnginePref> {
        match s {
            "auto" => Some(FrontEnginePref::Auto),
            "exact" => Some(FrontEnginePref::Exact),
            "sweep" => Some(FrontEnginePref::Sweep),
            _ => None,
        }
    }
}

/// A complete Pareto-front request: the instance plus front routing,
/// budget and validation controls.
///
/// The instance's own `objective` field is **ignored**: a front is
/// always traced over the (period, latency) criteria pair, with
/// per-point reliability annotations on platforms that can fail.
/// Reliability-*bounded* solving is the single-objective API's job
/// ([`Objective::LatencyUnderReliability`] and friends).
///
/// [`Objective::LatencyUnderReliability`]: repliflow_core::instance::Objective::LatencyUnderReliability
#[derive(Clone, Debug)]
pub struct FrontRequest {
    /// The problem whose front to trace.
    pub instance: ProblemInstance,
    /// Front engine routing preference.
    pub engine: FrontEnginePref,
    /// Resource limits — the front sweep honors `max_front_points` and
    /// `front_time_limit_ms` on top of the per-solve knobs every inner
    /// solve inherits.
    pub budget: Budget,
    /// Re-validate every point's witness mapping through the core cost
    /// model (applied to each inner solve).
    pub validate_witness: bool,
}

impl FrontRequest {
    /// Request with auto routing, default budget and witness validation
    /// enabled.
    pub fn new(instance: ProblemInstance) -> FrontRequest {
        FrontRequest {
            instance,
            engine: FrontEnginePref::Auto,
            budget: Budget::default(),
            validate_witness: true,
        }
    }

    /// Overrides the front engine preference.
    pub fn engine(mut self, engine: FrontEnginePref) -> FrontRequest {
        self.engine = engine;
        self
    }

    /// Overrides the budget.
    pub fn budget(mut self, budget: Budget) -> FrontRequest {
        self.budget = budget;
        self
    }

    /// Enables or disables witness validation.
    pub fn validate_witness(mut self, validate: bool) -> FrontRequest {
        self.validate_witness = validate;
        self
    }

    /// The canonical fingerprint of this front request — the front
    /// cache key.
    ///
    /// Domain-separated from [`SolveRequest::fingerprint`] by a leading
    /// tag string, so a front request and a single solve of the same
    /// instance can never collide in a shared keyspace. Covers the
    /// serialized instance, the front engine preference, every
    /// [`Budget`] knob (including the front-specific pair), the quality
    /// tier, the seed and the validation flag.
    ///
    /// [`SolveRequest::fingerprint`]: repliflow_solver::SolveRequest::fingerprint
    pub fn fingerprint(&self) -> InstanceFingerprint {
        let mut hasher = Fingerprinter::new();
        hasher.write_str("repliflow-multicrit/front/v1");
        hasher.write_serialized(&self.instance);
        hasher.write_tag(match self.engine {
            FrontEnginePref::Auto => 0,
            FrontEnginePref::Exact => 1,
            FrontEnginePref::Sweep => 2,
        });
        let b = &self.budget;
        for knob in [
            b.max_exact_stages as u64,
            b.max_exact_procs as u64,
            b.max_comm_exact_stages as u64,
            b.max_comm_exact_procs as u64,
            b.max_comm_bb_stages as u64,
            b.max_comm_bb_procs as u64,
            b.max_comm_bb_fork_leaves as u64,
            b.bb_node_limit,
            b.bb_time_limit_ms,
            b.local_search_rounds as u64,
            b.hedge_delay_ms,
            b.max_front_points as u64,
            b.front_time_limit_ms,
        ] {
            hasher.write_u64(knob);
        }
        hasher.write_tag(match b.quality {
            Quality::Fast => 0,
            Quality::Balanced => 1,
            Quality::Thorough => 2,
        });
        hasher.write_u64(b.seed);
        hasher.write_tag(self.validate_witness as u8);
        hasher.finish()
    }
}
