//! The report side of the front API: the traced front, point by
//! point, plus its canonical JSON form.

use repliflow_core::mapping::Mapping;
use repliflow_core::rational::Rat;
use repliflow_solver::{Optimality, Provenance};
use std::time::Duration;

/// One point of a (period, latency) Pareto front, backed by a concrete
/// witness mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontPoint {
    /// Period of the witness mapping.
    pub period: Rat,
    /// Latency of the witness mapping.
    pub latency: Rat,
    /// Success probability of the witness mapping, on platforms with
    /// failure probabilities attached (`None` on fail-free platforms —
    /// where it would always be 1).
    pub reliability: Option<Rat>,
    /// The witness mapping achieving (period, latency).
    pub mapping: Mapping,
    /// Strength of this point: `Proven` from the exact enumeration,
    /// `Heuristic` from the sweep.
    pub optimality: Optimality,
}

/// The result of one front solve: the dominance-sorted points and how
/// trustworthy the set is as a whole.
#[derive(Clone, Debug)]
pub struct FrontReport {
    /// The front, sorted by strictly ascending period and strictly
    /// descending latency (every report upholds this, exact or sweep).
    pub points: Vec<FrontPoint>,
    /// Whether the front is **provably complete**: the exact engine's
    /// strict-bound advance was proven infeasible, so no Pareto point
    /// is missing. Sweeps never set this.
    pub complete: bool,
    /// Whether the trace stopped early on [`Budget::max_front_points`]
    /// or `front_time_limit_ms` — points past the cut are missing.
    ///
    /// [`Budget::max_front_points`]: repliflow_solver::Budget::max_front_points
    pub truncated: bool,
    /// `"front-exact"` or `"front-sweep"`.
    pub engine_used: &'static str,
    /// Whether this report was computed for this request or served from
    /// the front cache (serving metadata, excluded from
    /// [`FrontReport::canonical_json`]).
    pub provenance: Provenance,
    /// Wall-clock time spent computing the front (a cached report keeps
    /// its original compute time).
    pub wall_time: Duration,
}

impl FrontReport {
    /// Canonical JSON form of everything **deterministic** in the
    /// report — the full front minus `wall_time` and `provenance`
    /// (serving metadata: a cache hit must be byte-identical to the
    /// fresh computation it stands in for). The daemon's `pareto` verb
    /// embeds these bytes verbatim, so a remote front solve is
    /// byte-identical to an in-process one.
    pub fn canonical_json(&self) -> String {
        use serde_json::Value;
        let points = self
            .points
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("period".to_string(), Value::String(p.period.to_string())),
                    ("latency".to_string(), Value::String(p.latency.to_string())),
                    (
                        "reliability".to_string(),
                        match p.reliability {
                            Some(r) => Value::String(r.to_string()),
                            None => Value::Null,
                        },
                    ),
                    ("mapping".to_string(), Value::String(p.mapping.to_string())),
                    (
                        "optimality".to_string(),
                        Value::String(p.optimality.to_string()),
                    ),
                ])
            })
            .collect();
        let fields = vec![
            (
                "engine".to_string(),
                Value::String(self.engine_used.to_string()),
            ),
            ("complete".to_string(), Value::Bool(self.complete)),
            ("truncated".to_string(), Value::Bool(self.truncated)),
            ("points".to_string(), Value::Array(points)),
        ];
        serde_json::to_string(&Value::Object(fields)).expect("front serialization is infallible")
    }

    /// Whether `points` is strictly dominance-sorted: period strictly
    /// ascending, latency strictly descending. Every front this crate
    /// produces upholds it (pinned by the property tests).
    pub fn is_dominance_sorted(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[0].period < w[1].period && w[0].latency > w[1].latency)
    }
}
