//! # repliflow-multicrit
//!
//! Multi-criteria solving on top of `repliflow-solver`: instead of one
//! [`SolveReport`] for one objective, a [`FrontRequest`] produces a
//! [`FrontReport`] — the **(period, latency) Pareto front** of an
//! instance, each point backed by a concrete, validated witness
//! mapping and annotated with its success probability on platforms
//! that can fail (`repliflow_core::reliability`).
//!
//! Two front engines, routed like the single-objective registry:
//!
//! * **`front-exact`** — ε-constraint enumeration of the *complete*
//!   front: minimize period, then alternate "min latency under this
//!   period" / "min period under *strictly* better latency"
//!   ([`Objective::PeriodUnderLatencyStrict`]) until the strict bound
//!   is proven unattainable. Every inner solve is a proven-optimal
//!   single-objective solve, so every reported point lies on the true
//!   front; a proven-infeasible advance proves the front complete.
//!   Strict bounds (not `bound − ε`) are what make this sound over
//!   exact rationals: there is no smallest ε between two rationals.
//! * **`front-sweep`** — heuristic approximation beyond the exact
//!   capacity: the two single-objective portfolio endpoints plus a
//!   uniform grid of latency bounds in between, dominance-filtered
//!   into a clean front. Never worse than the single-objective
//!   portfolio at the endpoints (those very solves are candidates).
//!
//! [`FrontEnginePref::Auto`] picks `front-exact` whenever the instance
//! fits the solve [`Budget`]'s exact-enumeration guards, `front-sweep`
//! beyond. The [`Budget`] gains two front knobs for this crate:
//! `max_front_points` (point ceiling; an over-long front is reported
//! [`FrontReport::truncated`]) and `front_time_limit_ms` (wall-clock
//! cap for the whole sweep).
//!
//! Determinism contract: a [`FrontReport`]'s
//! [`canonical_json`](FrontReport::canonical_json) is byte-identical
//! across runs, worker counts and serving layers (the daemon's
//! `pareto` verb embeds it verbatim) — inner solves run sequentially
//! through the deterministic solver service, and only
//! deterministically-produced fronts are cached.
//!
//! [`SolveReport`]: repliflow_solver::SolveReport
//! [`Budget`]: repliflow_solver::Budget
//! [`Objective::PeriodUnderLatencyStrict`]: repliflow_core::instance::Objective::PeriodUnderLatencyStrict

#![warn(missing_docs)]

mod report;
mod request;
mod solver;

pub use report::{FrontPoint, FrontReport};
pub use request::{FrontEnginePref, FrontRequest};
pub use solver::FrontSolver;
