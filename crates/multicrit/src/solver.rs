//! The front solver: ε-constraint exact enumeration and heuristic
//! grid sweeps over a shared [`SolverService`], with a front-level
//! cache keyed on [`FrontRequest::fingerprint`].

use crate::report::{FrontPoint, FrontReport};
use crate::request::{FrontEnginePref, FrontRequest};
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_core::mapping::Mapping;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Workflow;
use repliflow_exact::{Frontier, Solution};
use repliflow_solver::{
    Budget, CacheStats, EnginePref, Optimality, Provenance, ShardedLru, SolveError, SolveReport,
    SolveRequest, SolverService,
};
use repliflow_sync::sync::Arc;
use std::time::{Duration, Instant};

/// Default front-cache capacity (fronts are small but each holds many
/// mappings, so the default is modest next to the solve cache).
pub const DEFAULT_FRONT_CACHE_CAPACITY: usize = 128;

/// Default front-cache shard count (same lock-striping rationale as
/// the solve cache, at the smaller capacity's scale).
pub const DEFAULT_FRONT_CACHE_SHARDS: usize = 8;

/// Traces (period, latency) Pareto fronts through a shared
/// [`SolverService`].
///
/// Inner solves are ordinary [`SolveRequest`]s on the service — they
/// hit the solve cache, get witness-validated by the registry, and
/// stay deterministic — so a front solve is exactly a scripted
/// sequence of single-objective solves plus dominance bookkeeping.
/// Completed fronts are additionally cached here as whole
/// [`FrontReport`]s, keyed on [`FrontRequest::fingerprint`], behind
/// the same loom-modelchecked [`ShardedLru`] the solve cache uses.
///
/// # Caching rules
///
/// A front is written back only when it was **deterministically
/// produced**: no inner solve carried an incomplete (time/node-capped)
/// search, and the front was not cut short by `front_time_limit_ms`.
/// A point-count truncation (`max_front_points`) *is* deterministic
/// and cacheable.
pub struct FrontSolver {
    service: Arc<SolverService>,
    cache: Option<ShardedLru<FrontReport>>,
}

impl std::fmt::Debug for FrontSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontSolver")
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

impl FrontSolver {
    /// A front solver over `service` with the default front cache.
    pub fn new(service: Arc<SolverService>) -> FrontSolver {
        FrontSolver {
            service,
            cache: Some(ShardedLru::with_shards(
                DEFAULT_FRONT_CACHE_CAPACITY,
                DEFAULT_FRONT_CACHE_SHARDS,
            )),
        }
    }

    /// A front solver with an explicit front-cache geometry.
    pub fn with_cache(service: Arc<SolverService>, capacity: usize, shards: usize) -> FrontSolver {
        FrontSolver {
            service,
            cache: Some(ShardedLru::with_shards(capacity, shards)),
        }
    }

    /// A front solver with no front cache (inner solves still hit the
    /// service's solve cache).
    pub fn without_cache(service: Arc<SolverService>) -> FrontSolver {
        FrontSolver {
            service,
            cache: None,
        }
    }

    /// The service inner solves run on.
    pub fn service(&self) -> &SolverService {
        &self.service
    }

    /// Front-cache counters (`None` when built [`without_cache`]).
    ///
    /// [`without_cache`]: FrontSolver::without_cache
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Drops every cached front (counters are kept).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// Traces the front for `request`: front cache, then the routed
    /// front engine (see the crate docs for the routing rule).
    pub fn solve_front(&self, request: &FrontRequest) -> Result<Arc<FrontReport>, SolveError> {
        let fingerprint = request.fingerprint();
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(fingerprint) {
                return Ok(hit);
            }
        }
        let start = Instant::now();
        let exact = match request.engine {
            FrontEnginePref::Exact => true,
            FrontEnginePref::Sweep => false,
            FrontEnginePref::Auto => Self::exact_capable(&request.instance, &request.budget),
        };
        let (mut report, cacheable) = if exact {
            self.exact_front(request, start)?
        } else {
            self.sweep_front(request, start)?
        };
        report.wall_time = start.elapsed();
        debug_assert!(report.is_dominance_sorted());
        let report = Arc::new(report);
        if let Some(cache) = &self.cache {
            if cacheable {
                // Tag the stored entry once at insertion so every later
                // hit reads `Cached` without mutating shared state —
                // the same discipline as the solve cache.
                let mut entry = (*report).clone();
                entry.provenance = Provenance::Cached;
                cache.insert(fingerprint, Arc::new(entry));
            }
        }
        Ok(report)
    }

    /// Whether `Auto` routes to the exact enumeration: within the
    /// budget's exact guard for the instance's cost model **and**
    /// within the exhaustive solvers' hard representation caps.
    fn exact_capable(instance: &ProblemInstance, budget: &Budget) -> bool {
        let n_stages = instance.workflow.n_stages();
        let n_procs = instance.platform.n_procs();
        let leaves = match &instance.workflow {
            Workflow::Pipeline(_) => 0,
            Workflow::Fork(f) => f.n_leaves(),
            Workflow::ForkJoin(fj) => fj.n_leaves(),
        };
        let representable = n_procs <= repliflow_exact::pipeline::MAX_PROCS
            && leaves <= repliflow_exact::fork::MAX_LEAVES;
        let within_budget = match &instance.cost_model {
            CostModel::Simplified => budget.allows_exact(n_stages, n_procs),
            CostModel::WithComm { .. } => budget.allows_comm_exact(n_stages, n_procs),
        };
        representable && within_budget
    }

    /// One single-objective inner solve with the front instance's
    /// shape/platform/cost model and a substituted objective.
    fn inner_solve(
        &self,
        request: &FrontRequest,
        objective: Objective,
        pref: EnginePref,
    ) -> Result<Arc<SolveReport>, SolveError> {
        let instance = ProblemInstance {
            objective,
            ..request.instance.clone()
        };
        self.service.solve(
            &SolveRequest::new(instance)
                .engine(pref)
                .budget(request.budget)
                .validate_witness(request.validate_witness),
        )
    }

    /// Whether the front's wall-clock budget is spent.
    fn time_exhausted(start: Instant, budget: &Budget) -> bool {
        budget.front_time_limit_ms > 0
            && start.elapsed() >= Duration::from_millis(budget.front_time_limit_ms)
    }

    /// A front point for a witness, annotated with its reliability on
    /// platforms that can fail.
    fn point(
        instance: &ProblemInstance,
        mapping: Mapping,
        period: Rat,
        latency: Rat,
        optimality: Optimality,
    ) -> FrontPoint {
        let reliability = instance
            .platform
            .can_fail()
            .then(|| instance.reliability(&mapping));
        FrontPoint {
            period,
            latency,
            reliability,
            mapping,
            optimality,
        }
    }

    /// The exact ε-constraint enumeration (see the crate docs):
    /// alternate "min latency under period ≤ bound" (a front point)
    /// and "min period under latency **strictly** under the last
    /// point's" (the advance). A proven-infeasible advance proves the
    /// front complete. Returns the report plus its cacheability.
    fn exact_front(
        &self,
        request: &FrontRequest,
        start: Instant,
    ) -> Result<(FrontReport, bool), SolveError> {
        let budget = &request.budget;
        let instance = &request.instance;
        let mut points: Vec<FrontPoint> = Vec::new();
        let mut complete = false;
        let mut truncated = false;
        let mut time_cut = false;

        // The left endpoint: the minimum period (always attainable).
        let base = self.inner_solve(request, Objective::Period, EnginePref::Exact)?;
        let mut period_bound = base
            .period
            .expect("period minimization always yields a witness");
        loop {
            if points.len() >= budget.max_front_points {
                truncated = true;
                break;
            }
            if Self::time_exhausted(start, budget) {
                truncated = true;
                time_cut = true;
                break;
            }
            let r = self.inner_solve(
                request,
                Objective::LatencyUnderPeriod(period_bound),
                EnginePref::Exact,
            )?;
            let (Some(mapping), Some(period), Some(latency)) =
                (r.mapping.clone(), r.period, r.latency)
            else {
                // `period_bound` is a witnessed period, so this solve
                // cannot be infeasible; treat a missing witness as the
                // end of what we can prove.
                break;
            };
            points.push(Self::point(
                instance,
                mapping,
                period,
                latency,
                Optimality::Proven,
            ));
            // Advance: the next front point must be strictly better in
            // latency. Strict bounds (not `bound − ε`) are what makes
            // this sound over exact rationals.
            let last_latency = points.last().expect("just pushed").latency;
            let advance = self.inner_solve(
                request,
                Objective::PeriodUnderLatencyStrict(last_latency),
                EnginePref::Exact,
            )?;
            match (advance.optimality, advance.period) {
                // The exact engine *proved* no mapping beats the last
                // latency: the front is complete.
                (Optimality::Infeasible, _) | (_, None) => {
                    complete = true;
                    break;
                }
                (_, Some(next_period)) => period_bound = next_period,
            }
        }
        Ok((
            FrontReport {
                points,
                complete,
                truncated,
                engine_used: "front-exact",
                provenance: Provenance::Computed,
                wall_time: Duration::ZERO,
            },
            // A time cut depends on the machine's speed; a point-count
            // cut (and of course completion) is deterministic.
            !time_cut,
        ))
    }

    /// The heuristic grid sweep: both single-objective portfolio
    /// endpoints plus `max_front_points − 2` interior latency bounds,
    /// dominance-filtered into a clean front. Every point reports
    /// [`Optimality::Heuristic`] — even when an endpoint's inner solve
    /// happened to be proven, the *front* is only as strong as its
    /// weakest member.
    fn sweep_front(
        &self,
        request: &FrontRequest,
        start: Instant,
    ) -> Result<(FrontReport, bool), SolveError> {
        let budget = &request.budget;
        let instance = &request.instance;
        let mut cacheable = true;
        let mut time_cut = false;
        let mut frontier = Frontier::new();

        let admit = |r: &SolveReport, frontier: &mut Frontier, cacheable: &mut bool| {
            // An incomplete (node/time-capped) inner search is load-
            // dependent; its point still counts, but the front must
            // not be frozen into the cache.
            if let Some(s) = &r.search {
                *cacheable &= s.completed;
            }
            if r.optimality == Optimality::Infeasible {
                return; // no witness, or a bound-violating best-effort
            }
            if let (Some(mapping), Some(period), Some(latency)) =
                (r.mapping.clone(), r.period, r.latency)
            {
                frontier.insert(Solution {
                    mapping,
                    period,
                    latency,
                });
            }
        };

        // The two portfolio endpoints anchor the sweep: the front is
        // never worse than the single-objective solves.
        let min_period = self.inner_solve(request, Objective::Period, EnginePref::Auto)?;
        admit(&min_period, &mut frontier, &mut cacheable);
        let min_latency = self.inner_solve(request, Objective::Latency, EnginePref::Auto)?;
        admit(&min_latency, &mut frontier, &mut cacheable);

        // Interior: uniform latency bounds strictly between the
        // endpoints' latencies, minimizing period under each.
        let interior = budget.max_front_points.saturating_sub(2);
        if let (Some(high), Some(low)) = (min_period.latency, min_latency.latency) {
            if low < high && interior > 0 {
                let span = high - low;
                for i in 1..=interior {
                    if Self::time_exhausted(start, budget) {
                        time_cut = true;
                        break;
                    }
                    let bound = low + span * Rat::new(i as i128, interior as i128 + 1);
                    let r = self.inner_solve(
                        request,
                        Objective::PeriodUnderLatency(bound),
                        EnginePref::Auto,
                    )?;
                    admit(&r, &mut frontier, &mut cacheable);
                }
            }
        }

        let mut points: Vec<FrontPoint> = frontier
            .points()
            .iter()
            .map(|sol| {
                Self::point(
                    instance,
                    sol.mapping.clone(),
                    sol.period,
                    sol.latency,
                    Optimality::Heuristic,
                )
            })
            .collect();
        let over_cap = points.len() > budget.max_front_points;
        points.truncate(budget.max_front_points);
        Ok((
            FrontReport {
                points,
                complete: false,
                truncated: over_cap || time_cut,
                engine_used: "front-sweep",
                provenance: Provenance::Computed,
                wall_time: Duration::ZERO,
            },
            cacheable && !time_cut,
        ))
    }
}
