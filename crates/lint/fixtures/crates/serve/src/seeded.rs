//! Seeded lint violations. This file is **not** compiled — it lives in
//! a `fixtures/` tree that cargo never sees and the workspace lint run
//! skips. CI lints it with `--root crates/lint/fixtures` and asserts
//! the run FAILS: if repliflow-lint ever stops tripping on these, the
//! tripwire itself is broken.

use std::sync::Mutex; // seeded: no-std-sync
use std::thread; // seeded: no-std-sync

fn serve_one(queue: &Mutex<Vec<u32>>) -> u32 {
    // seeded: no-panic-path (unwrap + expect on a serving path)
    let mut q = queue.lock().unwrap();
    q.pop().expect("queue is never empty")
}

fn shed_everything() {
    // seeded: no-panic-path (panic! on a serving path)
    panic!("refusing to serve");
}

fn count(c: &std::sync::atomic::AtomicU64) -> u64 {
    // seeded: relaxed-invariant (no invariant marker in range)
    c.load(std::sync::atomic::Ordering::Relaxed)
}

fn allow_without_reason(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(no-panic-path)
}
