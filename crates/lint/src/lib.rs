//! `repliflow-lint`: the workspace's concurrency-hygiene static
//! analyzer.
//!
//! PR 9 introduced the [`repliflow-sync`] facade so every concurrency
//! primitive in the workspace can be swapped for a loom-style shim
//! under `--cfg loom` and model-checked. A facade only helps while it
//! is *actually used* — one stray `std::sync::Mutex` re-opens the gap
//! between what the model checker explores and what production runs.
//! This crate is the tripwire: a fast, dependency-free **lexical**
//! pass (comments and string literals are stripped by a real scanner,
//! not a regex) that hard-fails CI on three rules:
//!
//! | rule | meaning |
//! |------|---------|
//! | `no-std-sync` | `std::sync` / `std::thread` are forbidden outside `crates/sync` (and `vendor/`). Go through `repliflow_sync::{sync, thread}` so loom models see the op. |
//! | `no-panic-path` | `.unwrap()` / `.expect(` / `panic!` are forbidden on serving paths (`crates/serve/src/**`, `crates/solver/src/{service,pool,cache}.rs`) outside `#[cfg(test)]`. A panicking daemon thread silently sheds its connection. |
//! | `relaxed-invariant` | every `Ordering::Relaxed` must carry a `relaxed:` invariant comment on the same line or within the [`RELAXED_WINDOW`] preceding lines, stating *why* relaxed ordering is sound there. |
//!
//! Individual sites opt out with an **allowlist trailer** on the same
//! or the preceding line — a reason is mandatory:
//!
//! ```text
//! .expect("worker thread spawns") // lint: allow(no-panic-path) -- zero workers serve nothing; dying at startup is by design
//! ```
//!
//! The binary (`cargo run -p repliflow-lint`) walks a source tree,
//! prints violations as `file:line: [rule] message`, and exits
//! non-zero when any are found. CI runs it twice: once over the
//! workspace (must pass) and once over `crates/lint/fixtures`, a
//! seeded-violation tree (must *fail* — proving the tripwire trips).
//!
//! [`repliflow-sync`]: ../repliflow_sync/index.html

use std::path::{Path, PathBuf};

/// `std::sync`/`std::thread` outside the facade crate.
pub const RULE_NO_STD_SYNC: &str = "no-std-sync";
/// Panicking calls on serving paths.
pub const RULE_NO_PANIC_PATH: &str = "no-panic-path";
/// `Ordering::Relaxed` without an invariant comment.
pub const RULE_RELAXED_INVARIANT: &str = "relaxed-invariant";

/// How many lines above an `Ordering::Relaxed` use a `relaxed:`
/// comment may sit (consecutive annotated uses share one comment).
pub const RELAXED_WINDOW: usize = 5;

/// One finding. Ordering: by file, then line, then rule.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the linted root, with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// One of the `RULE_*` constants.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A source line split by the scanner: executable text on one side,
/// comment text on the other (string/char literal *contents* appear in
/// neither — `"panic!"` cannot trip a rule, and a rule cannot be
/// silenced from inside a string).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScannedLine {
    /// Code with comments and literal contents removed.
    pub code: String,
    /// Concatenated comment text of the line.
    pub comment: String,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Number of `#` marks delimiting the raw string.
    RawStr(u32),
}

/// Splits Rust source into per-line code/comment halves. This is a
/// lexical scanner, not a parser: it tracks line and block comments
/// (nested), plain/raw/byte string literals, character literals, and
/// distinguishes lifetimes (`'a`) from char literals (`'a'`).
pub fn scan(source: &str) -> Vec<ScannedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = ScannedLine::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; strings and block
            // comments continue across it.
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' || (c == 'b' && next == Some('r')) {
                    // Possible raw string: r"..", r#".."#, br#".."#…
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime. `'\x'`-style and `'a'`
                    // are literals; anything else ('static, 'a>) is a
                    // lifetime and passes through untouched.
                    if next == Some('\\') {
                        let mut j = i + 2; // first escape char
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push_str("' '");
                        i = (j + 1).min(chars.len());
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("' '");
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (incl. \" and \\)
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closes = (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        cur.code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Marks every line that belongs to a `#[cfg(test)]` item (the
/// attribute line, the item header, and — for brace-delimited items —
/// the whole body, tracked by brace depth on comment-stripped code).
pub fn test_mask(lines: &[ScannedLine]) -> Vec<bool> {
    fn brace_delta(code: &str) -> i64 {
        let mut d = 0;
        for c in code.chars() {
            match c {
                '{' => d += 1,
                '}' => d -= 1,
                _ => {}
            }
        }
        d
    }

    let mut mask = vec![false; lines.len()];
    let mut pending = false; // saw #[cfg(test)], waiting for the item
    let mut depth: i64 = 0;
    let mut in_item = false;
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if in_item {
            mask[i] = true;
            depth += brace_delta(code);
            if depth <= 0 {
                in_item = false;
            }
            continue;
        }
        if !pending && (code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test")) {
            mask[i] = true;
            pending = true;
            // Attribute and item on one line: fall through to the
            // pending logic below against this same line's braces.
            if !code.contains('{') && !code.contains(';') {
                continue;
            }
        }
        if pending {
            mask[i] = true;
            if code.contains('{') {
                pending = false;
                depth = brace_delta(code);
                if depth > 0 {
                    in_item = true;
                }
            } else if code.contains(';') {
                // `#[cfg(test)] use …;` / `mod tests;` — single line.
                pending = false;
            }
        }
    }
    mask
}

/// Whether the violation of `rule` at `line_idx` is excused by a
/// `// lint: allow(<rule>) -- reason` trailer on the same or the
/// preceding line. Returns `Err(message)` for an allow without a
/// reason — an unexplained exemption is itself a violation.
fn allowed(lines: &[ScannedLine], line_idx: usize, rule: &str) -> Result<bool, String> {
    let marker = format!("lint: allow({rule})");
    for idx in [Some(line_idx), line_idx.checked_sub(1)]
        .into_iter()
        .flatten()
    {
        let comment = &lines[idx].comment;
        if let Some(pos) = comment.find(&marker) {
            let rest = &comment[pos + marker.len()..];
            let reason = rest.trim_start().strip_prefix("--").map(str::trim);
            return match reason {
                Some(r) if !r.is_empty() => Ok(true),
                _ => Err(format!(
                    "`lint: allow({rule})` requires a reason: \
                     `// lint: allow({rule}) -- <why this site is exempt>`"
                )),
            };
        }
    }
    Ok(false)
}

/// Whether `rel_path` (workspace-relative, `/`-separated) is on a
/// serving path for [`RULE_NO_PANIC_PATH`].
pub fn is_serving_path(rel_path: &str) -> bool {
    rel_path.starts_with("crates/serve/src/")
        || matches!(
            rel_path,
            "crates/solver/src/service.rs"
                | "crates/solver/src/pool.rs"
                | "crates/solver/src/cache.rs"
        )
}

/// Whether `rel_path` is exempt from [`RULE_NO_STD_SYNC`] — the facade
/// itself, and vendored crates (which shim or *are* std).
pub fn is_sync_exempt(rel_path: &str) -> bool {
    rel_path.starts_with("crates/sync/") || rel_path.starts_with("vendor/")
}

/// Lints one file's source text. `rel_path` selects which rules apply
/// (see [`is_serving_path`] / [`is_sync_exempt`]).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let lines = scan(source);
    let tests = test_mask(&lines);
    let mut out = Vec::new();
    let mut push = |line_idx: usize, rule: &'static str, message: String| match allowed(
        &lines, line_idx, rule,
    ) {
        Ok(true) => {}
        Ok(false) => out.push(Violation {
            file: rel_path.to_string(),
            line: line_idx + 1,
            rule,
            message,
        }),
        Err(bad_allow) => out.push(Violation {
            file: rel_path.to_string(),
            line: line_idx + 1,
            rule,
            message: bad_allow,
        }),
    };

    let serving = is_serving_path(rel_path);
    let sync_exempt = is_sync_exempt(rel_path);
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if !sync_exempt && (code.contains("std::sync") || code.contains("std::thread")) {
            push(
                i,
                RULE_NO_STD_SYNC,
                "use `repliflow_sync::{sync, thread}` instead of `std` so loom models \
                 see this operation"
                    .to_string(),
            );
        }
        if tests[i] {
            continue; // panic/relaxed rules don't apply inside #[cfg(test)]
        }
        if serving {
            for token in [".unwrap()", ".expect(", "panic!"] {
                if code.contains(token) {
                    push(
                        i,
                        RULE_NO_PANIC_PATH,
                        format!(
                            "`{token}` on a serving path: recover (e.g. \
                             `unwrap_or_else(PoisonError::into_inner)`, degrade to a miss, \
                             or shed the request) instead of panicking the daemon"
                        ),
                    );
                }
            }
        }
        if code.contains("Ordering::Relaxed") {
            let lo = i.saturating_sub(RELAXED_WINDOW);
            let annotated = lines[lo..=i].iter().any(|l| l.comment.contains("relaxed:"));
            if !annotated {
                push(
                    i,
                    RULE_RELAXED_INVARIANT,
                    format!(
                        "`Ordering::Relaxed` without a `relaxed:` invariant comment within \
                         {RELAXED_WINDOW} lines: state why unordered access is sound here"
                    ),
                );
            }
        }
    }
    out
}

/// Recursively lints every `.rs` file under `root`, returning sorted
/// violations and the number of files scanned. `vendor/`, `target/`,
/// `.git/`, and `fixtures/` subtrees are skipped (a root that itself
/// points *into* a fixtures tree is scanned normally — that is how CI
/// checks the seeded violations still trip).
pub fn lint_tree(root: &Path) -> std::io::Result<(Vec<Violation>, usize)> {
    const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

    fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if SKIP_DIRS.contains(&name) {
                    continue;
                }
                walk(&path, files)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
        Ok(())
    }

    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(path)?;
        violations.extend(lint_source(&rel, &source));
    }
    violations.sort();
    Ok((violations, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn scanner_strips_comments_and_strings() {
        let lines = scan(concat!(
            "let a = \"std::sync inside a string\"; // std::thread in a comment\n",
            "/* std::sync in a block\n",
            "   still the block */ let b = 1;\n",
        ));
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].code.contains("std::sync"));
        assert!(lines[0].comment.contains("std::thread"));
        assert!(lines[1].code.is_empty());
        assert!(lines[1].comment.contains("std::sync in a block"));
        assert!(lines[2].code.contains("let b = 1;"));
    }

    #[test]
    fn scanner_handles_raw_strings_chars_and_lifetimes() {
        let lines = scan(concat!(
            "let r = r#\"panic!(\"inside raw\")\"#;\n",
            "let c = '\\n'; let q = '\"'; fn f<'a>(x: &'a str) {}\n",
            "let s = \"escaped \\\" quote panic! still string\";\n",
        ));
        assert!(!lines[0].code.contains("panic!"));
        // the '"' char literal must not open a string state
        assert!(lines[1].code.contains("fn f<'a>"));
        assert!(!lines[2].code.contains("panic!"));
    }

    #[test]
    fn no_std_sync_fires_outside_the_facade() {
        let violations = lint_source("crates/solver/src/x.rs", "use std::sync::Mutex;\n");
        assert_eq!(rules(&violations), [RULE_NO_STD_SYNC]);
        assert!(lint_source("crates/sync/src/lib.rs", "pub use std::sync::*;\n").is_empty());
        assert!(lint_source("vendor/loom/src/rt.rs", "use std::thread;\n").is_empty());
        // string/comment occurrences never fire
        assert!(lint_source(
            "crates/core/src/x.rs",
            "// std::sync is forbidden\nlet s = \"std::thread\";\n"
        )
        .is_empty());
    }

    #[test]
    fn no_panic_path_fires_only_on_serving_paths() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"no\"); }\n";
        assert_eq!(
            rules(&lint_source("crates/serve/src/server.rs", src)),
            [RULE_NO_PANIC_PATH; 3]
        );
        assert_eq!(
            rules(&lint_source("crates/solver/src/pool.rs", src)),
            [RULE_NO_PANIC_PATH; 3]
        );
        // non-serving files may unwrap (engines legitimately assert)
        assert!(lint_source("crates/exact/src/comm_bb.rs", src).is_empty());
        // unwrap_or_else / expect_err are not panicking calls
        assert!(lint_source(
            "crates/serve/src/server.rs",
            "x.unwrap_or_else(PoisonError::into_inner);\n"
        )
        .is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_panic_rule() {
        let src = concat!(
            "fn serve() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { x.unwrap(); panic!(\"fine in tests\"); }\n",
            "}\n",
        );
        assert!(lint_source("crates/serve/src/server.rs", src).is_empty());
        // …but a single-line #[cfg(test)] use does not exempt the rest
        let src2 = "#[cfg(test)]\nuse helpers::*;\nfn f() { x.unwrap(); }\n";
        assert_eq!(
            rules(&lint_source("crates/serve/src/server.rs", src2)),
            [RULE_NO_PANIC_PATH]
        );
    }

    #[test]
    fn relaxed_requires_a_nearby_invariant_comment() {
        let bare = "counter.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(
            rules(&lint_source("crates/core/src/x.rs", bare)),
            [RULE_RELAXED_INVARIANT]
        );
        let annotated = concat!(
            "// relaxed: stat counter only — nothing synchronizes on it.\n",
            "counter.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(lint_source("crates/core/src/x.rs", annotated).is_empty());
        // one comment covers a short run of consecutive uses
        let run = concat!(
            "// relaxed: independent stat counters, advisory snapshot.\n",
            "a.load(Ordering::Relaxed);\n",
            "b.load(Ordering::Relaxed);\n",
            "c.load(Ordering::Relaxed);\n",
        );
        assert!(lint_source("crates/core/src/x.rs", run).is_empty());
        // …but not an arbitrarily distant one
        let far = concat!(
            "// relaxed: too far away\n",
            "\n\n\n\n\n\n",
            "a.load(Ordering::Relaxed);\n",
        );
        assert_eq!(
            rules(&lint_source("crates/core/src/x.rs", far)),
            [RULE_RELAXED_INVARIANT]
        );
    }

    #[test]
    fn allow_trailer_with_reason_silences_a_rule() {
        let src = "spawn().expect(\"spawns\") // lint: allow(no-panic-path) -- fatal at startup by design\n";
        assert!(lint_source("crates/serve/src/server.rs", src).is_empty());
        // the preceding line works too
        let above = concat!(
            "// lint: allow(no-std-sync) -- facade bootstrap documented in CONCURRENCY.md\n",
            "use std::sync::Mutex;\n",
        );
        assert!(lint_source("crates/core/src/x.rs", above).is_empty());
        // an allow for a *different* rule does not silence this one
        let wrong = "use std::sync::Mutex; // lint: allow(no-panic-path) -- wrong rule\n";
        assert_eq!(
            rules(&lint_source("crates/core/src/x.rs", wrong)),
            [RULE_NO_STD_SYNC]
        );
    }

    #[test]
    fn allow_without_reason_is_itself_a_violation() {
        let src = "x.unwrap(); // lint: allow(no-panic-path)\n";
        let violations = lint_source("crates/serve/src/server.rs", src);
        assert_eq!(rules(&violations), [RULE_NO_PANIC_PATH]);
        assert!(violations[0].message.contains("requires a reason"));
    }

    #[test]
    fn violations_render_as_file_line_rule() {
        let v = &lint_source("crates/serve/src/x.rs", "fn f() { panic!(\"boom\") }\n")[0];
        assert_eq!(
            v.to_string(),
            format!("crates/serve/src/x.rs:1: [no-panic-path] {}", v.message)
        );
    }

    #[test]
    fn the_workspace_itself_is_clean_and_the_fixture_trips() {
        // CARGO_MANIFEST_DIR = crates/lint → workspace root is ../..
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let (violations, scanned) = lint_tree(&root).expect("workspace scan");
        assert!(
            violations.is_empty(),
            "workspace must lint clean, found:\n{}",
            violations
                .iter()
                .map(Violation::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(scanned > 40, "workspace scan saw only {scanned} files");

        let (seeded, _) = lint_tree(&root.join("crates/lint/fixtures")).expect("fixture scan");
        let seen: std::collections::BTreeSet<_> = seeded.iter().map(|v| v.rule).collect();
        assert!(
            seen.contains(RULE_NO_STD_SYNC)
                && seen.contains(RULE_NO_PANIC_PATH)
                && seen.contains(RULE_RELAXED_INVARIANT),
            "seeded fixture must trip every rule, tripped: {seen:?}"
        );
    }
}
