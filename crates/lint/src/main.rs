//! CLI for [`repliflow_lint`]: `repliflow-lint [--root <dir>]`.
//!
//! Walks `<dir>` (default: the current directory), lints every `.rs`
//! file outside `vendor/`/`target/`/`fixtures/`, prints violations as
//! `file:line: [rule] message`, and exits non-zero when any exist —
//! the hard-failing CI step. Point `--root` at
//! `crates/lint/fixtures` to verify the seeded violations still trip
//! (CI inverts that exit code).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: repliflow-lint [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    match repliflow_lint::lint_tree(&root) {
        Ok((violations, scanned)) => {
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("repliflow-lint: {scanned} files clean");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "repliflow-lint: {} violation(s) in {scanned} files",
                    violations.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: cannot lint {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
