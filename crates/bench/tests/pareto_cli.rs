//! End-to-end snapshot tests for the `pareto` CLI binary.
//!
//! Every `examples/instances/multicrit_*.json` golden instance has a
//! `.front.expected` snapshot of the human-readable front report; the
//! binary's output must match it byte-for-byte. Regenerate after an
//! intentional change with:
//!
//! ```text
//! for f in examples/instances/multicrit_*.json; do
//!   cargo run --release -p repliflow-bench --bin pareto -- "$f" \
//!     > "${f%.json}.front.expected"
//! done
//! ```
//!
//! `--json` output is additionally pinned against an **in-process**
//! [`FrontSolver`] solve of the same instance: the CLI prints
//! [`FrontReport::canonical_json`] verbatim, so the two must be
//! byte-identical.
//!
//! [`FrontSolver`]: repliflow_multicrit::FrontSolver
//! [`FrontReport::canonical_json`]: repliflow_multicrit::FrontReport::canonical_json

use repliflow_core::instance::ProblemInstance;
use repliflow_multicrit::{FrontRequest, FrontSolver};
use repliflow_solver::{Budget, SolverService};
use repliflow_sync::sync::Arc;
use std::path::PathBuf;
use std::process::Command;

fn instances_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("examples")
        .join("instances")
}

/// The multicrit golden instances, sorted for deterministic order.
fn multicrit_instances() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(instances_dir())
        .expect("examples/instances must exist")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|e| e == "json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("multicrit_"))
        })
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 2,
        "expected at least two multicrit golden instances, found {}",
        paths.len()
    );
    paths
}

fn run_pareto(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pareto"))
        .args(args)
        .output()
        .expect("pareto binary must run")
}

#[test]
fn human_front_reports_match_their_snapshots() {
    for path in multicrit_instances() {
        let expected_path = path.with_extension("").with_extension("front.expected");
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing front snapshot {} — regenerate per the module docs",
                expected_path.display()
            )
        });
        let out = run_pareto(&[path.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "pareto failed on {}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            out.stderr.is_empty(),
            "pareto wrote to stderr on {}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            expected,
            "front snapshot drift for {} — regenerate per the module docs if intentional",
            path.display()
        );
    }
}

#[test]
fn json_output_is_byte_identical_to_an_in_process_front_solve() {
    let solver = FrontSolver::new(Arc::new(SolverService::builder().build()));
    for path in multicrit_instances() {
        let json = std::fs::read_to_string(&path).expect("golden instance must read");
        let instance: ProblemInstance =
            serde_json::from_str_streaming(&json).expect("golden instance must parse");
        let report = solver
            .solve_front(&FrontRequest::new(instance))
            .expect("front solve must succeed on golden instances");
        let out = run_pareto(&["--json", path.to_str().unwrap()]);
        assert!(out.status.success());
        let cli_json = String::from_utf8(out.stdout).expect("CLI JSON is UTF-8");
        assert_eq!(
            cli_json.trim_end(),
            report.canonical_json(),
            "CLI --json must print the canonical front verbatim for {}",
            path.display()
        );
    }
}

#[test]
fn csv_output_has_a_header_and_one_row_per_point() {
    let path = instances_dir().join("multicrit_rel_latency.json");
    let out = run_pareto(&["--csv", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("CSV is UTF-8");
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("index,period,latency,reliability,optimality"),
        "CSV header must be stable"
    );
    let rows: Vec<&str> = lines.collect();
    assert!(!rows.is_empty(), "front must have at least one point");
    for (i, row) in rows.iter().enumerate() {
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells.len(), 5, "CSV rows carry exactly five cells: {row}");
        assert_eq!(cells[0], (i + 1).to_string(), "indices are 1-based");
        assert!(
            !cells[3].is_empty(),
            "failing platforms annotate reliability on every point"
        );
    }
}

#[test]
fn points_flag_truncates_the_front_deterministically() {
    let path = instances_dir().join("multicrit_pipeline_front.json");
    let full = run_pareto(&["--csv", path.to_str().unwrap()]);
    let capped = run_pareto(&["--csv", "--points", "1", path.to_str().unwrap()]);
    assert!(full.status.success() && capped.status.success());
    let full_rows: Vec<String> = String::from_utf8(full.stdout)
        .unwrap()
        .lines()
        .skip(1)
        .map(str::to_string)
        .collect();
    let capped_rows: Vec<String> = String::from_utf8(capped.stdout)
        .unwrap()
        .lines()
        .skip(1)
        .map(str::to_string)
        .collect();
    assert_eq!(capped_rows.len(), 1, "--points 1 keeps exactly one point");
    assert_eq!(
        capped_rows[0], full_rows[0],
        "truncation keeps the prefix of the full front"
    );

    // The in-process truncation contract is the same: the capped budget
    // yields the full front's first point.
    let json = std::fs::read_to_string(&path).unwrap();
    let instance: ProblemInstance = serde_json::from_str_streaming(&json).unwrap();
    let solver = FrontSolver::new(Arc::new(SolverService::builder().build()));
    let capped = solver
        .solve_front(&FrontRequest::new(instance).budget(Budget::default().max_front_points(1)))
        .expect("capped front solve must succeed");
    assert_eq!(capped.points.len(), 1);
    assert!(capped.truncated);
}

#[test]
fn objective_axis_flags_accept_only_the_period_latency_pair() {
    let path = instances_dir().join("multicrit_pipeline_front.json");
    let ok = run_pareto(&[
        "--objective-x",
        "period",
        "--objective-y",
        "latency",
        path.to_str().unwrap(),
    ]);
    assert!(ok.status.success(), "the canonical axis pair is accepted");

    for args in [["--objective-x", "latency"], ["--objective-y", "period"]] {
        let bad = run_pareto(&[args[0], args[1], path.to_str().unwrap()]);
        assert!(
            !bad.status.success(),
            "swapped axes must be rejected: {args:?}"
        );
        let stderr = String::from_utf8_lossy(&bad.stderr);
        assert!(
            stderr.contains("period × latency"),
            "the rejection names the supported pair: {stderr}"
        );
    }
}
