//! CLI round-trip snapshots: every golden instance under
//! `examples/instances/` is fed through the `solve` binary (Table 1
//! auto-dispatch) and its report is compared against the committed
//! `.expected` snapshot. Guards both the JSON wire format and the
//! registry's routing/optimality decisions.
//!
//! To regenerate after an intentional output change:
//! `for f in examples/instances/*.json; do
//!    cargo run --release -p repliflow-bench --bin solve -- "$f" \
//!      > "${f%.json}.expected"; done`

use std::path::{Path, PathBuf};
use std::process::Command;

fn instances_dir() -> PathBuf {
    // crates/bench -> workspace root -> examples/instances
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/instances")
        .canonicalize()
        .expect("examples/instances exists")
}

fn golden_instances() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(instances_dir())
        .expect("instances directory is readable")
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "expected a golden instance per interesting Table 1 cell, found {}",
        paths.len()
    );
    paths
}

#[test]
fn every_golden_instance_snapshot_matches() {
    for json in golden_instances() {
        let expected_path = json.with_extension("expected");
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!("missing snapshot {expected_path:?}; see module docs to regenerate")
        });
        let output = Command::new(env!("CARGO_BIN_EXE_solve"))
            .arg(&json)
            .output()
            .expect("solve binary runs");
        assert!(
            output.status.success(),
            "solve failed on {json:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8(output.stdout).expect("report is UTF-8");
        assert_eq!(
            stdout, expected,
            "snapshot mismatch for {json:?} (regenerate if intentional)"
        );
    }
}

#[test]
fn batch_mode_covers_all_golden_instances() {
    let paths = golden_instances();
    let output = Command::new(env!("CARGO_BIN_EXE_solve"))
        .args(&paths)
        .output()
        .expect("solve binary runs");
    let stderr = String::from_utf8(output.stderr).unwrap();
    // no cell may fall through the registry (engine errors go to stderr)
    assert!(output.status.success(), "batch solve failed: {stderr}");
    assert!(stderr.is_empty(), "batch solve emitted errors: {stderr}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    for path in &paths {
        let header = format!("== {} ==", path.display());
        assert!(stdout.contains(&header), "batch output misses {header}");
    }
}

#[test]
fn engine_override_is_honored() {
    let instance = instances_dir().join("hom_pipeline_period.json");
    let output = Command::new(env!("CARGO_BIN_EXE_solve"))
        .args(["--engine", "exact"])
        .arg(&instance)
        .output()
        .unwrap();
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("engine   : exact"));
    assert!(stdout.contains("optimal  : proven"));
    // same optimum as the paper engine snapshot
    assert!(stdout.contains("period   : 8"));
}

#[test]
fn stdin_input_works() {
    use std::io::Write;
    let json = std::fs::read_to_string(instances_dir().join("hom_pipeline_period.json")).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_solve"))
        .arg("-")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(json.as_bytes())
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout)
        .unwrap()
        .contains("period   : 8"));
}
