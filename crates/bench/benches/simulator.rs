//! Simulator throughput: data sets simulated per second across workflow
//! shapes and mapping structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use repliflow_core::gen::Gen;
use repliflow_core::mapping::{Mapping, Mode};
use repliflow_sim::{simulate_fork, simulate_pipeline, Feed};
use std::hint::black_box;

fn bench_pipeline_sim(c: &mut Criterion) {
    let mut gen = Gen::new(0x510);
    let mut group = c.benchmark_group("simulate_pipeline");
    for data_sets in [100usize, 1000, 10000] {
        let pipe = gen.pipeline(16, 1, 50);
        let plat = gen.het_platform(8, 1, 10);
        let mapping = Mapping::whole(16, plat.procs().collect(), Mode::Replicated);
        group.throughput(Throughput::Elements(data_sets as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(data_sets),
            &data_sets,
            |b, &d| {
                b.iter(|| {
                    black_box(
                        simulate_pipeline(&pipe, &plat, &mapping, Feed::Saturated, d).unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_fork_sim(c: &mut Criterion) {
    let mut gen = Gen::new(0x511);
    let mut group = c.benchmark_group("simulate_fork");
    for data_sets in [100usize, 1000] {
        let fork = gen.fork(12, 1, 50);
        let plat = gen.het_platform(6, 1, 10);
        let mapping = Mapping::whole(13, plat.procs().collect(), Mode::Replicated);
        group.throughput(Throughput::Elements(data_sets as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(data_sets),
            &data_sets,
            |b, &d| {
                b.iter(|| {
                    black_box(simulate_fork(&fork, &plat, &mapping, Feed::Saturated, d).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_sim, bench_fork_sim);
criterion_main!(benches);
