//! Exponential blow-up of exhaustive optimization — the empirical face of
//! the NP-hardness results. The exact Pareto solver's runtime grows
//! exponentially in `p` on the very instances Theorems 5/9/12/15 prove
//! hard, while the polynomial cells' algorithms stay flat (see
//! `poly_algorithms`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repliflow_core::gen::Gen;
use repliflow_exact::Goal;
use repliflow_reductions::{thm5, TwoPartition};
use std::hint::black_box;

fn bench_exact_pipeline_in_p(c: &mut Criterion) {
    let mut gen = Gen::new(0xE0);
    let mut group = c.benchmark_group("exact_pipeline_vs_p");
    group.sample_size(10);
    for p in [3usize, 4, 5, 6, 7] {
        let pipe = gen.pipeline(6, 1, 20);
        let plat = gen.het_platform(p, 1, 8);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                black_box(repliflow_exact::solve_pipeline(
                    &pipe,
                    &plat,
                    true,
                    Goal::MinPeriod,
                ))
            });
        });
    }
    group.finish();
}

fn bench_exact_on_reduced_instances(c: &mut Criterion) {
    let mut gen = Gen::new(0xE1);
    let mut group = c.benchmark_group("exact_on_thm5_reductions");
    group.sample_size(10);
    for m in [3usize, 4, 5, 6] {
        let tp = TwoPartition::random_yes(&mut gen, m, 9);
        let r = thm5::reduce(&tp);
        group.bench_with_input(BenchmarkId::from_parameter(2 * m), &m, |b, _| {
            b.iter(|| {
                black_box(repliflow_exact::solve_pipeline(
                    &r.pipeline,
                    &r.platform,
                    true,
                    Goal::MinLatency,
                ))
            });
        });
    }
    group.finish();
}

fn bench_exact_fork_in_leaves(c: &mut Criterion) {
    let mut gen = Gen::new(0xE2);
    let mut group = c.benchmark_group("exact_fork_vs_leaves");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let fork = gen.fork(n, 1, 10);
        let plat = gen.het_platform(4, 1, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(repliflow_exact::solve_fork(
                    &fork,
                    &plat,
                    true,
                    Goal::MinLatency,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_pipeline_in_p,
    bench_exact_on_reduced_instances,
    bench_exact_fork_in_leaves
);
criterion_main!(benches);
