//! Benchmarks of the communication-aware path: the general-model
//! evaluators over increasingly replicated mappings, and end-to-end
//! comm-exact vs comm-heuristic solves through the registry.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use repliflow_core::comm::{CommModel, Network};
use repliflow_core::comm_cost;
use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::ProcId;
use repliflow_core::workflow::Pipeline;
use repliflow_solver::{EnginePref, EngineRegistry, SolveRequest};

/// A pipeline with data sizes, a platform, and an interval mapping
/// spreading `p` processors over `groups` replicated intervals.
fn setup(
    n: usize,
    p: usize,
    groups: usize,
) -> (Pipeline, repliflow_core::platform::Platform, Mapping) {
    let mut gen = Gen::new(0xBE);
    let pipe =
        Pipeline::with_data_sizes(gen.positive_ints(n, 1, 20), gen.positive_ints(n + 1, 1, 10));
    let plat = gen.het_platform(p, 1, 6);
    let per_group = p / groups;
    let mut assignments = Vec::new();
    let stages_per = n / groups;
    for g in 0..groups {
        let lo = g * stages_per;
        let hi = if g + 1 == groups {
            n - 1
        } else {
            lo + stages_per - 1
        };
        let procs: Vec<ProcId> = (g * per_group..(g + 1) * per_group).map(ProcId).collect();
        assignments.push(Assignment::interval(lo, hi, procs, Mode::Replicated));
    }
    (pipe, plat, Mapping::new(assignments))
}

fn bench_comm_evaluators(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_evaluators");
    for &(n, p, groups) in &[(8usize, 4usize, 2usize), (16, 8, 4), (32, 16, 8)] {
        let (pipe, plat, mapping) = setup(n, p, groups);
        let net = Network::uniform(p, 4);
        group.bench_with_input(
            BenchmarkId::new("pipeline_period", format!("n{n}_p{p}")),
            &(&pipe, &plat, &net, &mapping),
            |b, (pipe, plat, net, mapping)| {
                b.iter(|| comm_cost::pipeline_period(pipe, plat, net, black_box(mapping)).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pipeline_latency", format!("n{n}_p{p}")),
            &(&pipe, &plat, &net, &mapping),
            |b, (pipe, plat, net, mapping)| {
                b.iter(|| comm_cost::pipeline_latency(pipe, plat, net, black_box(mapping)).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_comm_solve(c: &mut Criterion) {
    let registry = EngineRegistry::default();
    let mut gen = Gen::new(0xC011);
    let mut group = c.benchmark_group("comm_solve");
    // comm-exact: full-space enumeration inside the guard
    let small = ProblemInstance {
        workflow: Pipeline::with_data_sizes(
            gen.positive_ints(4, 1, 12),
            gen.positive_ints(5, 0, 8),
        )
        .into(),
        platform: gen.het_platform(3, 1, 5),
        allow_data_parallel: true,
        objective: Objective::Period,
        cost_model: CostModel::WithComm {
            network: Network::uniform(3, 2),
            comm: CommModel::OnePort,
            overlap: true,
        },
    };
    group.bench_function("comm_exact_n4_p3", |b| {
        b.iter(|| {
            registry
                .solve(&SolveRequest::new(black_box(small.clone())))
                .unwrap()
        })
    });
    // comm-heuristic: portfolio beyond the guard
    let large = ProblemInstance {
        workflow: Pipeline::with_data_sizes(
            gen.positive_ints(12, 1, 20),
            gen.positive_ints(13, 0, 10),
        )
        .into(),
        platform: gen.het_platform(8, 1, 6),
        allow_data_parallel: false,
        objective: Objective::Period,
        cost_model: CostModel::WithComm {
            network: Network::uniform(8, 3),
            comm: CommModel::OnePort,
            overlap: true,
        },
    };
    group.bench_function("comm_heuristic_n12_p8", |b| {
        b.iter(|| {
            registry
                .solve(&SolveRequest::new(black_box(large.clone())).engine(EnginePref::Heuristic))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_comm_evaluators, bench_comm_solve);
criterion_main!(benches);
