//! Benchmarks of the `comm-bb` branch-and-bound engine on instances the
//! old `comm-exact` enumeration guard refused: the acceptance-bar
//! 10-stage / 8-processor pipeline (proven optimal through the auto
//! route), forks beyond the guard — including the raised-guard 10-leaf
//! fork and fork-join shapes the dominance pruning proves optimal —
//! plus the raw search without the registry around it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use repliflow_core::comm::{CommModel, Network};
use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_core::workflow::{Fork, ForkJoin, Pipeline};
use repliflow_exact::{solve_comm_bb, BbLimits};
use repliflow_solver::{EnginePref, EngineRegistry, SolveRequest};

fn acceptance_pipeline() -> ProblemInstance {
    let mut gen = Gen::new(0xACCE);
    ProblemInstance {
        workflow: Pipeline::with_data_sizes(
            gen.positive_ints(10, 1, 20),
            gen.positive_ints(11, 0, 10),
        )
        .into(),
        platform: gen.het_platform(8, 1, 6),
        allow_data_parallel: true,
        objective: Objective::Period,
        cost_model: CostModel::WithComm {
            network: Network::uniform(8, 3),
            comm: CommModel::OnePort,
            overlap: true,
        },
    }
}

fn beyond_guard_fork() -> ProblemInstance {
    let mut gen = Gen::new(0xF0BB);
    let leaves = 6;
    ProblemInstance {
        workflow: Fork::with_data_sizes(
            gen.int(1, 9),
            gen.positive_ints(leaves, 1, 9),
            gen.int(0, 6),
            gen.int(0, 6),
            gen.positive_ints(leaves, 0, 5),
        )
        .into(),
        platform: gen.het_platform(5, 1, 5),
        allow_data_parallel: false,
        objective: Objective::Latency,
        cost_model: CostModel::WithComm {
            network: Network::uniform(5, 2),
            comm: CommModel::OnePort,
            overlap: true,
        },
    }
}

fn ten_leaf_fork() -> ProblemInstance {
    let mut gen = Gen::new(0xF0BB);
    let leaves = 10;
    ProblemInstance {
        workflow: Fork::with_data_sizes(
            gen.int(1, 9),
            gen.positive_ints(leaves, 1, 9),
            gen.int(0, 6),
            gen.int(1, 6),
            gen.positive_ints(leaves, 0, 5),
        )
        .into(),
        platform: gen.het_platform(4, 1, 5),
        allow_data_parallel: false,
        objective: Objective::Latency,
        cost_model: CostModel::WithComm {
            network: Network::uniform(4, 2),
            comm: CommModel::OnePort,
            overlap: true,
        },
    }
}

fn ten_leaf_forkjoin() -> ProblemInstance {
    let mut gen = Gen::new(0xF1BB);
    let leaves = 10;
    ProblemInstance {
        workflow: ForkJoin::with_data_sizes(
            gen.int(1, 9),
            gen.positive_ints(leaves, 1, 9),
            gen.int(1, 6),
            gen.int(0, 6),
            gen.int(1, 6),
            gen.positive_ints(leaves, 0, 5),
        )
        .into(),
        platform: gen.het_platform(5, 1, 5),
        allow_data_parallel: false,
        objective: Objective::Latency,
        cost_model: CostModel::WithComm {
            network: Network::uniform(5, 2),
            comm: CommModel::OnePort,
            overlap: true,
        },
    }
}

fn bench_comm_bb(c: &mut Criterion) {
    let registry = EngineRegistry::default();
    let mut group = c.benchmark_group("comm_bb");
    // end-to-end through the auto route (which now proves optimality at
    // 10 stages / 8 procs — twice the enumeration guard)
    let pipeline = acceptance_pipeline();
    group.bench_function("auto_pipeline_n10_p8", |b| {
        b.iter(|| {
            let report = registry
                .solve(&SolveRequest::new(black_box(pipeline.clone())))
                .unwrap();
            assert_eq!(report.engine_used, "comm-bb");
            report
        })
    });
    let fork = beyond_guard_fork();
    group.bench_function("forced_fork_l6_p5", |b| {
        b.iter(|| {
            registry
                .solve(&SolveRequest::new(black_box(fork.clone())).engine(EnginePref::CommBb))
                .unwrap()
        })
    });
    // the raised-guard fork shapes: 10 leaves proven optimal through
    // the auto route (fork dominance pruning; pre-dominance the engine
    // capped out near 6 leaves)
    let fork10 = ten_leaf_fork();
    group.bench_function("auto_fork_l10_p4", |b| {
        b.iter(|| {
            let report = registry
                .solve(&SolveRequest::new(black_box(fork10.clone())))
                .unwrap();
            assert_eq!(report.engine_used, "comm-bb");
            report
        })
    });
    let fj10 = ten_leaf_forkjoin();
    group.bench_function("auto_forkjoin_l10_p5", |b| {
        b.iter(|| {
            let report = registry
                .solve(&SolveRequest::new(black_box(fj10.clone())))
                .unwrap();
            assert_eq!(report.engine_used, "comm-bb");
            report
        })
    });
    // the raw search without registry/validation overhead, no incumbent
    group.bench_function("raw_search_pipeline_n10_p8", |b| {
        b.iter(|| solve_comm_bb(black_box(&pipeline), None, &BbLimits::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_comm_bb);
criterion_main!(benches);
