//! Criterion benchmarks of the paper's polynomial algorithms (Table 1's
//! polynomial cells), across `n` and `p` sweeps. The growth rates support
//! the stated complexities: O(n·p·(n+p)) for the Theorem 3/4 DPs,
//! candidate-set binary search × packing DP for Theorems 7/8/14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repliflow_algorithms::{het_fork, het_pipeline, hom_fork, hom_pipeline};
use repliflow_core::gen::Gen;
use repliflow_core::rational::Rat;
use std::hint::black_box;

fn bench_thm1(c: &mut Criterion) {
    let mut gen = Gen::new(1);
    let mut group = c.benchmark_group("thm1_min_period");
    for n in [8usize, 64, 512] {
        let pipe = gen.pipeline(n, 1, 50);
        let plat = gen.hom_platform(16, 1, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(hom_pipeline::min_period(&pipe, &plat)));
        });
    }
    group.finish();
}

fn bench_thm3(c: &mut Criterion) {
    let mut gen = Gen::new(3);
    let mut group = c.benchmark_group("thm3_latency_dp");
    for n in [8usize, 16, 32, 64] {
        let pipe = gen.pipeline(n, 1, 50);
        let plat = gen.hom_platform(16, 1, 4);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            b.iter(|| black_box(hom_pipeline::min_latency_dp(&pipe, &plat)));
        });
    }
    for p in [8usize, 16, 32, 64] {
        let pipe = gen.pipeline(16, 1, 50);
        let plat = gen.hom_platform(p, 1, 4);
        group.bench_with_input(BenchmarkId::new("p", p), &p, |b, _| {
            b.iter(|| black_box(hom_pipeline::min_latency_dp(&pipe, &plat)));
        });
    }
    group.finish();
}

fn bench_thm4(c: &mut Criterion) {
    let mut gen = Gen::new(4);
    let mut group = c.benchmark_group("thm4_bicriteria_dp");
    for n in [8usize, 16, 32] {
        let pipe = gen.pipeline(n, 1, 50);
        let plat = gen.hom_platform(16, 1, 4);
        let bound = Rat::int(1_000_000);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(hom_pipeline::min_latency_under_period(&pipe, &plat, bound)));
        });
    }
    group.finish();
}

fn bench_thm7(c: &mut Criterion) {
    let mut gen = Gen::new(7);
    let mut group = c.benchmark_group("thm7_period_uniform");
    for p in [4usize, 8, 16, 24] {
        let pipe = gen.uniform_pipeline(24, 1, 20);
        let plat = gen.het_platform(p, 1, 20);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| black_box(het_pipeline::min_period_uniform(&pipe, &plat)));
        });
    }
    group.finish();
}

fn bench_thm8(c: &mut Criterion) {
    let mut gen = Gen::new(8);
    let mut group = c.benchmark_group("thm8_bicriteria_uniform");
    for p in [4usize, 8, 12] {
        let pipe = gen.uniform_pipeline(16, 1, 20);
        let plat = gen.het_platform(p, 1, 20);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                black_box(het_pipeline::min_latency_under_period_uniform(
                    &pipe,
                    &plat,
                    Rat::int(1_000_000),
                ))
            });
        });
    }
    group.finish();
}

fn bench_thm11(c: &mut Criterion) {
    let mut gen = Gen::new(11);
    let mut group = c.benchmark_group("thm11_fork_latency");
    for n in [4usize, 8, 16] {
        let fork = gen.uniform_fork(n, 1, 20);
        let plat = gen.hom_platform(8, 1, 4);
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, _| {
            b.iter(|| black_box(hom_fork::min_latency(&fork, &plat, true)));
        });
        group.bench_with_input(BenchmarkId::new("nodp", n), &n, |b, _| {
            b.iter(|| black_box(hom_fork::min_latency(&fork, &plat, false)));
        });
    }
    group.finish();
}

fn bench_thm14(c: &mut Criterion) {
    let mut gen = Gen::new(14);
    let mut group = c.benchmark_group("thm14_het_fork");
    for p in [4usize, 8, 12] {
        let fork = gen.uniform_fork(12, 1, 20);
        let plat = gen.het_platform(p, 1, 10);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| black_box(het_fork::min_period_uniform(&fork, &plat)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_thm1,
    bench_thm3,
    bench_thm4,
    bench_thm7,
    bench_thm8,
    bench_thm11,
    bench_thm14
);
criterion_main!(benches);
