//! Runtime of the heuristics on instances far beyond exhaustive reach —
//! the practical counterpart to the NP-hard cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repliflow_core::gen::Gen;
use repliflow_core::instance::Objective;
use repliflow_core::mapping::{Mapping, Mode};
use repliflow_heuristics::{annealing, greedy, local_search};
use std::hint::black_box;

fn bench_pipeline_greedy(c: &mut Criterion) {
    let mut gen = Gen::new(0x6B0);
    let mut group = c.benchmark_group("pipeline_period_greedy");
    for n in [16usize, 64, 256] {
        let pipe = gen.pipeline(n, 1, 100);
        let plat = gen.het_platform(16, 1, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(greedy::pipeline_period_greedy(&pipe, &plat)));
        });
    }
    group.finish();
}

fn bench_fork_greedy(c: &mut Criterion) {
    let mut gen = Gen::new(0x6B1);
    let mut group = c.benchmark_group("fork_latency_greedy");
    for n in [16usize, 64, 256] {
        let fork = gen.fork(n, 1, 100);
        let plat = gen.het_platform(16, 1, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(greedy::fork_latency_greedy(&fork, &plat)));
        });
    }
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    let mut gen = Gen::new(0x6B2);
    let mut group = c.benchmark_group("local_search_round");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let pipe = gen.pipeline(n, 1, 100);
        let plat = gen.het_platform(8, 1, 10);
        let start = Mapping::whole(n, plat.procs().collect(), Mode::Replicated);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(local_search::improve(
                    &pipe,
                    &plat,
                    false,
                    Objective::Period,
                    start.clone(),
                    5,
                ))
            });
        });
    }
    group.finish();
}

fn bench_annealing(c: &mut Criterion) {
    let mut gen = Gen::new(0x6B3);
    let mut group = c.benchmark_group("annealing_500_steps");
    group.sample_size(10);
    let pipe = gen.pipeline(12, 1, 100);
    let plat = gen.het_platform(6, 1, 10);
    let start = Mapping::whole(12, plat.procs().collect(), Mode::Replicated);
    let schedule = annealing::Schedule {
        steps: 500,
        ..annealing::Schedule::default()
    };
    group.bench_function("n12_p6", |b| {
        b.iter(|| {
            black_box(annealing::anneal(
                &pipe,
                &plat,
                false,
                Objective::Period,
                start.clone(),
                schedule,
                42,
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_greedy,
    bench_fork_greedy,
    bench_local_search,
    bench_annealing
);
criterion_main!(benches);
