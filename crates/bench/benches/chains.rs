//! The chains-to-chains substrate: DP vs exact parametric search vs the
//! greedy baseline (the classical problem the paper generalizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repliflow_algorithms::chains;
use repliflow_core::gen::Gen;
use std::hint::black_box;

fn bench_chains(c: &mut Criterion) {
    let mut gen = Gen::new(0xCC);
    let mut group = c.benchmark_group("chains_to_chains");
    for n in [32usize, 128, 512] {
        let a = gen.positive_ints(n, 1, 1000);
        let p = 16;
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, _| {
            b.iter(|| black_box(chains::dp(&a, p)));
        });
        group.bench_with_input(BenchmarkId::new("binary_search", n), &n, |b, _| {
            b.iter(|| black_box(chains::binary_search(&a, p)));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| black_box(chains::greedy(&a, p)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chains);
criterion_main!(benches);
