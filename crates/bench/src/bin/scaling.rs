//! Emits CSV runtime series for the polynomial algorithms, supporting the
//! complexity claims of Table 1 (E-C1 in DESIGN.md): each algorithm is
//! timed over sweeps of `n` (stages/leaves) and `p` (processors).
//!
//! Columns: `algorithm,n,p,micros`. Pipe to a file for plotting.

use repliflow_algorithms::{het_fork, het_pipeline, hom_fork, hom_pipeline};
use repliflow_core::gen::Gen;
use std::time::Instant;

fn time_us(mut f: impl FnMut()) -> u128 {
    // warm up once, then time the median of 3 runs
    f();
    let mut samples: Vec<u128> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros()
        })
        .collect();
    samples.sort_unstable();
    samples[1]
}

fn main() {
    println!("algorithm,n,p,micros");
    let mut gen = Gen::new(0x5CA1);

    // Theorem 3: O(n·p·(n+p)) latency DP — sweep n at fixed p and p at n
    for &n in &[4usize, 8, 16, 32, 64, 128] {
        let pipe = gen.pipeline(n, 1, 50);
        let plat = gen.hom_platform(16, 1, 4);
        let us = time_us(|| {
            let _ = hom_pipeline::min_latency_dp(&pipe, &plat);
        });
        println!("thm3_latency_dp,{n},16,{us}");
    }
    for &p in &[4usize, 8, 16, 32, 64] {
        let pipe = gen.pipeline(16, 1, 50);
        let plat = gen.hom_platform(p, 1, 4);
        let us = time_us(|| {
            let _ = hom_pipeline::min_latency_dp(&pipe, &plat);
        });
        println!("thm3_latency_dp,16,{p},{us}");
    }

    // Theorem 4: bi-criteria DP
    for &n in &[4usize, 8, 16, 32, 64] {
        let pipe = gen.pipeline(n, 1, 50);
        let plat = gen.hom_platform(16, 1, 4);
        let bound = repliflow_core::rational::Rat::int(1_000_000);
        let us = time_us(|| {
            let _ = hom_pipeline::min_latency_under_period(&pipe, &plat, bound);
        });
        println!("thm4_bicriteria_dp,{n},16,{us}");
    }

    // Theorem 7: binary search over candidates × packing DP — sweep p
    for &p in &[4usize, 8, 16, 32] {
        let pipe = gen.uniform_pipeline(24, 1, 20);
        let plat = gen.het_platform(p, 1, 20);
        let us = time_us(|| {
            let _ = het_pipeline::min_period_uniform(&pipe, &plat);
        });
        println!("thm7_period_binary_search,24,{p},{us}");
    }
    for &n in &[8usize, 16, 32, 64] {
        let pipe = gen.uniform_pipeline(n, 1, 20);
        let plat = gen.het_platform(12, 1, 20);
        let us = time_us(|| {
            let _ = het_pipeline::min_period_uniform(&pipe, &plat);
        });
        println!("thm7_period_binary_search,{n},12,{us}");
    }

    // Theorem 11: homogeneous fork latency (both models)
    for &n in &[4usize, 8, 16, 24] {
        let fork = gen.uniform_fork(n, 1, 20);
        let plat = gen.hom_platform(8, 1, 4);
        let us = time_us(|| {
            let _ = hom_fork::min_latency(&fork, &plat, true);
        });
        println!("thm11_fork_latency_dp,{n},8,{us}");
        let us = time_us(|| {
            let _ = hom_fork::min_latency(&fork, &plat, false);
        });
        println!("thm11_fork_latency_nodp,{n},8,{us}");
    }

    // Theorem 14: heterogeneous-platform fork, binary search × DP
    for &p in &[4usize, 8, 12, 16] {
        let fork = gen.uniform_fork(12, 1, 20);
        let plat = gen.het_platform(p, 1, 10);
        let us = time_us(|| {
            let _ = het_fork::min_period_uniform(&fork, &plat);
        });
        println!("thm14_fork_period,{p}_leaves12,{p},{us}");
    }

    // Exact solver blow-up (NP-hard evidence): exponential in p
    for &p in &[2usize, 3, 4, 5, 6, 7] {
        let pipe = gen.pipeline(6, 1, 20);
        let plat = gen.het_platform(p, 1, 8);
        let us = time_us(|| {
            let _ = repliflow_exact::solve_pipeline(
                &pipe,
                &plat,
                true,
                repliflow_exact::Goal::MinPeriod,
            );
        });
        println!("exact_pipeline_pareto,6,{p},{us}");
    }
}
