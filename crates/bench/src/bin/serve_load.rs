//! `serve_load` — daemon serving benchmark: requests/sec and latency
//! percentiles through a real `repliflow-serve` daemon over TCP.
//!
//! Where `throughput` measures the in-process [`SolverService`], this
//! measures the full network path: an in-process [`Server`] on an
//! ephemeral loopback port, `--clients` closed-loop connections each
//! issuing `--requests` line-protocol solves over a mixed stream
//! (golden instances + seeded generated variety), client-observed
//! latencies accumulated in a [`LatencyHistogram`]. A single-client
//! warmup pass seeds the daemon's solve cache first, so the measured
//! run reflects steady-state serving (protocol + transport + cache)
//! rather than first-compute cost.
//!
//! Prints one JSON object to stdout (requests/sec at the given
//! concurrency, client-side p50/p95/p99, daemon-side cache hit rate and
//! utilization) — CI's bench-smoke job stores it as
//! `BENCH_pr_serve.json`, so daemon serving performance is tracked per
//! PR alongside the solver trends.
//!
//! ```text
//! serve_load                 # 8 clients x 200 requests
//! serve_load --quick         # CI smoke profile (4 x 40)
//! serve_load --clients 16    # concurrency
//! serve_load --requests 500  # per-client request count
//! serve_load --workers 4     # daemon pool size
//! ```
//!
//! [`SolverService`]: repliflow_solver::SolverService
//! [`Server`]: repliflow_serve::Server
//! [`LatencyHistogram`]: repliflow_solver::LatencyHistogram

use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_serve::server::{Server, ServerConfig};
use repliflow_serve::{RemoteClient, RemoteSolveOptions};
use repliflow_solver::{CommModel, LatencyHistogram};
use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!("usage: serve_load [--quick] [--clients N] [--requests N] [--workers N]");
    ExitCode::FAILURE
}

/// Every golden instance committed under `examples/instances/`.
fn golden_instances() -> Vec<ProblemInstance> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/instances");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/instances is readable")
        .map(|entry| entry.expect("directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let json = std::fs::read_to_string(p).expect("golden instance is readable");
            serde_json::from_str(&json).expect("golden instance parses")
        })
        .collect()
}

/// Seeded generated variety behind the goldens (same mix as the
/// `throughput` bench: all three shapes, both platform kinds, a third
/// communication-aware).
fn generated_instances(count: usize, seed: u64) -> Vec<ProblemInstance> {
    let mut gen = Gen::new(seed);
    (0..count)
        .map(|i| {
            let objective = if i % 2 == 0 {
                Objective::Period
            } else {
                Objective::Latency
            };
            let procs = 2 + i % 3;
            let platform = if i % 2 == 0 {
                gen.hom_platform(procs, 1, 4)
            } else {
                gen.het_platform(procs, 1, 4)
            };
            let workflow: repliflow_core::workflow::Workflow = match i % 3 {
                0 => gen.pipeline(2 + i % 5, 1, 9).into(),
                1 => gen.fork(2 + i % 4, 1, 9).into(),
                _ => gen.forkjoin(2 + i % 3, 1, 9).into(),
            };
            let mut instance = ProblemInstance::new(workflow, platform, i % 4 == 0, objective);
            if i % 3 == 0 {
                instance.cost_model = CostModel::WithComm {
                    network: gen.uniform_network(procs, 1, 4),
                    comm: if i % 6 == 0 {
                        CommModel::OnePort
                    } else {
                        CommModel::BoundedMultiPort
                    },
                    overlap: i % 2 == 0,
                };
            }
            instance
        })
        .collect()
}

fn us(d: Option<Duration>) -> Value {
    match d {
        Some(d) => Value::Int(d.as_micros() as i128),
        None => Value::Null,
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--clients" => match it.next().as_deref().and_then(|c| c.parse().ok()) {
                Some(c) if c > 0 => clients = Some(c),
                _ => return usage(),
            },
            "--requests" => match it.next().as_deref().and_then(|r| r.parse().ok()) {
                Some(r) if r > 0 => requests = Some(r),
                _ => return usage(),
            },
            "--workers" => match it.next().as_deref().and_then(|w| w.parse().ok()) {
                Some(w) if w > 0 => workers = Some(w),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let clients = clients.unwrap_or(if quick { 4 } else { 8 });
    let per_client = requests.unwrap_or(if quick { 40 } else { 200 });

    // The working set every client cycles through.
    let mut stream = golden_instances();
    stream.extend(generated_instances(32, 0x5E12E));

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        cache_capacity: 4 * stream.len(),
        ..ServerConfig::default()
    })
    .expect("daemon binds an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    let daemon = repliflow_sync::thread::spawn(move || server.run());

    let options = RemoteSolveOptions::default();

    // Warmup: one pass over the whole set seeds the solve cache.
    let mut warm = RemoteClient::connect(addr).expect("warmup client connects");
    let mut warm_errors = 0usize;
    for instance in &stream {
        if warm.solve(instance, &options).is_err() {
            warm_errors += 1;
        }
    }

    // Measured run: closed-loop clients, each cycling the stream from a
    // staggered offset so concurrent requests mix instances.
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let stream = stream.clone();
            repliflow_sync::thread::spawn(move || {
                let mut latencies = LatencyHistogram::new();
                let mut errors = 0usize;
                let mut client = RemoteClient::connect(addr).expect("load client connects");
                for i in 0..per_client {
                    let instance = &stream[(c * 7 + i) % stream.len()];
                    let sent = Instant::now();
                    match client.solve(instance, &options) {
                        Ok(_) => latencies.record(sent.elapsed()),
                        Err(_) => errors += 1,
                    }
                }
                (latencies, errors)
            })
        })
        .collect();
    let mut latencies = LatencyHistogram::new();
    let mut errors = warm_errors;
    for thread in threads {
        let (client_latencies, client_errors) = thread.join().expect("client thread");
        latencies.merge(&client_latencies);
        errors += client_errors;
    }
    let elapsed = start.elapsed();

    // Daemon-side view, then drain it.
    let mut admin = RemoteClient::connect(addr).expect("admin client connects");
    let stats = admin.stats().expect("stats verb");
    handle.shutdown();
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon drains cleanly");

    let total = latencies.count();
    let per_sec = if elapsed.is_zero() {
        f64::INFINITY
    } else {
        total as f64 / elapsed.as_secs_f64()
    };
    let snapshot = latencies.snapshot();
    let daemon_field = |section: &str, name: &str| {
        stats
            .field(section)
            .and_then(|s| s.field(name))
            .cloned()
            .unwrap_or(Value::Null)
    };
    let report = Value::Object(vec![
        ("clients".into(), Value::Int(clients as i128)),
        ("requests_per_client".into(), Value::Int(per_client as i128)),
        ("requests".into(), Value::Int(total as i128)),
        ("quick".into(), Value::Bool(quick)),
        (
            "elapsed_ms".into(),
            Value::Float(elapsed.as_secs_f64() * 1e3),
        ),
        ("requests_per_sec".into(), Value::Float(per_sec)),
        ("p50_us".into(), us(snapshot.p50)),
        ("p95_us".into(), us(snapshot.p95)),
        ("p99_us".into(), us(snapshot.p99)),
        ("max_us".into(), us(snapshot.max)),
        ("mean_us".into(), us(snapshot.mean)),
        (
            "daemon_cache_hit_rate".into(),
            daemon_field("service", "cache_hit_rate"),
        ),
        (
            "daemon_worker_utilization".into(),
            daemon_field("service", "worker_utilization"),
        ),
        (
            "daemon_accepted".into(),
            daemon_field("admission", "accepted"),
        ),
        (
            "daemon_rejected".into(),
            daemon_field("admission", "rejected"),
        ),
        ("errors".into(), Value::Int(errors as i128)),
    ]);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serialization is infallible")
    );

    if errors > 0 {
        eprintln!("error: {errors} requests failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
