//! `tail_latency` — the PR's tail-latency benchmark: hedged racing vs
//! the straight `comm-bb` route, plus contended solve-cache throughput
//! by shard count.
//!
//! **Hedging section.** Drives one mixed stream of communication-aware
//! instances — mostly easy (comm-bb proves in milliseconds), a minority
//! deliberately hard (comm-bb burns its whole `bb_time_limit_ms`) —
//! through a cacheless [`SolverService`] twice, one request at a time
//! so every latency sample is a clean per-request measurement:
//!
//! 1. **off**: every request pinned to `engine: comm-bb` — the
//!    unhedged proving route, whose tail is the time limit;
//! 2. **on**: the identical stream pinned to `engine: hedged` — the
//!    race settles on the heuristic when the proof misses the
//!    [`Budget::hedge_delay_ms`] grace window.
//!
//! Reports p50/p95/p99 for both modes and **asserts the hedged p99 is
//! no worse than the unhedged p99** (exit code 1 otherwise): the whole
//! point of the hedge is the tail, so the tail is the acceptance bar.
//!
//! **Cache section.** Builds a [`SolveCache`] per shard count in
//! {1, 2, 4, 8}, pre-fills it with synthetic fingerprints, then hammers
//! `get` from several threads and reports lookups/sec. **Asserts the
//! 8-shard cache beats the 1-shard cache** — the lock-striping must pay
//! for itself under contention. On a single-core machine striping has
//! no parallelism to recover and the comparison is scheduler noise, so
//! the assertion is enforced only when `available_parallelism >= 2`
//! (every CI runner); the JSON records whether it was enforced.
//!
//! Prints one JSON object to stdout; CI's bench-smoke job stores it as
//! `BENCH_pr_hedge.json` next to the other perf artifacts.
//!
//! ```text
//! tail_latency             # full profile (96 requests, 3 cache trials)
//! tail_latency --quick     # CI smoke profile (32 requests, 2 trials)
//! tail_latency --threads 8 # cache-contention thread count
//! ```
//!
//! [`SolverService`]: repliflow_solver::SolverService
//! [`SolveCache`]: repliflow_solver::SolveCache
//! [`Budget::hedge_delay_ms`]: repliflow_solver::Budget

use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_solver::{
    Budget, CommModel, EnginePref, EngineRegistry, InstanceFingerprint, Quality, SolveCache,
    SolveRequest, SolverService,
};
use repliflow_sync::sync::Arc;
use serde_json::Value;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!("usage: tail_latency [--quick] [--requests N] [--threads N]");
    ExitCode::FAILURE
}

fn comm_instance(seed: u64, n: usize, p: usize) -> ProblemInstance {
    let mut gen = Gen::new(seed);
    ProblemInstance::new(
        gen.pipeline(n, 1, 12),
        gen.het_platform(p, 1, 5),
        false,
        Objective::Period,
    )
    .with_cost_model(CostModel::WithComm {
        network: gen.het_network(p, 1, 4),
        comm: CommModel::OnePort,
        overlap: true,
    })
}

/// The benchmark stream: every 6th instance is a deliberately hard one
/// (20 stages x 10 heterogeneous processors — far past what comm-bb can
/// enumerate inside its time limit, while the heuristic portfolio stays
/// cheap), the rest are easy proving work. Distinct seeds keep every
/// fingerprint unique, so no cache could help even if one were enabled.
fn stream(requests: usize) -> Vec<ProblemInstance> {
    (0..requests)
        .map(|i| {
            if i % 6 == 3 {
                comm_instance(0x7A11 + i as u64, 20, 10)
            } else {
                comm_instance(0x7A11 + i as u64, 5 + i % 3, 3)
            }
        })
        .collect()
}

/// The bench budget: bb caps widened so the hard instances still route
/// to comm-bb (the tail we are engineering away), time limit tightened
/// so one unhedged run never stalls the bench for the default 10 s, and
/// `Quality::Fast` so the heuristic side of every race is cheap — the
/// latency-sensitive serving profile hedging is designed for.
fn bench_budget(bb_time_limit_ms: u64) -> Budget {
    Budget {
        max_comm_bb_stages: 32,
        max_comm_bb_procs: 20,
        bb_time_limit_ms,
        ..Budget::default().quality(Quality::Fast)
    }
}

/// Solves the stream one request at a time and returns the sorted
/// per-request latencies.
fn measure(
    service: &SolverService,
    stream: &[ProblemInstance],
    engine: EnginePref,
    budget: Budget,
) -> Result<Vec<Duration>, String> {
    let mut samples = Vec::with_capacity(stream.len());
    for (i, instance) in stream.iter().enumerate() {
        let request = SolveRequest::new(instance.clone())
            .engine(engine)
            .budget(budget);
        let start = Instant::now();
        service
            .solve(&request)
            .map_err(|e| format!("request {i} failed under {engine:?}: {e}"))?;
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    Ok(samples)
}

/// Nearest-rank percentile of an ascending sample vector.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn latency_section(sorted: &[Duration]) -> Value {
    let ms = |d: Duration| Value::Float(d.as_secs_f64() * 1e3);
    Value::Object(vec![
        ("samples".into(), Value::Int(sorted.len() as i128)),
        ("p50_ms".into(), ms(percentile(sorted, 50.0))),
        ("p95_ms".into(), ms(percentile(sorted, 95.0))),
        ("p99_ms".into(), ms(percentile(sorted, 99.0))),
        ("max_ms".into(), ms(*sorted.last().expect("non-empty"))),
    ])
}

/// Synthetic, Fibonacci-mixed cache key: the high 64 bits drive shard
/// selection, so the mixer spreads the key set across every shard the
/// way real fingerprints do.
fn synthetic_key(i: u64) -> InstanceFingerprint {
    let hi = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    InstanceFingerprint::from_u128(((hi as u128) << 64) | i as u128)
}

/// Contended lookup throughput of one cache configuration: `threads`
/// workers each performing `ops` gets over a pre-filled key set.
/// Returns lookups/sec. Entries are `Arc`-shared, so `get` is a
/// pointer clone under the shard lock — striping still decides how
/// many lookups contend on the same lock.
fn contended_lookups(
    shards: usize,
    threads: usize,
    ops: usize,
    report: &repliflow_solver::SolveReport,
) -> f64 {
    const KEYS: usize = 256;
    let cache = Arc::new(SolveCache::with_shards(2 * KEYS, shards));
    for i in 0..KEYS as u64 {
        cache.insert(synthetic_key(i), Arc::new(report.clone()));
    }
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(&cache);
            repliflow_sync::thread::spawn(move || {
                for i in 0..ops {
                    let k = synthetic_key(((t * ops + i) % KEYS) as u64);
                    assert!(cache.get(k).is_some(), "pre-filled key missing");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("lookup thread panicked");
    }
    (threads * ops) as f64 / start.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut requests: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--requests" => match it.next().as_deref().and_then(|r| r.parse().ok()) {
                Some(r) if r > 0 => requests = Some(r),
                _ => return usage(),
            },
            "--threads" => match it.next().as_deref().and_then(|t| t.parse().ok()) {
                Some(t) if t > 0 => threads = Some(t),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let requests = requests.unwrap_or(if quick { 32 } else { 96 });
    let bb_time_limit_ms: u64 = 250;
    let parallelism = repliflow_sync::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // More threads than cores on any plausible runner: contention (and
    // single-mutex convoying) is the phenomenon under measurement.
    let threads = threads.unwrap_or((2 * parallelism).clamp(8, 16));
    let trials = if quick { 2 } else { 3 };

    let stream = stream(requests);
    let budget = bench_budget(bb_time_limit_ms);
    // Cacheless on purpose: every sample is a real solve, and the two
    // passes over the same stream stay independent.
    let service = SolverService::builder().no_cache().build();

    let off = match measure(&service, &stream, EnginePref::CommBb, budget) {
        Ok(samples) => samples,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let on = match measure(&service, &stream, EnginePref::Hedged, budget) {
        Ok(samples) => samples,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = service.stats();

    // Contended cache throughput. Trials are interleaved round-robin
    // over the shard counts (1,2,4,8,1,2,4,8,...) so slow drift in the
    // machine hits every configuration equally; the best trial per
    // configuration is reported.
    let lookup_ops = if quick { 100_000 } else { 200_000 };
    let seed_report = EngineRegistry::default()
        .solve(
            &SolveRequest::new(comm_instance(0x7A00, 20, 10))
                .engine(EnginePref::Heuristic)
                .budget(Budget::default().quality(Quality::Fast)),
        )
        .expect("seed report solves");
    let shard_counts = [1usize, 2, 4, 8];
    let mut best = [0.0f64; 4];
    for _ in 0..trials {
        for (slot, &shards) in shard_counts.iter().enumerate() {
            let per_sec = contended_lookups(shards, threads, lookup_ops, &seed_report);
            best[slot] = best[slot].max(per_sec);
        }
    }
    let cache_rows: Vec<(usize, f64)> = shard_counts.iter().copied().zip(best).collect();

    let report = Value::Object(vec![
        ("requests".into(), Value::Int(requests as i128)),
        ("quick".into(), Value::Bool(quick)),
        (
            "bb_time_limit_ms".into(),
            Value::Int(bb_time_limit_ms as i128),
        ),
        (
            "hedge_delay_ms".into(),
            Value::Int(budget.hedge_delay_ms as i128),
        ),
        ("hedging_off".into(), latency_section(&off)),
        ("hedging_on".into(), latency_section(&on)),
        (
            "hedge_stats".into(),
            Value::Object(vec![
                ("races".into(), Value::Int(stats.hedge.races as i128)),
                (
                    "primary_wins".into(),
                    Value::Int(stats.hedge.primary_wins as i128),
                ),
                (
                    "secondary_wins".into(),
                    Value::Int(stats.hedge.secondary_wins as i128),
                ),
                (
                    "losers_cancelled".into(),
                    Value::Int(stats.hedge.losers_cancelled as i128),
                ),
                (
                    "window_rescues".into(),
                    Value::Int(stats.hedge.window_rescues as i128),
                ),
            ]),
        ),
        (
            "cache_contention".into(),
            Value::Object(vec![
                ("threads".into(), Value::Int(threads as i128)),
                ("parallelism".into(), Value::Int(parallelism as i128)),
                ("asserted".into(), Value::Bool(parallelism >= 2)),
                ("lookups_per_thread".into(), Value::Int(lookup_ops as i128)),
                (
                    "by_shards".into(),
                    Value::Array(
                        cache_rows
                            .iter()
                            .map(|&(shards, per_sec)| {
                                Value::Object(vec![
                                    ("shards".into(), Value::Int(shards as i128)),
                                    ("lookups_per_sec".into(), Value::Float(per_sec)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serialization is infallible")
    );

    // Acceptance bars — the reason this bench exists.
    let off_p99 = percentile(&off, 99.0);
    let on_p99 = percentile(&on, 99.0);
    if on_p99 > off_p99 {
        eprintln!(
            "error: hedged p99 {:.1} ms exceeds unhedged p99 {:.1} ms",
            on_p99.as_secs_f64() * 1e3,
            off_p99.as_secs_f64() * 1e3
        );
        return ExitCode::FAILURE;
    }
    let one_shard = cache_rows[0].1;
    let eight_shard = cache_rows.last().expect("shard rows non-empty").1;
    if parallelism < 2 {
        eprintln!(
            "note: single-core machine — striping has no parallelism to recover, \
             shard-scaling bar not enforced (8-shard {eight_shard:.0}/s, 1-shard {one_shard:.0}/s)"
        );
    } else if eight_shard < one_shard {
        eprintln!("error: 8-shard throughput {eight_shard:.0}/s below 1-shard {one_shard:.0}/s");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
