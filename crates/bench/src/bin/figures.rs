//! Regenerates **Figure 1** (the application pipeline) and **Figure 2**
//! (the application fork) as ASCII diagrams and Graphviz DOT.
//!
//! Usage: `figures [pipeline|fork|forkjoin]` (default: all).

use repliflow_core::dot;
use repliflow_core::workflow::{Fork, ForkJoin, Pipeline};

fn figure1() {
    // Figure 1 shows a generic n-stage pipeline; render the Section 2
    // instance so the weights are meaningful.
    let pipe = Pipeline::with_data_sizes(vec![14, 4, 2, 4], vec![1, 1, 1, 1, 1]);
    println!("Figure 1 — the application pipeline\n");
    print!("{}", dot::ascii_pipeline(&pipe));
    println!("\nDOT:\ndigraph pipeline {{");
    print!("{}", dot::to_dot(&dot::pipeline_graph(&pipe)));
    println!("}}");
}

fn figure2() {
    let fork = Fork::with_data_sizes(3, vec![2, 2, 2], 1, 1, vec![1, 1, 1]);
    println!("\nFigure 2 — the application fork\n");
    print!("{}", dot::ascii_fork(&fork));
    println!("\nDOT:\ndigraph fork {{");
    print!("{}", dot::to_dot(&dot::fork_graph(&fork)));
    println!("}}");
}

fn forkjoin() {
    let fj = ForkJoin::new(3, vec![2, 2, 2], 4);
    println!("\nSection 6.3 — fork-join extension\n");
    println!("DOT:\ndigraph forkjoin {{");
    print!("{}", dot::to_dot(&dot::forkjoin_graph(&fj)));
    println!("}}");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "pipeline" => figure1(),
        "fork" => figure2(),
        "forkjoin" => forkjoin(),
        _ => {
            figure1();
            figure2();
            forkjoin();
        }
    }
}
