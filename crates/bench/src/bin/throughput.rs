//! `throughput` — serving-layer benchmark: solves/sec through a
//! [`SolverService`], cold cache vs warm cache.
//!
//! Drives a mixed request stream — every golden instance under
//! `examples/instances/` plus seeded generated instances across the
//! Table 1 shapes — through one long-lived service twice:
//!
//! 1. **cold**: empty cache, every request computed on the worker pool;
//! 2. **warm**: the identical stream again, now answered from the LRU
//!    solve cache.
//!
//! Prints one JSON object to stdout (cold and warm solves/sec, the
//! speedup, cache hit rate, queue wait, per-engine wall time) — CI's
//! bench-smoke job stores it as `BENCH_pr_throughput.json` next to the
//! per-engine artifacts, so the serving-layer trend is tracked per PR
//! alongside the per-solve trend.
//!
//! ```text
//! throughput                 # full stream (256 requests)
//! throughput --quick         # CI smoke profile (64 requests)
//! throughput --workers 4     # pool size (default: available parallelism)
//! throughput --requests 512  # explicit stream length
//! ```
//!
//! [`SolverService`]: repliflow_solver::SolverService

use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_solver::{CommModel, SolverService};
use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!("usage: throughput [--quick] [--workers N] [--requests N]");
    ExitCode::FAILURE
}

/// Every golden instance committed under `examples/instances/`.
fn golden_instances() -> Vec<ProblemInstance> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/instances");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/instances is readable")
        .map(|entry| entry.expect("directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let json = std::fs::read_to_string(p).expect("golden instance is readable");
            serde_json::from_str(&json).expect("golden instance parses")
        })
        .collect()
}

/// Seeded generated instances: pipelines, forks and fork-joins over
/// both platform kinds, a third of them communication-aware — the same
/// mix a mixed production queue would carry.
fn generated_instances(count: usize, seed: u64) -> Vec<ProblemInstance> {
    let mut gen = Gen::new(seed);
    (0..count)
        .map(|i| {
            let objective = if i % 2 == 0 {
                Objective::Period
            } else {
                Objective::Latency
            };
            let procs = 2 + i % 3;
            let platform = if i % 2 == 0 {
                gen.hom_platform(procs, 1, 4)
            } else {
                gen.het_platform(procs, 1, 4)
            };
            let workflow: repliflow_core::workflow::Workflow = match i % 3 {
                0 => gen.pipeline(2 + i % 5, 1, 9).into(),
                1 => gen.fork(2 + i % 4, 1, 9).into(),
                _ => gen.forkjoin(2 + i % 3, 1, 9).into(),
            };
            let mut instance = ProblemInstance::new(workflow, platform, i % 4 == 0, objective);
            if i % 3 == 0 {
                instance.cost_model = CostModel::WithComm {
                    network: gen.uniform_network(procs, 1, 4),
                    comm: if i % 6 == 0 {
                        CommModel::OnePort
                    } else {
                        CommModel::BoundedMultiPort
                    },
                    overlap: i % 2 == 0,
                };
            }
            instance
        })
        .collect()
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut workers: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--workers" => match it.next().as_deref().and_then(|w| w.parse().ok()) {
                Some(w) if w > 0 => workers = Some(w),
                _ => return usage(),
            },
            "--requests" => match it.next().as_deref().and_then(|r| r.parse().ok()) {
                Some(r) if r > 0 => requests = Some(r),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let target = requests.unwrap_or(if quick { 64 } else { 256 });

    // Mixed stream: goldens first (the realistic hot set), generated
    // variety behind them, cycled up to the target length.
    let mut stream = golden_instances();
    stream.extend(generated_instances(
        target.saturating_sub(stream.len()),
        0x7410,
    ));
    stream.truncate(target);

    let mut builder = SolverService::builder().cache_capacity(2 * target);
    if let Some(workers) = workers {
        builder = builder.workers(workers);
    }
    let service = builder.build();

    let cold_start = Instant::now();
    let cold_reports = service.solve_batch(&stream);
    let cold_wall = cold_start.elapsed();
    let cold_errors = cold_reports.iter().filter(|r| r.is_err()).count();

    let warm_start = Instant::now();
    let warm_reports = service.solve_batch(&stream);
    let warm_wall = warm_start.elapsed();
    let warm_errors = warm_reports.iter().filter(|r| r.is_err()).count();

    let cache = service.cache_stats().expect("throughput service caches");
    let stats = service.stats();
    let per_sec = |wall: std::time::Duration| {
        if wall.is_zero() {
            f64::INFINITY
        } else {
            stream.len() as f64 / wall.as_secs_f64()
        }
    };
    let cold_per_sec = per_sec(cold_wall);
    let warm_per_sec = per_sec(warm_wall);

    let mut per_engine = Vec::new();
    for engine in &stats.per_engine {
        per_engine.push(Value::Object(vec![
            ("engine".into(), Value::String(engine.engine.to_string())),
            (
                "wall_ms".into(),
                Value::Float(engine.wall.as_secs_f64() * 1e3),
            ),
            ("solves".into(), Value::Float(engine.solves as f64)),
        ]));
    }
    let report = Value::Object(vec![
        ("requests".into(), Value::Int(stream.len() as i128)),
        ("workers".into(), Value::Int(service.pool_size() as i128)),
        ("quick".into(), Value::Bool(quick)),
        (
            "cold_wall_ms".into(),
            Value::Float(cold_wall.as_secs_f64() * 1e3),
        ),
        (
            "warm_wall_ms".into(),
            Value::Float(warm_wall.as_secs_f64() * 1e3),
        ),
        ("cold_solves_per_sec".into(), Value::Float(cold_per_sec)),
        ("warm_solves_per_sec".into(), Value::Float(warm_per_sec)),
        (
            "warm_speedup".into(),
            Value::Float(if cold_per_sec.is_finite() {
                warm_per_sec / cold_per_sec
            } else {
                1.0
            }),
        ),
        ("cache_hit_rate".into(), Value::Float(cache.hit_rate())),
        ("cache_hits".into(), Value::Int(cache.hits as i128)),
        ("cache_misses".into(), Value::Int(cache.misses as i128)),
        (
            "queue_wait_ms".into(),
            Value::Float(stats.queue_wait.as_secs_f64() * 1e3),
        ),
        (
            "errors".into(),
            Value::Int((cold_errors + warm_errors) as i128),
        ),
        ("per_engine".into(), Value::Array(per_engine)),
    ]);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serialization is infallible")
    );

    if cold_errors + warm_errors > 0 {
        eprintln!("error: {cold_errors} cold / {warm_errors} warm requests failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
