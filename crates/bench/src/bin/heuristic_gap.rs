//! Measures the optimality gap of the heuristics on the NP-hard Table 1
//! cells (heterogeneous pipeline period, heterogeneous fork latency) —
//! the experiment behind the paper's "heuristics should be designed to
//! solve the combinatorial instances" future work.
//!
//! Small instances are compared against the exhaustive oracle (exact
//! gaps); a large instance demonstrates that every heuristic stays
//! polynomial where exact search is hopeless.

use repliflow_bench::config::SEED;
use repliflow_core::gen::Gen;
use repliflow_core::instance::Objective;
use repliflow_core::mapping::{Mapping, Mode};
use repliflow_core::rational::Rat;
use repliflow_exact::Goal;
use repliflow_heuristics::{annealing, baselines, greedy, local_search};
use std::time::Instant;

struct GapStats {
    name: &'static str,
    optimal: usize,
    total: usize,
    worst_gap: f64,
    mean_gap: f64,
}

fn main() {
    let mut gen = Gen::new(SEED ^ 0x6A9);
    let total = 40;

    // ---------------- heterogeneous pipeline period (Thm 9 cell) -------
    let mut stats: Vec<GapStats> = ["greedy", "local-search", "annealing", "replicate-all"]
        .into_iter()
        .map(|name| GapStats {
            name,
            optimal: 0,
            total,
            worst_gap: 1.0,
            mean_gap: 0.0,
        })
        .collect();

    for case in 0..total {
        let n = gen.size(2, 6);
        let p = gen.size(2, 5);
        let pipe = gen.pipeline(n, 1, 20);
        let plat = gen.het_platform(p, 1, 8);
        let opt = repliflow_exact::solve_pipeline(&pipe, &plat, false, Goal::MinPeriod)
            .unwrap()
            .period;

        let start = Mapping::whole(n, plat.procs().collect(), Mode::Replicated);
        let candidates: Vec<(usize, Rat)> = vec![
            (0, {
                let m = greedy::pipeline_period_greedy(&pipe, &plat);
                pipe.period(&plat, &m).unwrap()
            }),
            (1, {
                let m = local_search::improve(
                    &pipe,
                    &plat,
                    false,
                    Objective::Period,
                    start.clone(),
                    200,
                );
                pipe.period(&plat, &m).unwrap()
            }),
            (2, {
                let m = annealing::anneal(
                    &pipe,
                    &plat,
                    false,
                    Objective::Period,
                    start.clone(),
                    annealing::Schedule::default(),
                    case as u64,
                );
                pipe.period(&plat, &m).unwrap()
            }),
            (3, pipe.period(&plat, &start).unwrap()),
        ];
        for (idx, value) in candidates {
            let gap = value.to_f64() / opt.to_f64();
            let s = &mut stats[idx];
            if value == opt {
                s.optimal += 1;
            }
            s.worst_gap = s.worst_gap.max(gap);
            s.mean_gap += gap;
        }
    }

    println!("Heterogeneous pipeline, period objective (NP-hard, Theorem 9 cell)");
    println!("{total} random instances (n<=6, p<=5) vs the exhaustive oracle:\n");
    println!(
        "  {:<16} {:>10} {:>12} {:>12}",
        "heuristic", "optimal", "mean gap", "worst gap"
    );
    for s in &stats {
        println!(
            "  {:<16} {:>7}/{:<3} {:>11.4}x {:>11.4}x",
            s.name,
            s.optimal,
            s.total,
            s.mean_gap / s.total as f64,
            s.worst_gap
        );
    }

    // ---------------- heterogeneous fork latency (Thm 12/15 cell) ------
    let mut fork_optimal = 0;
    let mut fork_worst: f64 = 1.0;
    let mut fork_mean = 0.0;
    for _ in 0..total {
        let leaves = gen.size(1, 5);
        let p = gen.size(2, 4);
        let fork = gen.fork(leaves, 1, 15);
        let plat = gen.het_platform(p, 1, 6);
        let opt = repliflow_exact::solve_fork(&fork, &plat, false, Goal::MinLatency)
            .unwrap()
            .latency;
        let m = greedy::fork_latency_greedy(&fork, &plat);
        let got = fork.latency(&plat, &m).unwrap();
        let gap = got.to_f64() / opt.to_f64();
        if got == opt {
            fork_optimal += 1;
        }
        fork_worst = fork_worst.max(gap);
        fork_mean += gap;
    }
    println!("\nHeterogeneous fork, latency objective (NP-hard, Theorems 12/15 cells)");
    println!(
        "  {:<16} {:>7}/{:<3} {:>11.4}x {:>11.4}x",
        "LPT greedy",
        fork_optimal,
        total,
        fork_mean / total as f64,
        fork_worst
    );

    // ---------------- scale demonstration ------------------------------
    println!("\nPolynomial scalability (n = 200 stages, p = 64 processors):");
    let pipe = gen.pipeline(200, 1, 1000);
    let plat = gen.het_platform(64, 1, 100);
    let wf = repliflow_core::workflow::Workflow::Pipeline(pipe.clone());

    let t = Instant::now();
    let m = greedy::pipeline_period_greedy(&pipe, &plat);
    println!(
        "  greedy:        period {:>12.3}   in {:?}",
        pipe.period(&plat, &m).unwrap().to_f64(),
        t.elapsed()
    );
    let t = Instant::now();
    let m = baselines::replicate_all(&wf, &plat);
    println!(
        "  replicate-all: period {:>12.3}   in {:?}",
        pipe.period(&plat, &m).unwrap().to_f64(),
        t.elapsed()
    );
    let t = Instant::now();
    let start = Mapping::whole(pipe.n_stages(), plat.procs().collect(), Mode::Replicated);
    let m = local_search::improve(&pipe, &plat, false, Objective::Period, start, 30);
    println!(
        "  local search:  period {:>12.3}   in {:?}",
        pipe.period(&plat, &m).unwrap().to_f64(),
        t.elapsed()
    );
}
