//! Regenerates every number of the paper's **Section 2** worked example:
//! the 4-stage pipeline `w = (14, 4, 2, 4)` on three/four homogeneous
//! processors and on the heterogeneous platform `s = (2, 2, 1, 1)`.
//!
//! Every mapping the example discusses is rebuilt and evaluated through
//! the cost model, and the example's optimality claims are re-checked by
//! exhaustive search. Two of the paper's claimed optima are improved by
//! the exhaustive search (see the DISCREPANCY lines) — legal mappings the
//! example's exploration evidently missed.

use repliflow_core::instance::{Objective, ProblemInstance};
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Pipeline;
use repliflow_solver::{EnginePref, SolveReport, SolveRequest};

/// Proven-optimal solve of the example pipeline through the unified
/// engine API (forced exhaustive search — the period cell is NP-hard).
fn optimum(
    pipe: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> repliflow_sync::sync::Arc<SolveReport> {
    let request = SolveRequest::new(ProblemInstance {
        cost_model: repliflow_core::instance::CostModel::Simplified,
        workflow: pipe.clone().into(),
        platform: platform.clone(),
        allow_data_parallel: true,
        objective,
    })
    .engine(EnginePref::Exact);
    repliflow_solver::solve(&request).expect("unbounded objectives are always feasible")
}

fn procs(ids: &[usize]) -> Vec<ProcId> {
    ids.iter().map(|&u| ProcId(u)).collect()
}

fn row(what: &str, paper: &str, measured: Rat) {
    println!(
        "  {:<58} paper: {:>6}   measured: {}",
        what, paper, measured
    );
}

fn main() {
    let pipe = Pipeline::new(vec![14, 4, 2, 4]);
    println!("Section 2 worked example — pipeline w = (14, 4, 2, 4)\n");

    // ---------- homogeneous platform, p = 3, s = 1 ----------
    let hom = Platform::homogeneous(3, 1);
    println!("Homogeneous platform (p = 3, s = 1):");
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0]), Mode::Replicated),
        Assignment::interval(1, 3, procs(&[1]), Mode::Replicated),
    ]);
    row(
        "S1->P1, S2..S4->P2 period",
        "14",
        pipe.period(&hom, &m).unwrap(),
    );
    row(
        "  same mapping, latency",
        "24",
        pipe.latency(&hom, &m).unwrap(),
    );
    let m = Mapping::whole(4, procs(&[0, 1, 2]), Mode::Replicated);
    row(
        "replicate all on P1..P3, period",
        "8",
        pipe.period(&hom, &m).unwrap(),
    );
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::Replicated),
        Assignment::interval(1, 3, procs(&[2]), Mode::Replicated),
    ]);
    row(
        "replicate S1 on {P1,P2}, rest on P3, period",
        "10",
        pipe.period(&hom, &m).unwrap(),
    );
    let hom4 = Platform::homogeneous(4, 1);
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::Replicated),
        Assignment::interval(1, 3, procs(&[2, 3]), Mode::Replicated),
    ]);
    row(
        "4 procs: S1 on {P1,P2}, S2..S4 on {P3,P4}, period",
        "7",
        pipe.period(&hom4, &m).unwrap(),
    );
    let m = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
        Assignment::interval(1, 3, procs(&[2]), Mode::Replicated),
    ]);
    row(
        "data-par S1 on {P1,P2}, rest on P3, latency",
        "17",
        pipe.latency(&hom, &m).unwrap(),
    );
    row(
        "  same mapping, period",
        "10",
        pipe.period(&hom, &m).unwrap(),
    );

    // ---------- heterogeneous platform s = (2, 2, 1, 1) ----------
    let het = Platform::heterogeneous(vec![2, 2, 1, 1]);
    println!("\nHeterogeneous platform (s = (2, 2, 1, 1)):");
    let m = Mapping::whole(4, procs(&[0, 1, 2, 3]), Mode::Replicated);
    row(
        "replicate all on all four, period",
        "6",
        pipe.period(&het, &m).unwrap(),
    );
    let m_paper_period = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
        Assignment::interval(1, 3, procs(&[2, 3]), Mode::Replicated),
    ]);
    row(
        "data-par S1 {P1,P2} + replicate S2..S4 {P3,P4}, period",
        "5",
        pipe.period(&het, &m_paper_period).unwrap(),
    );
    row(
        "  same mapping, latency",
        "13.5",
        pipe.latency(&het, &m_paper_period).unwrap(),
    );
    let m_paper_latency = Mapping::new(vec![
        Assignment::interval(0, 0, procs(&[0, 1, 2]), Mode::DataParallel),
        Assignment::interval(1, 3, procs(&[3]), Mode::Replicated),
    ]);
    row(
        "data-par S1 {P1,P2,P3} + S2..S4 on P4, latency",
        "12.8",
        pipe.latency(&het, &m_paper_latency).unwrap(),
    );

    println!("\nOptimality re-checked by exhaustive search:");
    let best_p = optimum(&pipe, &het, Objective::Period);
    println!(
        "  paper claims the optimal period is 5; exhaustive search finds {} via {}",
        best_p.period.unwrap(),
        best_p.mapping.clone().unwrap()
    );
    println!("  DISCREPANCY: replicate [S1,S2] on the fast pair (18/(2*2) = 4.5) and");
    println!("  [S3,S4] on the slow pair (6/(2*1) = 3) — a legal interval mapping that");
    println!("  beats the example's \"optimal\" 5; no data-parallelism needed.");
    let best_l = optimum(&pipe, &het, Objective::Latency);
    println!(
        "\n  paper claims the optimal latency is 12.8; exhaustive search finds {} via {}",
        best_l.latency.unwrap(),
        best_l.mapping.clone().unwrap()
    );
    println!("  DISCREPANCY: data-parallelize S1 on {{P1,P3,P4}} (14/4 = 3.5) and run");
    println!("  S2..S4 on the *fast* P2 (10/2 = 5): latency 8.5 < 12.8.");
    println!("\nAll other example values match exactly.");
}
