//! `solve` — command-line solver for workflow mapping instances.
//!
//! Reads [`ProblemInstance`]s as JSON (file arguments or stdin), routes
//! them through the [`repliflow_solver::EngineRegistry`] — the paper's
//! polynomial algorithm on polynomial Table 1 cells, exhaustive search
//! on small NP-hard instances, heuristics beyond that — and prints the
//! resulting [`SolveReport`]s.
//!
//! ```text
//! solve instance.json              # Table 1 auto-dispatch
//! solve --engine exact inst.json   # force exhaustive search (small only)
//! solve --engine heuristic i.json  # force the heuristic portfolio
//! solve --engine paper i.json      # paper algorithm or refuse
//! solve a.json b.json c.json       # parallel batch over many instances
//! cat inst.json | solve -
//! ```
//!
//! Example instance:
//! ```json
//! {
//!   "workflow": { "Pipeline": { "weights": [14,4,2,4], "data_sizes": [0,0,0,0,0] } },
//!   "platform": { "speeds": [2,2,1,1] },
//!   "allow_data_parallel": true,
//!   "objective": "Period"
//! }
//! ```
//!
//! [`ProblemInstance`]: repliflow_core::instance::ProblemInstance
//! [`SolveReport`]: repliflow_solver::SolveReport

use repliflow_core::instance::{Complexity, ProblemInstance};
use repliflow_solver::{BatchOptions, EnginePref, EngineRegistry, SolveReport, SolveRequest};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: solve [--engine auto|exact|heuristic|paper] [--no-validate] \
         <instance.json ... | ->"
    );
    ExitCode::FAILURE
}

fn read_instance(path: &str) -> Result<ProblemInstance, String> {
    let json = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    serde_json::from_str(&json).map_err(|e| format!("invalid instance JSON in {path}: {e}"))
}

/// Prints one report; returns whether it represents a solved instance
/// (an unattainable bound is reported, but counts as a failure for the
/// process exit code).
fn print_report(report: &SolveReport) -> bool {
    println!("instance : {}", report.variant);
    match report.complexity {
        Complexity::Polynomial(thm) => println!("cell     : polynomial ({thm})"),
        Complexity::NpHard(thm) => println!("cell     : NP-hard ({thm})"),
    }
    println!("engine   : {}", report.engine_used);
    println!("optimal  : {}", report.optimality);
    match (&report.mapping, report.period, report.latency) {
        (Some(mapping), Some(period), Some(latency)) => {
            println!("mapping  : {mapping}");
            println!("period   : {period} ({:.6})", period.to_f64());
            println!("latency  : {latency} ({:.6})", latency.to_f64());
            if let Some(objective) = report.objective_value {
                println!("objective: {objective}");
            }
            match report.optimality {
                repliflow_solver::Optimality::Infeasible => {
                    println!("status   : bound unattainable (best bound-violating witness shown)")
                }
                _ => println!("status   : feasible"),
            }
        }
        _ => println!("status   : bound proven unattainable (no mapping exists)"),
    }
    report.optimality != repliflow_solver::Optimality::Infeasible
}

/// Warns when a forced exhaustive search exceeds the auto-dispatch
/// size threshold (it will still run — possibly for a very long time).
fn warn_if_slow(engine: EnginePref, instances: &[ProblemInstance]) {
    if engine != EnginePref::Exact {
        return;
    }
    let budget = repliflow_solver::Budget::default();
    for instance in instances {
        let (n, p) = (instance.workflow.n_stages(), instance.platform.n_procs());
        if !budget.allows_exact(n, p) {
            eprintln!("warning: exact search on n={n}, p={p} may take very long");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = EnginePref::Auto;
    let mut validate = true;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => match it.next().as_deref().and_then(EnginePref::parse) {
                Some(pref) => engine = pref,
                None => return usage(),
            },
            "--no-validate" => validate = false,
            "-h" | "--help" => return usage(),
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let mut instances = Vec::new();
    for path in &paths {
        match read_instance(path) {
            Ok(instance) => instances.push(instance),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let registry = EngineRegistry::default();
    let mut failed = false;
    warn_if_slow(engine, &instances);
    if instances.len() == 1 {
        let request = SolveRequest::new(instances.into_iter().next().unwrap())
            .engine(engine)
            .validate_witness(validate);
        match registry.solve(&request) {
            Ok(report) => failed |= !print_report(&report),
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    } else {
        // Many instances: fan out across threads.
        let options = BatchOptions {
            engine,
            validate_witness: validate,
            ..BatchOptions::default()
        };
        for (path, result) in paths
            .iter()
            .zip(registry.solve_batch_with(&instances, &options))
        {
            println!("== {path} ==");
            match result {
                Ok(report) => failed |= !print_report(&report),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    failed = true;
                }
            }
            println!();
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
