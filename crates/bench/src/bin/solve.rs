//! `solve` — command-line solver for workflow mapping instances.
//!
//! Reads [`ProblemInstance`]s as JSON (file arguments or stdin), routes
//! them through the [`repliflow_solver::EngineRegistry`] — the paper's
//! polynomial algorithm on polynomial Table 1 cells, exhaustive search
//! on small NP-hard instances, heuristics beyond that, and the
//! communication-aware engines for instances carrying a network — and
//! prints the resulting [`SolveReport`]s.
//!
//! ```text
//! solve instance.json              # Table 1 auto-dispatch
//! solve --engine exact inst.json   # force exhaustive search (small only)
//! solve --engine heuristic i.json  # force the heuristic portfolio
//! solve --engine paper i.json      # paper algorithm or refuse
//! solve --engine comm-bb i.json    # force branch-and-bound (comm instances)
//! solve --comm one-port i.json     # general model, serialized sends
//! solve --comm multi-port --overlap --bandwidth 4 i.json
//! solve --quality thorough i.json  # escalate heuristics to long annealing
//! solve --json a.json b.json       # machine-readable reports (one array)
//! solve a.json b.json c.json       # parallel batch over many instances
//! solve --workers 4 *.json         # size the service worker pool
//! solve --cache a.json a.json      # LRU solve cache (repeats become hits)
//! solve --deadline-ms 50 a.json    # whole-invocation deadline: pre-start
//!                                  # gate + comm-bb time clamp
//! solve --hedge i.json             # race comm-bb vs comm-heuristic
//! solve --hedge-delay-ms 50 i.json # widen the proof grace window
//! solve --escalate a.json          # background thorough re-solve refreshes
//!                                  # the cache (implies --cache)
//! solve --cache-shards 4 a.json    # lock-striping of the solve cache
//! solve --stats *.json             # serving summary on stderr
//! solve --remote HOST:PORT a.json  # solve on a repliflow-serve daemon
//! cat inst.json | solve -
//! ```
//!
//! Every local solve goes through a [`SolverService`] (worker pool
//! sized by `--workers`, LRU cache enabled by `--cache`); `--stats`
//! prints the serving summary — cache hit rate, queue wait, latency
//! percentiles, per-engine wall time — to **stderr**, keeping stdout
//! snapshots and `--json` output stable.
//!
//! `--remote` ships the same requests to a `repliflow-serve` daemon
//! instead and renders the responses through the same report printer —
//! a remote solve's output is **identical** to the local output for the
//! same instance (the daemon returns the report's canonical JSON
//! verbatim). `--deadline-ms` maps onto the wire `deadline_ms` field;
//! `--stats` prints the daemon's metrics snapshot.
//!
//! `--comm` switches an instance to the general model of Sections
//! 3.2–3.3. Instances that already carry a `cost_model.WithComm` network
//! keep it (the flag sets the discipline; `--overlap` adds overlapped
//! sends, and an embedded `overlap: true` is preserved); simplified instances
//! get a uniform network with `--bandwidth` (default 1) on every link.
//!
//! Example instance:
//! ```json
//! {
//!   "workflow": { "Pipeline": { "weights": [14,4,2,4], "data_sizes": [0,0,0,0,0] } },
//!   "platform": { "speeds": [2,2,1,1] },
//!   "allow_data_parallel": true,
//!   "objective": "Period"
//! }
//! ```
//!
//! [`ProblemInstance`]: repliflow_core::instance::ProblemInstance
//! [`SolveReport`]: repliflow_solver::SolveReport
//! [`SolverService`]: repliflow_solver::SolverService

use repliflow_core::instance::{Complexity, CostModel, ProblemInstance};
use repliflow_serve::{RemoteClient, RemoteReport, RemoteSolveOptions};
use repliflow_solver::{
    BatchOptions, Budget, CommModel, Deadline, EnginePref, Network, Quality, ServiceStats,
    SolveReport, SolveRequest, SolverService,
};
use serde_json::Value;
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: solve [--engine auto|exact|heuristic|paper|comm-bb|hedged] [--no-validate] \
         [--comm one-port|multi-port] [--overlap] [--bandwidth B] \
         [--quality fast|balanced|thorough] [--workers N] [--deadline-ms D] \
         [--hedge] [--hedge-delay-ms W] [--escalate] \
         [--cache] [--cache-shards S] [--stats] [--json] [--remote HOST:PORT] \
         <instance.json ... | ->"
    );
    ExitCode::FAILURE
}

fn read_instance(path: &str) -> Result<ProblemInstance, String> {
    let json = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    // The streaming deserializer builds the instance straight off the
    // byte cursor — no intermediate `Value` tree — so multi-megabyte
    // instance files load in one near-linear pass.
    serde_json::from_str_streaming(&json)
        .map_err(|e| format!("invalid instance JSON in {path}: {e}"))
}

/// Applies the `--comm` / `--overlap` / `--bandwidth` flags: `--comm`
/// sets the send discipline (keeping an instance-supplied network, else
/// building a uniform one); `--overlap` additionally enables overlapped
/// fork sends. An instance's own `overlap: true` is never silently
/// downgraded — restating `--comm one-port` on a one-port instance is a
/// no-op.
fn apply_comm_flags(
    mut instance: ProblemInstance,
    comm: Option<CommModel>,
    overlap: bool,
    bandwidth: u64,
) -> ProblemInstance {
    match (comm, &mut instance.cost_model) {
        (
            Some(c),
            CostModel::WithComm {
                comm, overlap: o, ..
            },
        ) => {
            *comm = c;
            *o = *o || overlap;
        }
        (Some(c), cost_model @ CostModel::Simplified) => {
            *cost_model = CostModel::WithComm {
                network: Network::uniform(instance.platform.n_procs(), bandwidth),
                comm: c,
                overlap,
            };
        }
        (None, CostModel::WithComm { overlap: o, .. }) if overlap => *o = true,
        (None, _) => {}
    }
    instance
}

/// One report, flattened for rendering — the bridge that lets local
/// [`SolveReport`]s and remote [`RemoteReport`]s share one printer and
/// one `--json` encoder, so `--remote` output is identical to local
/// output by construction.
struct ReportFields {
    variant: String,
    cell: String,
    cost_model: String,
    comm_aware: bool,
    engine: String,
    optimality: String,
    /// Why auto-dispatch downgraded from the exact comm route, when it
    /// did (the `SolveReport::fallback` reason, rendered).
    fallback: Option<String>,
    provenance: String,
    search: Option<(u64, u64, u64, bool)>,
    mapping: Option<String>,
    /// `(exact rational, float rendering)`.
    period: Option<(String, f64)>,
    latency: Option<(String, f64)>,
    objective: Option<(String, f64)>,
    wall_time_ms: f64,
}

impl ReportFields {
    fn from_local(report: &SolveReport) -> ReportFields {
        let rat = |r: Option<repliflow_core::rational::Rat>| r.map(|v| (v.to_string(), v.to_f64()));
        ReportFields {
            variant: report.variant.to_string(),
            cell: match report.complexity {
                Complexity::Polynomial(thm) => format!("polynomial ({thm})"),
                Complexity::NpHard(thm) => format!("NP-hard ({thm})"),
            },
            cost_model: report.cost_model.to_string(),
            comm_aware: report.cost_model.is_comm_aware(),
            engine: report.engine_used.to_string(),
            optimality: report.optimality.to_string(),
            fallback: report.fallback.as_ref().map(|r| r.to_string()),
            provenance: report.provenance.to_string(),
            search: report
                .search
                .map(|s| (s.nodes, s.pruned_bound, s.pruned_dominated, s.completed)),
            mapping: report.mapping.as_ref().map(|m| m.to_string()),
            period: rat(report.period),
            latency: rat(report.latency),
            objective: rat(report.objective_value),
            wall_time_ms: report.wall_time.as_secs_f64() * 1e3,
        }
    }

    fn from_remote(report: &RemoteReport) -> ReportFields {
        let canonical = |name: &str| report.canonical_str(name).unwrap_or("?").to_string();
        let pair = |name: &str, f: Option<f64>| {
            Some((
                report.canonical_str(name)?.to_string(),
                f.unwrap_or(f64::NAN),
            ))
        };
        let cost_model = canonical("cost_model");
        ReportFields {
            variant: canonical("variant"),
            cell: report.cell.clone(),
            comm_aware: cost_model != "simplified",
            cost_model,
            engine: canonical("engine"),
            optimality: canonical("optimality"),
            fallback: report.canonical_str("fallback").map(str::to_string),
            provenance: report.provenance.clone(),
            search: report.search(),
            mapping: report.canonical_str("mapping").map(str::to_string),
            period: pair("period", report.period_f64),
            latency: pair("latency", report.latency_f64),
            objective: pair("objective", report.objective_f64),
            wall_time_ms: report.wall_time_ms,
        }
    }

    /// Prints the human-readable report; returns whether it represents
    /// a solved instance (an unattainable bound is reported, but counts
    /// as a failure for the process exit code).
    fn print(&self) -> bool {
        println!("instance : {}", self.variant);
        println!("cell     : {}", self.cell);
        if self.comm_aware {
            println!("model    : {}", self.cost_model);
        }
        println!("engine   : {}", self.engine);
        println!("optimal  : {}", self.optimality);
        // only instances beyond an exact-route cap carry a reason, so
        // the golden snapshots (all within caps) stay byte-stable
        if let Some(reason) = &self.fallback {
            println!("fallback : {reason}");
        }
        // only surfaced when a cache is in play, so cacheless snapshots
        // stay byte-stable
        if self.provenance == "cached" {
            println!("cache    : hit (served from the solve cache)");
        }
        if let Some((nodes, pruned_bound, pruned_dominated, completed)) = self.search {
            println!(
                "search   : {nodes} nodes ({pruned_bound} bound-pruned, {pruned_dominated} \
                 dominated), {}",
                if completed {
                    "exhausted"
                } else {
                    "budget-limited"
                }
            );
        }
        match (&self.mapping, &self.period, &self.latency) {
            (Some(mapping), Some((period, period_f)), Some((latency, latency_f))) => {
                println!("mapping  : {mapping}");
                println!("period   : {period} ({period_f:.6})");
                println!("latency  : {latency} ({latency_f:.6})");
                if let Some((objective, _)) = &self.objective {
                    println!("objective: {objective}");
                }
                if self.optimality == "infeasible" {
                    println!("status   : bound unattainable (best bound-violating witness shown)");
                } else {
                    println!("status   : feasible");
                }
            }
            _ => println!("status   : bound proven unattainable (no mapping exists)"),
        }
        self.optimality != "infeasible"
    }

    /// The report as a JSON object for `--json` mode (exact rationals
    /// as strings, floats for plotting, wall time for the perf
    /// trajectory).
    fn json(&self, path: &str) -> Value {
        let rat = |p: &Option<(String, f64)>| match p {
            Some((s, _)) => Value::String(s.clone()),
            None => Value::Null,
        };
        let ratf = |p: &Option<(String, f64)>| match p {
            Some((_, f)) => Value::Float(*f),
            None => Value::Null,
        };
        Value::Object(vec![
            ("file".into(), Value::String(path.to_string())),
            ("variant".into(), Value::String(self.variant.clone())),
            ("cell".into(), Value::String(self.cell.clone())),
            ("cost_model".into(), Value::String(self.cost_model.clone())),
            ("engine".into(), Value::String(self.engine.clone())),
            ("optimality".into(), Value::String(self.optimality.clone())),
            (
                "fallback".into(),
                match &self.fallback {
                    Some(reason) => Value::String(reason.clone()),
                    None => Value::Null,
                },
            ),
            ("provenance".into(), Value::String(self.provenance.clone())),
            ("period".into(), rat(&self.period)),
            ("period_f64".into(), ratf(&self.period)),
            ("latency".into(), rat(&self.latency)),
            ("latency_f64".into(), ratf(&self.latency)),
            ("objective".into(), rat(&self.objective)),
            ("objective_f64".into(), ratf(&self.objective)),
            (
                "search_nodes".into(),
                match self.search {
                    Some((nodes, ..)) => Value::Float(nodes as f64),
                    None => Value::Null,
                },
            ),
            (
                "search_completed".into(),
                match self.search {
                    Some((.., completed)) => Value::Bool(completed),
                    None => Value::Null,
                },
            ),
            ("wall_time_ms".into(), Value::Float(self.wall_time_ms)),
        ])
    }
}

/// `--stats` aggregate of auto-dispatch downgrades: one line per
/// distinct reason, counted — the serving-side view of the structured
/// [`SolveReport::fallback`] field.
fn print_fallbacks(fallbacks: &[String]) {
    if fallbacks.is_empty() {
        return;
    }
    let mut counts: Vec<(&String, usize)> = Vec::new();
    for reason in fallbacks {
        match counts.iter_mut().find(|(r, _)| *r == reason) {
            Some((_, n)) => *n += 1,
            None => counts.push((reason, 1)),
        }
    }
    eprintln!(
        "fallback  : {} auto downgrade{} to the heuristic",
        fallbacks.len(),
        if fallbacks.len() == 1 { "" } else { "s" }
    );
    for (reason, count) in counts {
        eprintln!("            {count}x {reason}");
    }
}

/// `--stats`: the serving summary, on stderr so stdout stays
/// machine-readable (`--json`) and snapshot-stable.
fn print_stats(service: &SolverService, stats: &ServiceStats) {
    eprintln!("== service stats ==");
    eprintln!(
        "requests  : {} ({} computed, {} cached, {} errors; hit rate {:.1}%)",
        stats.requests,
        stats.computed,
        stats.cache_hits,
        stats.errors,
        stats.hit_rate() * 100.0
    );
    eprintln!(
        "pool      : {} workers, {} jobs, queue wait {:.3} ms total, utilization {:.1}%",
        service.pool_size(),
        stats.jobs_executed,
        stats.queue_wait.as_secs_f64() * 1e3,
        stats.worker_utilization * 100.0
    );
    let us = |d: Option<std::time::Duration>| match d {
        Some(d) => format!("{:.3} ms", d.as_secs_f64() * 1e3),
        None => "-".to_string(),
    };
    eprintln!(
        "latency   : p50 {}, p95 {}, p99 {}, max {} over {} serves",
        us(stats.latency.p50),
        us(stats.latency.p95),
        us(stats.latency.p99),
        us(stats.latency.max),
        stats.latency.count
    );
    for engine in &stats.per_engine {
        eprintln!(
            "engine    : {:<14} {:>9.3} ms across {} solve{}",
            engine.engine,
            engine.wall.as_secs_f64() * 1e3,
            engine.solves,
            if engine.solves == 1 { "" } else { "s" }
        );
    }
    // hedge/escalation lines appear only when the machinery ran, so
    // plain invocations keep their historical stats output
    if stats.hedge.races > 0 {
        eprintln!(
            "hedge     : {} races ({} primary wins, {} secondary wins, {} losers cancelled, \
             {} window rescues)",
            stats.hedge.races,
            stats.hedge.primary_wins,
            stats.hedge.secondary_wins,
            stats.hedge.losers_cancelled,
            stats.hedge.window_rescues
        );
    }
    let esc = &stats.escalation;
    if esc.scheduled + esc.shed > 0 {
        eprintln!(
            "escalation: {} scheduled ({} refreshed, {} unimproved, {} failed), {} shed",
            esc.scheduled, esc.refreshed, esc.unimproved, esc.failed, esc.shed
        );
    }
}

/// Warns when a forced exhaustive search exceeds the auto-dispatch
/// size threshold (it will still run — possibly for a very long time).
fn warn_if_slow(engine: EnginePref, instances: &[ProblemInstance]) {
    if engine != EnginePref::Exact {
        return;
    }
    let budget = Budget::default();
    for instance in instances {
        let (n, p) = (instance.workflow.n_stages(), instance.platform.n_procs());
        let allowed = if instance.cost_model.is_comm_aware() {
            budget.allows_comm_exact(n, p)
        } else {
            budget.allows_exact(n, p)
        };
        if !allowed {
            eprintln!("warning: exact search on n={n}, p={p} may take very long");
        }
    }
}

/// `--remote`: ship every instance to a `repliflow-serve` daemon over
/// one connection and render the responses through the same printers as
/// local solves.
fn run_remote(
    addr: &str,
    paths: &[String],
    instances: Vec<ProblemInstance>,
    options: &RemoteSolveOptions,
    json: bool,
    stats: bool,
) -> ExitCode {
    let mut client = match RemoteClient::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    let single = instances.len() == 1;
    let mut items = Vec::new();
    let mut fallbacks: Vec<String> = Vec::new();
    for (path, instance) in paths.iter().zip(instances) {
        if !single && !json {
            println!("== {path} ==");
        }
        match client.solve(&instance, options) {
            Ok(report) => {
                let fields = ReportFields::from_remote(&report);
                fallbacks.extend(fields.fallback.clone());
                if json {
                    failed |= fields.optimality == "infeasible";
                    items.push(fields.json(path));
                } else {
                    failed |= !fields.print();
                }
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                failed = true;
            }
        }
        if !single && !json {
            println!();
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&Value::Array(items))
                .expect("report serialization is infallible")
        );
    }
    if stats {
        match client.stats() {
            Ok(snapshot) => {
                eprintln!("== daemon stats ==");
                eprintln!(
                    "{}",
                    serde_json::to_string_pretty(&snapshot)
                        .expect("snapshot serialization is infallible")
                );
            }
            Err(e) => {
                eprintln!("error: stats: {e}");
                failed = true;
            }
        }
        print_fallbacks(&fallbacks);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = EnginePref::Auto;
    let mut validate = true;
    let mut json = false;
    let mut comm: Option<CommModel> = None;
    let mut overlap = false;
    let mut bandwidth = 1u64;
    let mut quality = Quality::Balanced;
    let mut workers: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut hedge_delay_ms: Option<u64> = None;
    let mut escalate = false;
    let mut cache = false;
    let mut cache_shards: Option<usize> = None;
    let mut stats = false;
    let mut remote: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => match it.next().as_deref().and_then(EnginePref::parse) {
                Some(pref) => engine = pref,
                None => return usage(),
            },
            "--comm" => match it.next().as_deref().and_then(CommModel::parse) {
                Some(model) => comm = Some(model),
                None => return usage(),
            },
            "--quality" => match it.next().as_deref().and_then(Quality::parse) {
                Some(q) => quality = q,
                None => return usage(),
            },
            "--bandwidth" => match it.next().as_deref().and_then(|b| b.parse().ok()) {
                Some(b) if b > 0 => bandwidth = b,
                _ => return usage(),
            },
            "--workers" => match it.next().as_deref().and_then(|w| w.parse().ok()) {
                Some(w) if w > 0 => workers = Some(w),
                _ => return usage(),
            },
            "--deadline-ms" => match it.next().as_deref().and_then(|d| d.parse().ok()) {
                Some(d) => deadline_ms = Some(d),
                None => return usage(),
            },
            "--hedge-delay-ms" => match it.next().as_deref().and_then(|d| d.parse().ok()) {
                Some(d) => hedge_delay_ms = Some(d),
                None => return usage(),
            },
            "--cache-shards" => match it.next().as_deref().and_then(|s| s.parse().ok()) {
                Some(s) if s > 0 => cache_shards = Some(s),
                _ => return usage(),
            },
            "--remote" => match it.next() {
                Some(addr) => remote = Some(addr),
                None => return usage(),
            },
            "--hedge" => engine = EnginePref::Hedged,
            "--escalate" => escalate = true,
            "--cache" => cache = true,
            "--stats" => stats = true,
            "--overlap" => overlap = true,
            "--no-validate" => validate = false,
            "--json" => json = true,
            "-h" | "--help" => return usage(),
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let mut instances = Vec::new();
    for path in &paths {
        match read_instance(path) {
            Ok(instance) => instances.push(apply_comm_flags(instance, comm, overlap, bandwidth)),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    warn_if_slow(engine, &instances);

    if let Some(addr) = remote {
        let options = RemoteSolveOptions {
            engine,
            quality,
            validate,
            deadline_ms,
        };
        return run_remote(&addr, &paths, instances, &options, json, stats);
    }

    let mut budget = Budget::default().quality(quality);
    if let Some(ms) = hedge_delay_ms {
        budget = budget.hedge_delay_ms(ms);
    }
    // escalation refreshes cache entries, so it needs the cache
    let cache = cache || escalate;
    let mut builder = SolverService::builder()
        .default_budget(budget)
        .escalation(escalate);
    if let Some(workers) = workers {
        builder = builder.workers(workers);
    }
    if let Some(shards) = cache_shards {
        builder = builder.cache_shards(shards);
    }
    if !cache {
        builder = builder.no_cache();
    }
    let service = builder.build();
    let deadline = deadline_ms.map(Deadline::in_ms);
    let mut failed = false;
    let mut fallbacks: Vec<String> = Vec::new();
    if instances.len() == 1 && !json {
        let mut request = SolveRequest::new(instances.into_iter().next().unwrap())
            .engine(engine)
            .budget(budget)
            .validate_witness(validate);
        request.deadline = deadline;
        match service.solve(&request) {
            Ok(report) => {
                let fields = ReportFields::from_local(&report);
                fallbacks.extend(fields.fallback.clone());
                failed |= !fields.print();
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    } else {
        // Many instances (or machine-readable mode): fan out across the
        // service's persistent worker pool.
        let options = BatchOptions {
            engine,
            budget,
            validate_witness: validate,
            deadline,
            ..BatchOptions::default()
        };
        let results = service.solve_batch_with(&instances, &options);
        if json {
            let mut items = Vec::new();
            for (path, result) in paths.iter().zip(&results) {
                match result {
                    Ok(report) => {
                        failed |= report.optimality == repliflow_solver::Optimality::Infeasible;
                        let fields = ReportFields::from_local(report);
                        fallbacks.extend(fields.fallback.clone());
                        items.push(fields.json(path));
                    }
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        failed = true;
                    }
                }
            }
            println!(
                "{}",
                serde_json::to_string_pretty(&Value::Array(items))
                    .expect("report serialization is infallible")
            );
        } else {
            for (path, result) in paths.iter().zip(results) {
                println!("== {path} ==");
                match result {
                    Ok(report) => {
                        let fields = ReportFields::from_local(&report);
                        fallbacks.extend(fields.fallback.clone());
                        failed |= !fields.print();
                    }
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        failed = true;
                    }
                }
                println!();
            }
        }
    }
    if escalate {
        // let in-flight background re-solves finish before the process
        // exits (and before their counters are reported)
        service.drain_escalations();
    }
    if stats {
        print_stats(&service, &service.stats());
        print_fallbacks(&fallbacks);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
