//! `solve` — command-line solver for workflow mapping instances.
//!
//! Reads a [`ProblemInstance`] as JSON (from a file argument or stdin),
//! classifies it into its Table 1 cell, picks an appropriate engine, and
//! prints the solution (mapping, period, latency) plus the cell's
//! complexity classification.
//!
//! ```text
//! solve instance.json            # auto engine
//! solve --engine exact inst.json # force exhaustive search (small only)
//! solve --engine heuristic i.json
//! cat inst.json | solve -
//! ```
//!
//! Example instance:
//! ```json
//! {
//!   "workflow": { "Pipeline": { "weights": [14,4,2,4], "data_sizes": [0,0,0,0,0] } },
//!   "platform": { "speeds": [2,2,1,1] },
//!   "allow_data_parallel": true,
//!   "objective": "Period"
//! }
//! ```

use repliflow_core::instance::{Complexity, Objective, ProblemInstance};
use repliflow_core::mapping::{Mapping, Mode};
use repliflow_core::workflow::Workflow;
use std::io::Read;
use std::process::ExitCode;

enum Engine {
    Auto,
    Exact,
    Heuristic,
}

fn usage() -> ExitCode {
    eprintln!("usage: solve [--engine auto|exact|heuristic] <instance.json | ->");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = Engine::Auto;
    let mut path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => {
                engine = match it.next().as_deref() {
                    Some("auto") => Engine::Auto,
                    Some("exact") => Engine::Exact,
                    Some("heuristic") => Engine::Heuristic,
                    _ => return usage(),
                }
            }
            "-h" | "--help" => return usage(),
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else { return usage() };

    let json = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: cannot read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let instance: ProblemInstance = match serde_json::from_str(&json) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: invalid instance JSON: {e}");
            return ExitCode::FAILURE;
        }
    };

    let variant = instance.variant();
    let complexity = variant.paper_complexity();
    println!("instance : {variant}");
    match complexity {
        Complexity::Polynomial(thm) => println!("cell     : polynomial ({thm})"),
        Complexity::NpHard(thm) => println!("cell     : NP-hard ({thm})"),
    }

    let n = instance.workflow.n_stages();
    let p = instance.platform.n_procs();
    let small = n <= 10 && p <= 12;
    let use_exact = match engine {
        Engine::Exact => true,
        Engine::Heuristic => false,
        Engine::Auto => small,
    };

    let mapping: Option<Mapping> = if use_exact {
        if !small {
            eprintln!("warning: exact search on n={n}, p={p} may take very long");
        }
        println!("engine   : exact (exhaustive Pareto search)");
        repliflow_exact::solve(&instance).map(|s| s.mapping)
    } else {
        println!("engine   : heuristic");
        match (&instance.workflow, instance.objective) {
            (Workflow::Pipeline(pipe), Objective::Period) => Some(
                repliflow_heuristics::greedy::pipeline_period_greedy(pipe, &instance.platform),
            ),
            (Workflow::Pipeline(pipe), _) => {
                let start = Mapping::whole(
                    pipe.n_stages(),
                    instance.platform.procs().collect(),
                    Mode::Replicated,
                );
                Some(repliflow_heuristics::local_search::improve(
                    pipe,
                    &instance.platform,
                    instance.allow_data_parallel,
                    instance.objective,
                    start,
                    200,
                ))
            }
            (Workflow::Fork(fork), _) => Some(repliflow_heuristics::greedy::fork_latency_greedy(
                fork,
                &instance.platform,
            )),
            (Workflow::ForkJoin(_), _) => {
                eprintln!("error: no fork-join heuristic; use --engine exact");
                None
            }
        }
    };

    let Some(mapping) = mapping else {
        eprintln!("no solution (infeasible bound or unsupported combination)");
        return ExitCode::FAILURE;
    };
    let period = instance
        .workflow
        .period(&instance.platform, &mapping)
        .expect("engine mappings are valid");
    let latency = instance
        .workflow
        .latency(&instance.platform, &mapping)
        .expect("engine mappings are valid");
    println!("mapping  : {mapping}");
    println!("period   : {period} ({:.6})", period.to_f64());
    println!("latency  : {latency} ({:.6})", latency.to_f64());
    match instance.objective {
        Objective::LatencyUnderPeriod(b) if period > b => {
            println!("status   : VIOLATES period bound {b}");
        }
        Objective::PeriodUnderLatency(b) if latency > b => {
            println!("status   : VIOLATES latency bound {b}");
        }
        _ => println!("status   : feasible"),
    }
    ExitCode::SUCCESS
}
