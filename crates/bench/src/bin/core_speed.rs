//! `core_speed` — raw-speed trend for the wide-mask core refactor:
//! comm-bb wall time at the old cap and beyond it, parallel root-branch
//! speedup, and multi-megabyte instance-parse time.
//!
//! Prints one JSON object to stdout — CI's bench-smoke job stores it as
//! `BENCH_pr_core.json` next to the other perf artifacts — and enforces
//! the PR's acceptance bars as hard process-exit gates:
//!
//! 1. **No p ≤ 32 regression**: the search at the `u64` mask width (the
//!    new default dispatch for small instances) must stay within 10% of
//!    the `u32` width it replaced, measured on the same p = 8 baseline
//!    instance. The generic mask must cost nothing where the old cap
//!    sufficed.
//! 2. **p = 33 proves**: a homogeneous 33-processor comm pipeline —
//!    rejected outright by the pre-lift `u32` masks — solves to proven
//!    optimality through the registry under the default budget.
//! 3. **Parallel root-branch ≥ 1.5×** (on runners with ≥ 4 cores): the
//!    parallel search beats the sequential one by at least 1.5× on a
//!    search-heavy instance, with a byte-identical proven result.
//!
//! ```text
//! core_speed             # full profile
//! core_speed --quick     # CI smoke profile (fewer timing repeats)
//! ```

use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_exact::{solve_comm_bb_with_mask, BbLimits, BbResult, Mask128};
use repliflow_solver::{CommModel, EngineRegistry, Network, Optimality, SolveRequest};
use serde_json::Value;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!("usage: core_speed [--quick]");
    ExitCode::FAILURE
}

/// The p = 8 baseline: the differential suite's "twice the enumeration
/// guard" acceptance instance — big enough that the search does real
/// work, small enough to fit every mask width.
fn p8_baseline() -> ProblemInstance {
    let mut gen = Gen::new(0xACCE);
    ProblemInstance {
        workflow: repliflow_core::workflow::Pipeline::with_data_sizes(
            gen.positive_ints(10, 1, 20),
            gen.positive_ints(11, 0, 10),
        )
        .into(),
        platform: gen.het_platform(8, 1, 6),
        allow_data_parallel: true,
        objective: Objective::Period,
        cost_model: CostModel::WithComm {
            network: Network::uniform(8, 3),
            comm: CommModel::OnePort,
            overlap: true,
        },
    }
}

/// The capacity-lift witness: homogeneous p = 33 — one symmetry class,
/// so the search is narrow, but representable only with wide masks.
fn p33_instance() -> ProblemInstance {
    ProblemInstance {
        workflow: repliflow_core::workflow::Pipeline::with_data_sizes(vec![3, 5], vec![1, 1, 1])
            .into(),
        platform: repliflow_core::platform::Platform::homogeneous(33, 1),
        allow_data_parallel: false,
        objective: Objective::Period,
        cost_model: CostModel::WithComm {
            network: Network::uniform(33, 1),
            comm: CommModel::OnePort,
            overlap: true,
        },
    }
}

/// A search-heavy instance for the parallel-speedup bar: heterogeneous
/// enough that the root branches carry comparable subtree weight.
fn parallel_workload() -> ProblemInstance {
    let mut gen = Gen::new(0xBEEF);
    ProblemInstance {
        workflow: repliflow_core::workflow::Pipeline::with_data_sizes(
            gen.positive_ints(11, 1, 25),
            gen.positive_ints(12, 1, 12),
        )
        .into(),
        platform: gen.het_platform(8, 1, 7),
        allow_data_parallel: true,
        objective: Objective::Latency,
        cost_model: CostModel::WithComm {
            network: gen.het_network(8, 1, 4),
            comm: CommModel::BoundedMultiPort,
            overlap: false,
        },
    }
}

/// Wall time of the fastest of `repeats` runs — the standard noise
/// filter for single-digit-percent regression gates.
fn best_of<F: FnMut() -> BbResult>(repeats: usize, mut run: F) -> (f64, BbResult) {
    let mut best_ms = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = run();
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(out);
    }
    (best_ms, result.expect("repeats >= 1"))
}

/// Exhaustive-only limits: no time cap, so every measured run does
/// identical work.
fn limits(parallelism: usize) -> BbLimits {
    BbLimits {
        max_nodes: u64::MAX,
        time_limit: None,
        parallelism,
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            _ => return usage(),
        }
    }
    let repeats = if quick { 3 } else { 5 };
    let mut fields: Vec<(String, Value)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // ---- gate 1: the p <= 32 path must not regress across the lift ----
    let baseline = p8_baseline();
    let (u32_ms, u32_result) = best_of(repeats, || {
        solve_comm_bb_with_mask::<u32>(&baseline, None, &limits(1))
    });
    let (u64_ms, u64_result) = best_of(repeats, || {
        solve_comm_bb_with_mask::<u64>(&baseline, None, &limits(1))
    });
    let (m128_ms, m128_result) = best_of(repeats, || {
        solve_comm_bb_with_mask::<Mask128>(&baseline, None, &limits(1))
    });
    assert!(u32_result.stats.completed, "p8 baseline must be provable");
    assert_eq!(u32_result.best, u64_result.best, "mask widths diverged");
    assert_eq!(u64_result.best, m128_result.best, "mask widths diverged");
    fields.push((
        "p8_nodes".into(),
        Value::Int(u64_result.stats.nodes as i128),
    ));
    fields.push(("p8_u32_ms".into(), Value::Float(u32_ms)));
    fields.push(("p8_u64_ms".into(), Value::Float(u64_ms)));
    fields.push(("p8_mask128_ms".into(), Value::Float(m128_ms)));
    if u64_ms > u32_ms * 1.10 {
        failures.push(format!(
            "p <= 32 regression: u64 masks {u64_ms:.1} ms > 1.10 x u32 masks {u32_ms:.1} ms"
        ));
    }

    // ---- gate 2: p = 33 proves through the registry default budget ----
    let registry = EngineRegistry::default();
    let start = Instant::now();
    let p33 = registry
        .solve(&SolveRequest::new(p33_instance()))
        .expect("p33 comm instance solves");
    let p33_ms = start.elapsed().as_secs_f64() * 1e3;
    fields.push(("p33_wall_ms".into(), Value::Float(p33_ms)));
    fields.push((
        "p33_engine".into(),
        Value::String(p33.engine_used.to_string()),
    ));
    fields.push((
        "p33_proven".into(),
        Value::Bool(p33.optimality == Optimality::Proven),
    ));
    if p33.engine_used != "comm-bb" || p33.optimality != Optimality::Proven {
        failures.push(format!(
            "p = 33 must prove through comm-bb (got {} / {})",
            p33.engine_used, p33.optimality
        ));
    }

    // ---- gate 3: parallel root branches >= 1.5x, identical result ----
    let workload = parallel_workload();
    let workers = repliflow_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (seq_ms, seq) = best_of(repeats, || {
        solve_comm_bb_with_mask::<u64>(&workload, None, &limits(1))
    });
    let (par_ms, par) = best_of(repeats, || {
        solve_comm_bb_with_mask::<u64>(&workload, None, &limits(workers))
    });
    assert!(seq.stats.completed && par.stats.completed);
    let speedup = seq_ms / par_ms;
    fields.push(("parallel_workers".into(), Value::Int(workers as i128)));
    fields.push(("parallel_seq_ms".into(), Value::Float(seq_ms)));
    fields.push(("parallel_par_ms".into(), Value::Float(par_ms)));
    fields.push(("parallel_speedup".into(), Value::Float(speedup)));
    fields.push((
        "parallel_identical".into(),
        Value::Bool(seq.best == par.best),
    ));
    if seq.best != par.best {
        failures.push("parallel result diverged from sequential".into());
    }
    // single/dual-core runners can't demonstrate a 1.5x parallel win —
    // report the speedup there, gate it where the hardware allows
    if workers >= 4 && speedup < 1.5 {
        failures.push(format!(
            "parallel root-branch speedup {speedup:.2}x < 1.5x on {workers} cores"
        ));
    }

    // ---- multi-MB parse: streaming vs tree (trend, not a gate) ----
    let mut gen = Gen::new(0x9A85);
    let p = 1100;
    let big = ProblemInstance {
        workflow: repliflow_core::workflow::Pipeline::with_data_sizes(
            gen.positive_ints(48, 1, 50),
            gen.positive_ints(49, 0, 20),
        )
        .into(),
        platform: gen.het_platform(p, 1, 9),
        allow_data_parallel: true,
        objective: Objective::Latency,
        cost_model: CostModel::WithComm {
            network: gen.het_network(p, 1, 9),
            comm: CommModel::OnePort,
            overlap: true,
        },
    };
    let json = serde_json::to_string(&big).expect("serializes");
    assert!(json.len() > 2_000_000, "parse workload must be multi-MB");
    let mut tree_ms = f64::INFINITY;
    let mut stream_ms = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        let tree: ProblemInstance = serde_json::from_str(&json).expect("tree parse");
        tree_ms = tree_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let streamed: ProblemInstance =
            serde_json::from_str_streaming(&json).expect("streaming parse");
        stream_ms = stream_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(tree, streamed, "parse paths disagree");
    }
    fields.push(("parse_bytes".into(), Value::Int(json.len() as i128)));
    fields.push(("parse_tree_ms".into(), Value::Float(tree_ms)));
    fields.push(("parse_streaming_ms".into(), Value::Float(stream_ms)));
    fields.push(("parse_speedup".into(), Value::Float(tree_ms / stream_ms)));

    println!(
        "{}",
        serde_json::to_string_pretty(&Value::Object(fields)).expect("report serializes")
    );
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        ExitCode::FAILURE
    }
}
