//! Regenerates **Table 1** of the paper with empirical verification of
//! every cell.
//!
//! * Polynomial cells: the theorem's algorithm is run against the
//!   exhaustive exact oracle on randomized small instances; the cell is
//!   confirmed when every optimum matches.
//! * NP-hard cells: the reduction is exercised in both directions on
//!   planted yes/no source instances; the cell is confirmed when the
//!   decision bound is achievable exactly on the yes side and unreachable
//!   on the no side.
//!
//! Output: the paper's two sub-tables with a verification status per cell.

use repliflow_bench::config::{SEED, TABLE1_SAMPLES};
use repliflow_core::gen::Gen;
use repliflow_core::rational::Rat;
use repliflow_exact as exact;
use repliflow_exact::Goal;
use repliflow_reductions::{thm12, thm13, thm15, thm5, thm9, N3dm, TwoPartition};

/// Verification outcome of one Table 1 cell.
struct Cell {
    label: &'static str,
    verdict: String,
}

fn check(ok: bool, what: &str) -> String {
    if ok {
        format!("{what} ✓")
    } else {
        format!("{what} ✗ MISMATCH")
    }
}

/// Polynomial pipeline cells on homogeneous platforms (Theorems 1-4).
fn hom_platform_pipeline_cells(gen: &mut Gen) -> Vec<Cell> {
    use repliflow_algorithms::hom_pipeline as alg;
    let mut ok_p = true;
    let mut ok_l_nodp = true;
    let mut ok_l_dp = true;
    let mut ok_bi = true;
    for _ in 0..TABLE1_SAMPLES {
        let n = gen.size(1, 5);
        let p = gen.size(1, 4);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.hom_platform(p, 1, 4);
        let sol = alg::min_period(&pipe, &plat);
        ok_p &= sol.period
            == exact::solve_pipeline(&pipe, &plat, true, Goal::MinPeriod)
                .unwrap()
                .period;
        ok_l_nodp &= alg::min_latency_no_dp(&pipe, &plat).latency
            == exact::solve_pipeline(&pipe, &plat, false, Goal::MinLatency)
                .unwrap()
                .latency;
        ok_l_dp &= alg::min_latency_dp(&pipe, &plat).latency
            == exact::solve_pipeline(&pipe, &plat, true, Goal::MinLatency)
                .unwrap()
                .latency;
        let frontier = exact::pareto_pipeline(&pipe, &plat, true);
        for point in frontier.points() {
            ok_bi &= alg::min_latency_under_period(&pipe, &plat, point.period)
                .is_some_and(|s| s.latency == point.latency);
        }
    }
    vec![
        Cell {
            label: "pipeline / Hom. / P (both models): Poly, Thm 1",
            verdict: check(ok_p, "replicate-all == exact"),
        },
        Cell {
            label: "pipeline / Hom. / L without data-par: Poly, Thm 2",
            verdict: check(ok_l_nodp, "any mapping == exact"),
        },
        Cell {
            label: "pipeline / Hom. / L with data-par: Poly (DP), Thm 3",
            verdict: check(ok_l_dp, "DP == exact"),
        },
        Cell {
            label: "pipeline / Hom. / both with data-par: Poly (DP), Thm 4",
            verdict: check(ok_bi, "bi-criteria DP == exact frontier"),
        },
    ]
}

/// Polynomial cells on heterogeneous platforms (Theorems 6-8, 14).
fn het_platform_poly_cells(gen: &mut Gen) -> Vec<Cell> {
    use repliflow_algorithms::{het_fork, het_pipeline};
    let mut ok_l = true;
    let mut ok_p_uniform = true;
    let mut ok_bi = true;
    let mut ok_fork = true;
    for _ in 0..TABLE1_SAMPLES {
        let n = gen.size(1, 5);
        let p = gen.size(1, 4);
        let pipe = gen.pipeline(n, 1, 12);
        let upipe = gen.uniform_pipeline(n, 1, 10);
        let plat = gen.het_platform(p, 1, 5);
        ok_l &= het_pipeline::min_latency_no_dp(&pipe, &plat).latency
            == exact::solve_pipeline(&pipe, &plat, false, Goal::MinLatency)
                .unwrap()
                .latency;
        ok_p_uniform &= het_pipeline::min_period_uniform(&upipe, &plat).period
            == exact::solve_pipeline(&upipe, &plat, false, Goal::MinPeriod)
                .unwrap()
                .period;
        let frontier = exact::pareto_pipeline(&upipe, &plat, false);
        for point in frontier.points() {
            ok_bi &= het_pipeline::min_latency_under_period_uniform(&upipe, &plat, point.period)
                .is_some_and(|s| s.latency == point.latency);
        }
        let leaves = gen.size(0, 4);
        let fork = gen.uniform_fork(leaves, 1, 10);
        ok_fork &= het_fork::min_period_uniform(&fork, &plat).period
            == exact::solve_fork(&fork, &plat, false, Goal::MinPeriod)
                .unwrap()
                .period;
        ok_fork &= het_fork::min_latency_uniform(&fork, &plat).latency
            == exact::solve_fork(&fork, &plat, false, Goal::MinLatency)
                .unwrap()
                .latency;
    }
    vec![
        Cell {
            label: "pipeline / Het. / L without data-par: Poly (str), Thm 6",
            verdict: check(ok_l, "fastest-processor == exact"),
        },
        Cell {
            label: "Hom. pipeline / Het. / P without data-par: Poly (*), Thm 7",
            verdict: check(ok_p_uniform, "binary search + DP == exact"),
        },
        Cell {
            label: "Hom. pipeline / Het. / both without data-par: Poly (*), Thm 8",
            verdict: check(ok_bi, "bi-criteria DP == exact frontier"),
        },
        Cell {
            label: "Hom. fork / Het. / all objectives without data-par: Poly (*), Thm 14",
            verdict: check(ok_fork, "binary search + DP == exact"),
        },
    ]
}

/// Polynomial fork cells on homogeneous platforms (Theorems 10-11).
fn hom_platform_fork_cells(gen: &mut Gen) -> Vec<Cell> {
    use repliflow_algorithms::hom_fork;
    let mut ok_p = true;
    let mut ok_l = true;
    for _ in 0..TABLE1_SAMPLES {
        let leaves = gen.size(0, 4);
        let p = gen.size(1, 4);
        let fork = gen.fork(leaves, 1, 10);
        let ufork = gen.uniform_fork(leaves, 1, 10);
        let plat = gen.hom_platform(p, 1, 4);
        ok_p &= hom_fork::min_period(&fork, &plat).period
            == exact::solve_fork(&fork, &plat, true, Goal::MinPeriod)
                .unwrap()
                .period;
        for allow_dp in [false, true] {
            ok_l &= hom_fork::min_latency(&ufork, &plat, allow_dp).latency
                == exact::solve_fork(&ufork, &plat, allow_dp, Goal::MinLatency)
                    .unwrap()
                    .latency;
        }
    }
    vec![
        Cell {
            label: "fork / Hom. / P (both models): Poly (str), Thm 10",
            verdict: check(ok_p, "replicate-all == exact"),
        },
        Cell {
            label: "Hom. fork / Hom. / L+both (both models): Poly (DP), Thm 11",
            verdict: check(ok_l, "shape enumeration == exact"),
        },
    ]
}

/// NP-hard cells: reduction roundtrips.
fn np_hard_cells(gen: &mut Gen) -> Vec<Cell> {
    // Theorem 5 (and 13, same gadget family)
    let mut ok5 = true;
    let mut ok13 = true;
    for _ in 0..6 {
        let tp = TwoPartition::random_yes(gen, 2, 7);
        let subset = tp.solve().unwrap();
        let r5 = thm5::reduce(&tp);
        let m = thm5::certificate_mapping(&tp, &subset);
        ok5 &= r5.pipeline.latency(&r5.platform, &m).unwrap() == r5.latency_bound;
        ok5 &= r5.pipeline.period(&r5.platform, &m).unwrap() == r5.period_bound;
        if subset.len() < tp.values.len() {
            let r13 = thm13::reduce(&tp);
            let m = thm13::certificate_mapping(&tp, &subset);
            ok13 &= r13.fork.latency(&r13.platform, &m).unwrap() == r13.latency_bound;
        }
    }
    // Theorem 9 (N3DM)
    let mut ok9 = true;
    for _ in 0..4 {
        let inst = N3dm::random_yes(gen, 2, 8);
        let matching = inst.solve().unwrap();
        let r = thm9::reduce(&inst);
        let m = thm9::certificate_mapping(&inst, &matching);
        ok9 &= r.pipeline.period(&r.platform, &m).unwrap() == Rat::ONE;
    }
    // no-direction via exact solver on a tiny instance
    if let Some(no) = N3dm::random_no(gen, 2, 6) {
        let r = thm9::reduce(&no);
        let best = exact::solve_pipeline(&r.pipeline, &r.platform, false, Goal::MinPeriod)
            .unwrap();
        ok9 &= best.period > Rat::ONE;
    }
    // Theorems 12 and 15
    let mut ok12 = true;
    let mut ok15 = true;
    for _ in 0..6 {
        let tp = TwoPartition::random_yes(gen, 3, 7);
        let subset = tp.solve().unwrap();
        let r = thm12::reduce(&tp);
        let m = thm12::certificate_mapping(&tp, &subset);
        ok12 &= r.fork.latency(&r.platform, &m).unwrap() == r.latency_bound;
        let r = thm15::reduce(&tp);
        let m = thm15::certificate_mapping(&tp, &subset);
        ok15 &= r.fork.period(&r.platform, &m).unwrap() == r.period_bound;

        let tp = TwoPartition::random_no(gen, 2, 7);
        let r = thm12::reduce(&tp);
        let best =
            exact::solve_fork(&r.fork, &r.platform, false, Goal::MinLatency).unwrap();
        ok12 &= best.latency > r.latency_bound;
        let r = thm15::reduce(&tp);
        let best =
            exact::solve_fork(&r.fork, &r.platform, false, Goal::MinPeriod).unwrap();
        ok15 &= best.period > r.period_bound;
    }
    vec![
        Cell {
            label: "Hom. pipeline / Het. / with data-par: NP-hard, Thm 5",
            verdict: check(ok5, "2-PARTITION reduction roundtrip"),
        },
        Cell {
            label: "Het. pipeline / Het. / P without data-par: NP-hard (**), Thm 9",
            verdict: check(ok9, "N3DM reduction roundtrip"),
        },
        Cell {
            label: "Het. fork / Hom. / L (both models): NP-hard, Thm 12",
            verdict: check(ok12, "2-PARTITION reduction roundtrip"),
        },
        Cell {
            label: "Hom. fork / Het. / with data-par: NP-hard, Thm 13",
            verdict: check(ok13, "2-PARTITION reduction roundtrip"),
        },
        Cell {
            label: "Het. fork / Het. / all objectives: NP-hard, Thm 15",
            verdict: check(ok15, "2-PARTITION reduction roundtrip"),
        },
    ]
}

fn main() {
    let mut gen = Gen::new(SEED);
    println!("Table 1 — Complexity results for the different instances of the mapping problem");
    println!("(paper classification + empirical verification on seeded random instances)\n");

    println!("== Homogeneous platforms ==");
    for cell in hom_platform_pipeline_cells(&mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }
    for cell in hom_platform_fork_cells(&mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }

    println!("\n== Heterogeneous platforms ==");
    for cell in het_platform_poly_cells(&mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }

    println!("\n== NP-hard cells (both platforms) ==");
    for cell in np_hard_cells(&mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }

    println!("\nEvery polynomial entry was checked against the exhaustive oracle on");
    println!("{TABLE1_SAMPLES} random instances per cell; every NP-hard entry via its reduction");
    println!("in both directions. See EXPERIMENTS.md for the full methodology.");
}
