//! Regenerates **Table 1** of the paper with empirical verification of
//! every cell, entirely through the unified
//! [`repliflow_solver::EngineRegistry`] API:
//!
//! * Polynomial cells: the registry's `paper` route (the theorem's
//!   algorithm) is compared against its `exact` route (exhaustive
//!   oracle) on randomized small instances; the cell is confirmed when
//!   every optimum matches.
//! * NP-hard cells: the reduction is exercised in both directions on
//!   planted yes/no source instances; the cell is confirmed when the
//!   decision bound is achievable exactly on the yes side and
//!   unreachable on the no side (the solve side again goes through the
//!   registry's exact route).
//!
//! Output: the paper's two sub-tables with a verification status per cell.

use repliflow_bench::config::{COMM_SAMPLES, SEED, TABLE1_SAMPLES};
use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_core::platform::Platform;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::{Pipeline, Workflow};
use repliflow_reductions::{thm12, thm13, thm15, thm5, thm9, N3dm, TwoPartition};
use repliflow_solver::{
    pareto, CommModel, EnginePref, EngineRegistry, Network, SolveReport, SolveRequest,
};

/// Verification outcome of one Table 1 cell.
struct Cell {
    label: &'static str,
    verdict: String,
}

fn check(ok: bool, what: &str) -> String {
    if ok {
        format!("{what} ✓")
    } else {
        format!("{what} ✗ MISMATCH")
    }
}

fn instance(
    workflow: impl Into<Workflow>,
    platform: &Platform,
    allow_dp: bool,
    objective: Objective,
) -> ProblemInstance {
    ProblemInstance {
        cost_model: repliflow_core::instance::CostModel::Simplified,
        workflow: workflow.into(),
        platform: platform.clone(),
        allow_data_parallel: allow_dp,
        objective,
    }
}

fn solve_via(registry: &EngineRegistry, inst: &ProblemInstance, pref: EnginePref) -> SolveReport {
    registry
        .solve(&SolveRequest::new(inst.clone()).engine(pref))
        .expect("table instances stay within every engine's coverage")
}

/// `paper` route == `exact` route on this instance's objective value.
fn paper_matches_exact(registry: &EngineRegistry, inst: &ProblemInstance) -> bool {
    let paper = solve_via(registry, inst, EnginePref::Paper);
    let exact = solve_via(registry, inst, EnginePref::Exact);
    paper.objective_value == exact.objective_value
}

/// The paper route reproduces every point of the exact Pareto frontier.
fn paper_matches_frontier(registry: &EngineRegistry, inst: &ProblemInstance) -> bool {
    pareto(inst).points().iter().all(|point| {
        let bounded = ProblemInstance {
            objective: Objective::LatencyUnderPeriod(point.period),
            ..inst.clone()
        };
        solve_via(registry, &bounded, EnginePref::Paper).latency == Some(point.latency)
    })
}

/// Polynomial pipeline cells on homogeneous platforms (Theorems 1-4).
fn hom_platform_pipeline_cells(registry: &EngineRegistry, gen: &mut Gen) -> Vec<Cell> {
    let mut ok_p = true;
    let mut ok_l_nodp = true;
    let mut ok_l_dp = true;
    let mut ok_bi = true;
    for _ in 0..TABLE1_SAMPLES {
        let n = gen.size(1, 5);
        let p = gen.size(1, 4);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.hom_platform(p, 1, 4);
        ok_p &= paper_matches_exact(
            registry,
            &instance(pipe.clone(), &plat, true, Objective::Period),
        );
        ok_l_nodp &= paper_matches_exact(
            registry,
            &instance(pipe.clone(), &plat, false, Objective::Latency),
        );
        let dp_latency = instance(pipe.clone(), &plat, true, Objective::Latency);
        ok_l_dp &= paper_matches_exact(registry, &dp_latency);
        ok_bi &= paper_matches_frontier(registry, &dp_latency);
    }
    vec![
        Cell {
            label: "pipeline / Hom. / P (both models): Poly, Thm 1",
            verdict: check(ok_p, "paper route == exact route"),
        },
        Cell {
            label: "pipeline / Hom. / L without data-par: Poly, Thm 2",
            verdict: check(ok_l_nodp, "paper route == exact route"),
        },
        Cell {
            label: "pipeline / Hom. / L with data-par: Poly (DP), Thm 3",
            verdict: check(ok_l_dp, "paper route == exact route"),
        },
        Cell {
            label: "pipeline / Hom. / both with data-par: Poly (DP), Thm 4",
            verdict: check(ok_bi, "paper route == exact frontier"),
        },
    ]
}

/// Polynomial cells on heterogeneous platforms (Theorems 6-8, 14).
fn het_platform_poly_cells(registry: &EngineRegistry, gen: &mut Gen) -> Vec<Cell> {
    let mut ok_l = true;
    let mut ok_p_uniform = true;
    let mut ok_bi = true;
    let mut ok_fork = true;
    for _ in 0..TABLE1_SAMPLES {
        let n = gen.size(1, 5);
        let p = gen.size(1, 4);
        let pipe = gen.pipeline(n, 1, 12);
        let upipe = gen.uniform_pipeline(n, 1, 10);
        let plat = gen.het_platform(p, 1, 5);
        ok_l &= paper_matches_exact(
            registry,
            &instance(pipe.clone(), &plat, false, Objective::Latency),
        );
        let uniform_period = instance(upipe.clone(), &plat, false, Objective::Period);
        ok_p_uniform &= paper_matches_exact(registry, &uniform_period);
        ok_bi &= paper_matches_frontier(registry, &uniform_period);
        let leaves = gen.size(0, 4);
        let fork = gen.uniform_fork(leaves, 1, 10);
        ok_fork &= paper_matches_exact(
            registry,
            &instance(fork.clone(), &plat, false, Objective::Period),
        );
        ok_fork &= paper_matches_exact(
            registry,
            &instance(fork.clone(), &plat, false, Objective::Latency),
        );
    }
    vec![
        Cell {
            label: "pipeline / Het. / L without data-par: Poly (str), Thm 6",
            verdict: check(ok_l, "paper route == exact route"),
        },
        Cell {
            label: "Hom. pipeline / Het. / P without data-par: Poly (*), Thm 7",
            verdict: check(ok_p_uniform, "paper route == exact route"),
        },
        Cell {
            label: "Hom. pipeline / Het. / both without data-par: Poly (*), Thm 8",
            verdict: check(ok_bi, "paper route == exact frontier"),
        },
        Cell {
            label: "Hom. fork / Het. / all objectives without data-par: Poly (*), Thm 14",
            verdict: check(ok_fork, "paper route == exact route"),
        },
    ]
}

/// Polynomial fork cells on homogeneous platforms (Theorems 10-11).
fn hom_platform_fork_cells(registry: &EngineRegistry, gen: &mut Gen) -> Vec<Cell> {
    let mut ok_p = true;
    let mut ok_l = true;
    for _ in 0..TABLE1_SAMPLES {
        let leaves = gen.size(0, 4);
        let p = gen.size(1, 4);
        let fork = gen.fork(leaves, 1, 10);
        let ufork = gen.uniform_fork(leaves, 1, 10);
        let plat = gen.hom_platform(p, 1, 4);
        ok_p &= paper_matches_exact(
            registry,
            &instance(fork.clone(), &plat, true, Objective::Period),
        );
        for allow_dp in [false, true] {
            ok_l &= paper_matches_exact(
                registry,
                &instance(ufork.clone(), &plat, allow_dp, Objective::Latency),
            );
        }
    }
    vec![
        Cell {
            label: "fork / Hom. / P (both models): Poly (str), Thm 10",
            verdict: check(ok_p, "paper route == exact route"),
        },
        Cell {
            label: "Hom. fork / Hom. / L+both (both models): Poly (DP), Thm 11",
            verdict: check(ok_l, "paper route == exact route"),
        },
    ]
}

/// NP-hard cells: reduction roundtrips; the solve direction goes through
/// the registry's exact route.
fn np_hard_cells(registry: &EngineRegistry, gen: &mut Gen) -> Vec<Cell> {
    let exact_objective = |workflow: Workflow, platform: &Platform, dp: bool, obj: Objective| {
        solve_via(
            registry,
            &ProblemInstance {
                cost_model: repliflow_core::instance::CostModel::Simplified,
                workflow,
                platform: platform.clone(),
                allow_data_parallel: dp,
                objective: obj,
            },
            EnginePref::Exact,
        )
    };
    // Theorem 5 (and 13, same gadget family)
    let mut ok5 = true;
    let mut ok13 = true;
    for _ in 0..6 {
        let tp = TwoPartition::random_yes(gen, 2, 7);
        let subset = tp.solve().unwrap();
        let r5 = thm5::reduce(&tp);
        let m = thm5::certificate_mapping(&tp, &subset);
        ok5 &= r5.pipeline.latency(&r5.platform, &m).unwrap() == r5.latency_bound;
        ok5 &= r5.pipeline.period(&r5.platform, &m).unwrap() == r5.period_bound;
        if subset.len() < tp.values.len() {
            let r13 = thm13::reduce(&tp);
            let m = thm13::certificate_mapping(&tp, &subset);
            ok13 &= r13.fork.latency(&r13.platform, &m).unwrap() == r13.latency_bound;
        }
    }
    // Theorem 9 (N3DM)
    let mut ok9 = true;
    for _ in 0..4 {
        let inst = N3dm::random_yes(gen, 2, 8);
        let matching = inst.solve().unwrap();
        let r = thm9::reduce(&inst);
        let m = thm9::certificate_mapping(&inst, &matching);
        ok9 &= r.pipeline.period(&r.platform, &m).unwrap() == Rat::ONE;
    }
    // no-direction via the exact route on a tiny instance
    if let Some(no) = N3dm::random_no(gen, 2, 6) {
        let r = thm9::reduce(&no);
        let best = exact_objective(r.pipeline.into(), &r.platform, false, Objective::Period);
        ok9 &= best.period.unwrap() > Rat::ONE;
    }
    // Theorems 12 and 15
    let mut ok12 = true;
    let mut ok15 = true;
    for _ in 0..6 {
        let tp = TwoPartition::random_yes(gen, 3, 7);
        let subset = tp.solve().unwrap();
        let r = thm12::reduce(&tp);
        let m = thm12::certificate_mapping(&tp, &subset);
        ok12 &= r.fork.latency(&r.platform, &m).unwrap() == r.latency_bound;
        let r = thm15::reduce(&tp);
        let m = thm15::certificate_mapping(&tp, &subset);
        ok15 &= r.fork.period(&r.platform, &m).unwrap() == r.period_bound;

        let tp = TwoPartition::random_no(gen, 2, 7);
        let r = thm12::reduce(&tp);
        let best = exact_objective(r.fork.into(), &r.platform, false, Objective::Latency);
        ok12 &= best.latency.unwrap() > r.latency_bound;
        let r = thm15::reduce(&tp);
        let best = exact_objective(r.fork.into(), &r.platform, false, Objective::Period);
        ok15 &= best.period.unwrap() > r.period_bound;
    }
    vec![
        Cell {
            label: "Hom. pipeline / Het. / with data-par: NP-hard, Thm 5",
            verdict: check(ok5, "2-PARTITION reduction roundtrip"),
        },
        Cell {
            label: "Het. pipeline / Het. / P without data-par: NP-hard (**), Thm 9",
            verdict: check(ok9, "N3DM reduction roundtrip"),
        },
        Cell {
            label: "Het. fork / Hom. / L (both models): NP-hard, Thm 12",
            verdict: check(ok12, "2-PARTITION reduction roundtrip"),
        },
        Cell {
            label: "Hom. fork / Het. / with data-par: NP-hard, Thm 13",
            verdict: check(ok13, "2-PARTITION reduction roundtrip"),
        },
        Cell {
            label: "Het. fork / Het. / all objectives: NP-hard, Thm 15",
            verdict: check(ok15, "2-PARTITION reduction roundtrip"),
        },
    ]
}

/// Communication-aware rows (Sections 3.2–3.3): every simplified Table 1
/// scenario doubles into a comm-aware one. Three invariants are checked
/// through the registry's comm engines:
///
/// * infinite bandwidth reproduces the simplified optimum exactly;
/// * finite bandwidth can only worsen the optimum (monotonicity);
/// * serialized one-port sends never beat concurrent multi-port sends.
fn comm_model_cells(registry: &EngineRegistry, gen: &mut Gen) -> Vec<Cell> {
    let with_comm = |inst: &ProblemInstance, network: Network, comm: CommModel| {
        inst.clone().with_cost_model(CostModel::WithComm {
            network,
            comm,
            overlap: true,
        })
    };
    let mut ok_inf = true;
    let mut ok_mono = true;
    let mut ok_port = true;
    for _ in 0..COMM_SAMPLES {
        let n = gen.size(1, 4);
        let p = gen.size(2, 3);
        let weights = gen.positive_ints(n, 1, 10);
        let sizes = gen.positive_ints(n + 1, 0, 6);
        let pipe = Pipeline::with_data_sizes(weights, sizes);
        let plat = gen.het_platform(p, 1, 4);
        for objective in [Objective::Period, Objective::Latency] {
            let inst = instance(pipe.clone(), &plat, gen.flip(0.5), objective);
            let simplified = solve_via(registry, &inst, EnginePref::Auto);
            let infinite = solve_via(
                registry,
                &with_comm(&inst, Network::infinite(p), CommModel::OnePort),
                EnginePref::Auto,
            );
            ok_inf &= infinite.objective_value == simplified.objective_value;
            let finite = solve_via(
                registry,
                &with_comm(
                    &inst,
                    Network::uniform(p, gen.int(1, 4)),
                    CommModel::OnePort,
                ),
                EnginePref::Auto,
            );
            ok_mono &= finite.objective_value >= simplified.objective_value;
        }

        let leaves = gen.size(1, 3);
        let fork = repliflow_core::workflow::Fork::with_data_sizes(
            gen.int(1, 6),
            gen.positive_ints(leaves, 1, 8),
            gen.int(0, 4),
            gen.int(0, 6),
            gen.positive_ints(leaves, 0, 3),
        );
        let inst = instance(fork, &plat, false, Objective::Latency);
        let net = Network::uniform(p, gen.int(1, 3));
        let one = solve_via(
            registry,
            &with_comm(&inst, net.clone(), CommModel::OnePort),
            EnginePref::Auto,
        );
        let multi = solve_via(
            registry,
            &with_comm(&inst, net, CommModel::BoundedMultiPort),
            EnginePref::Auto,
        );
        ok_port &= one.objective_value >= multi.objective_value;
        let infinite = solve_via(
            registry,
            &with_comm(&inst, Network::infinite(p), CommModel::OnePort),
            EnginePref::Auto,
        );
        ok_inf &= infinite.objective_value
            == solve_via(registry, &inst, EnginePref::Auto).objective_value;
    }
    vec![
        Cell {
            label: "any graph / infinite bandwidth: degenerates to simplified model",
            verdict: check(ok_inf, "comm route == simplified route"),
        },
        Cell {
            label: "any graph / finite bandwidth: comm optimum >= simplified optimum",
            verdict: check(ok_mono, "monotone in communication cost"),
        },
        Cell {
            label: "fork / one-port vs multi-port: serialization only delays",
            verdict: check(ok_port, "one-port >= multi-port latency"),
        },
    ]
}

fn main() {
    let registry = EngineRegistry::default();
    let mut gen = Gen::new(SEED);
    println!("Table 1 — Complexity results for the different instances of the mapping problem");
    println!("(paper classification + empirical verification on seeded random instances,");
    println!(" every solve routed through repliflow_solver::EngineRegistry)\n");

    println!("== Homogeneous platforms ==");
    for cell in hom_platform_pipeline_cells(&registry, &mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }
    for cell in hom_platform_fork_cells(&registry, &mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }

    println!("\n== Heterogeneous platforms ==");
    for cell in het_platform_poly_cells(&registry, &mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }

    println!("\n== NP-hard cells (both platforms) ==");
    for cell in np_hard_cells(&registry, &mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }

    println!("\n== Communication-aware model (Sections 3.2-3.3, general mappings) ==");
    for cell in comm_model_cells(&registry, &mut gen) {
        println!("  {:<70} {}", cell.label, cell.verdict);
    }

    println!("\nEvery polynomial entry was checked against the exhaustive oracle on");
    println!("{TABLE1_SAMPLES} random instances per cell; every NP-hard entry via its reduction");
    println!("in both directions. See EXPERIMENTS.md for the full methodology.");
}
