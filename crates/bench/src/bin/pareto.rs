//! `pareto` — command-line Pareto-front tracer for workflow mapping
//! instances.
//!
//! Reads one [`ProblemInstance`] as JSON (file argument or stdin) and
//! traces its **(period, latency) Pareto front** through
//! `repliflow-multicrit`: the exact ε-constraint enumeration on
//! instances within the exact budget, the heuristic grid sweep beyond.
//! The instance's own `objective` field is ignored — a front is always
//! traced over the period × latency criteria pair (the `--objective-x`
//! / `--objective-y` flags exist to make that contract explicit and
//! reject anything else).
//!
//! ```text
//! pareto instance.json                 # auto-routed front, human-readable
//! pareto --engine exact i.json        # force the exact enumeration
//! pareto --engine sweep i.json        # force the heuristic grid sweep
//! pareto --points 8 i.json            # cap the front length
//! pareto --quality thorough i.json    # thorough inner solves (sweep)
//! pareto --json i.json                # canonical front JSON (byte-stable)
//! pareto --csv i.json                 # one line per point, exact rationals
//! pareto --remote HOST:PORT i.json    # trace on a repliflow-serve daemon
//! cat inst.json | pareto -
//! ```
//!
//! `--json` prints the front's **canonical JSON** exactly as
//! [`FrontReport::canonical_json`] produced it; `--remote` output is
//! byte-identical to local output for the same request because the
//! daemon embeds that canonical object verbatim in its `pareto`
//! response. The human-readable and CSV renderings are also built from
//! the canonical object, so every output mode is identical local or
//! remote.
//!
//! [`ProblemInstance`]: repliflow_core::instance::ProblemInstance
//! [`FrontReport::canonical_json`]: repliflow_multicrit::FrontReport::canonical_json

use repliflow_core::instance::ProblemInstance;
use repliflow_multicrit::{FrontEnginePref, FrontRequest, FrontSolver};
use repliflow_serve::{RemoteClient, RemoteParetoOptions};
use repliflow_solver::{Budget, Quality, SolverService};
use repliflow_sync::sync::Arc;
use serde_json::{parse_value, Value};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pareto [--engine auto|exact|sweep] [--points N] \
         [--quality fast|balanced|thorough] [--no-validate] \
         [--objective-x period] [--objective-y latency] \
         [--json | --csv] [--remote HOST:PORT] <instance.json | ->"
    );
    ExitCode::FAILURE
}

fn read_instance(path: &str) -> Result<ProblemInstance, String> {
    let json = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    serde_json::from_str_streaming(&json)
        .map_err(|e| format!("invalid instance JSON in {path}: {e}"))
}

/// A string field of a canonical point object (`"-"` when null or
/// absent, so renderings never panic on a malformed tree).
fn point_str<'a>(point: &'a Value, name: &str) -> &'a str {
    match point.field(name) {
        Some(Value::String(s)) => s,
        Some(Value::Null) | None => "-",
        Some(_) => "?",
    }
}

/// Renders the canonical front object as the human-readable report.
fn print_human(canonical: &Value) {
    let str_of = |name: &str| canonical.field(name).and_then(Value::as_str).unwrap_or("?");
    let bool_of = |name: &str| matches!(canonical.field(name), Some(Value::Bool(true)));
    let empty = Vec::new();
    let points = match canonical.field("points") {
        Some(Value::Array(points)) => points,
        _ => &empty,
    };
    println!("engine   : {}", str_of("engine"));
    println!(
        "front    : {}{}",
        if bool_of("complete") {
            "complete (provably every Pareto point)"
        } else {
            "approximate (heuristic sweep)"
        },
        if bool_of("truncated") {
            ", truncated by budget"
        } else {
            ""
        }
    );
    println!(
        "points   : {} ({} objective-space, x=period, y=latency)",
        points.len(),
        if points.len() == 1 {
            "degenerate front: one point dominates"
        } else {
            "dominance-sorted"
        }
    );
    for (i, point) in points.iter().enumerate() {
        println!(
            "point {:<2} : period {} latency {}{} [{}]",
            i + 1,
            point_str(point, "period"),
            point_str(point, "latency"),
            match point.field("reliability") {
                Some(Value::String(r)) => format!(" reliability {r}"),
                _ => String::new(),
            },
            point_str(point, "optimality"),
        );
        println!("mapping {:<1}: {}", i + 1, point_str(point, "mapping"));
    }
}

/// Renders the canonical front object as CSV (exact rationals; the
/// witness mappings are omitted — their rendering contains commas).
fn print_csv(canonical: &Value) {
    println!("index,period,latency,reliability,optimality");
    if let Some(Value::Array(points)) = canonical.field("points") {
        for (i, point) in points.iter().enumerate() {
            let reliability = match point.field("reliability") {
                Some(Value::String(r)) => r.as_str(),
                _ => "",
            };
            println!(
                "{},{},{},{},{}",
                i + 1,
                point_str(point, "period"),
                point_str(point, "latency"),
                reliability,
                point_str(point, "optimality"),
            );
        }
    }
}

enum OutputMode {
    Human,
    Json,
    Csv,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = FrontEnginePref::Auto;
    let mut points: Option<usize> = None;
    let mut quality = Quality::Balanced;
    let mut validate = true;
    let mut mode = OutputMode::Human;
    let mut remote: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => match it.next().as_deref().and_then(FrontEnginePref::parse) {
                Some(pref) => engine = pref,
                None => return usage(),
            },
            "--points" => match it.next().as_deref().and_then(|p| p.parse().ok()) {
                Some(p) if p > 0 => points = Some(p),
                _ => return usage(),
            },
            "--quality" => match it.next().as_deref().and_then(Quality::parse) {
                Some(q) => quality = q,
                None => return usage(),
            },
            // The front is always (period, latency); these flags pin
            // the axes explicitly and reject any other pair instead of
            // silently tracing something the caller did not ask for.
            "--objective-x" => match it.next().as_deref() {
                Some("period") => {}
                _ => {
                    eprintln!("error: only `--objective-x period` is supported (fronts are traced over period × latency)");
                    return ExitCode::FAILURE;
                }
            },
            "--objective-y" => match it.next().as_deref() {
                Some("latency") => {}
                _ => {
                    eprintln!("error: only `--objective-y latency` is supported (fronts are traced over period × latency)");
                    return ExitCode::FAILURE;
                }
            },
            "--remote" => match it.next() {
                Some(addr) => remote = Some(addr),
                None => return usage(),
            },
            "--no-validate" => validate = false,
            "--json" => mode = OutputMode::Json,
            "--csv" => mode = OutputMode::Csv,
            "-h" | "--help" => return usage(),
            other => paths.push(other.to_string()),
        }
    }
    let [path] = paths.as_slice() else {
        return usage();
    };
    let instance = match read_instance(path) {
        Ok(instance) => instance,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Both paths produce the same canonical JSON text; everything
    // downstream renders from it.
    let canonical_text = if let Some(addr) = remote {
        let mut client = match RemoteClient::connect(&addr) {
            Ok(client) => client,
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let options = RemoteParetoOptions {
            engine,
            quality,
            validate,
            points,
        };
        match client.pareto(&instance, &options) {
            Ok(report) => report.canonical_json(),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut budget = Budget::default().quality(quality);
        if let Some(points) = points {
            budget = budget.max_front_points(points);
        }
        let solver = FrontSolver::new(Arc::new(SolverService::builder().build()));
        let request = FrontRequest::new(instance)
            .engine(engine)
            .budget(budget)
            .validate_witness(validate);
        match solver.solve_front(&request) {
            Ok(report) => report.canonical_json(),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    match mode {
        OutputMode::Json => {
            println!("{canonical_text}");
        }
        OutputMode::Human | OutputMode::Csv => {
            let canonical = match parse_value(&canonical_text) {
                Ok(value) => value,
                Err(e) => {
                    eprintln!("error: unparseable canonical front: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match mode {
                OutputMode::Human => print_human(&canonical),
                _ => print_csv(&canonical),
            }
        }
    }
    ExitCode::SUCCESS
}
