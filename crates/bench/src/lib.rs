//! # repliflow-bench
//!
//! The experiment harness: regenerates every table and figure of Benoit &
//! Robert (Cluster 2007) and quantifies the complexity claims.
//!
//! Report binaries (deterministic, seeded):
//!
//! * `table1` — regenerates **Table 1**, empirically verifying every cell
//!   (polynomial cells: algorithm == exact oracle over random instances;
//!   NP-hard cells: reduction round-trips in both directions).
//! * `worked_example` — regenerates every number of the **Section 2**
//!   worked example, paper value vs measured (including the two example
//!   values our exhaustive search improves on).
//! * `figures` — regenerates **Figures 1 and 2** (DOT + ASCII).
//! * `heuristic_gap` — optimality gaps of the heuristics on the NP-hard
//!   cells (the paper's "future work" experiment).
//! * `scaling` — CSV runtime series supporting the stated polynomial
//!   complexities.
//!
//! Criterion benches (`cargo bench`): `poly_algorithms`, `exact_blowup`,
//! `heuristic_gap`, `simulator`, `chains`.

/// Shared instance sizes/seeds so reports and benches agree.
pub mod config {
    /// Seed base for all bench generators.
    pub const SEED: u64 = 0xC1A0;
    /// Number of random instances per Table 1 cell verification.
    pub const TABLE1_SAMPLES: usize = 25;
    /// Number of random instances per communication-aware invariant
    /// (smaller: each sample runs several full comm-exact enumerations).
    pub const COMM_SAMPLES: usize = 8;
}
