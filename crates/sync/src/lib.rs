//! **repliflow-sync** — the workspace's single doorway to concurrency
//! primitives.
//!
//! Every crate imports `Mutex`, `Condvar`, channels, atomics and
//! threads from here instead of `std::sync`/`std::thread` (enforced by
//! `repliflow-lint`'s `no-std-sync` rule). In a normal build the
//! modules below are plain re-exports — zero cost, identical types.
//! Under `RUSTFLAGS="--cfg loom"` they switch to the vendored
//! loom-lite shims, whose operations are scheduling points of a
//! deterministic model checker, so the `modelcheck_*` test suites can
//! exhaustively explore thread interleavings of the real production
//! code. See `docs/CONCURRENCY.md` for the rules and workflow.
//!
//! Two deliberate exceptions stay on std under both cfgs:
//!
//! * [`sync::Arc`] — the sequentialized explorer cannot race reference
//!   counts, and a shimmed `Arc` would lose unsized coercion
//!   (`Arc<dyn Engine>`) on stable.
//! * [`thread::scope`] — scoped spawns borrow from the parent stack;
//!   the model scheduler only manages `'static` threads. Code using
//!   `scope` (comm-bb root parallelism, batch fan-out) is exercised by
//!   stress tests instead of models.

/// `std::sync` facade: loom-lite shims under `cfg(loom)`.
#[cfg(loom)]
pub mod sync {
    pub use loom::sync::{
        atomic, mpsc, Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock,
        RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };
    pub use std::sync::Weak;
}

/// `std::sync` facade: direct re-export in normal builds.
#[cfg(not(loom))]
pub mod sync {
    pub use std::sync::*;
}

/// `std::thread` facade: loom-lite shims under `cfg(loom)`.
#[cfg(loom)]
pub mod thread {
    pub use loom::thread::{available_parallelism, sleep, spawn, yield_now, Builder, JoinHandle};
    // Scoped threads and introspection stay on std (see crate docs).
    pub use std::thread::{current, panicking, scope, Result, Scope, ScopedJoinHandle, Thread};
}

/// `std::thread` facade: direct re-export in normal builds.
#[cfg(not(loom))]
pub mod thread {
    pub use std::thread::*;
}

/// The model-checker entry points, available only under `cfg(loom)`
/// so `modelcheck_*` suites can write `repliflow_sync::loom::model(..)`
/// without a direct vendor dependency.
#[cfg(loom)]
pub use loom;
