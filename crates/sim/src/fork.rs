//! Fork and fork-join simulation under the flexible model: every non-root
//! group may start a data set as soon as `S0` completes for it.

use crate::engine::{entry_times, GroupSim};
use crate::report::{Feed, SimReport};
use repliflow_core::error::Error;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::Platform;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::{Fork, ForkJoin};

/// Time at which `S0` completes inside its group's block: the first
/// `w0 / W_block` fraction of the block's execution.
fn s0_done(start: Rat, finish: Rat, w0: u64, block_work: u64) -> Rat {
    if block_work == 0 {
        start
    } else {
        start + (finish - start) * Rat::ratio(w0.max(1), block_work.max(1)).min(Rat::ONE)
    }
}

/// Simulates a fork mapping (flexible model).
pub fn simulate_fork(
    fork: &Fork,
    platform: &Platform,
    mapping: &Mapping,
    feed: Feed,
    n_data_sets: usize,
) -> Result<SimReport, Error> {
    mapping.validate_fork(fork, platform, true)?;
    let root_idx = mapping
        .assignments()
        .iter()
        .position(|a| a.contains_stage(0))
        .expect("validated fork mapping has a root group");
    let root_assignment = &mapping.assignments()[root_idx];
    let root_block_work = root_assignment.work(|s| fork.weight(s));
    let mut root_group = GroupSim::new(root_block_work, root_assignment, platform);

    let mut leaf_groups: Vec<GroupSim> = mapping
        .assignments()
        .iter()
        .enumerate()
        .filter(|&(g, _)| g != root_idx)
        .map(|(_, a)| GroupSim::new(a.work(|s| fork.weight(s)), a, platform))
        .collect();

    let entries = entry_times(feed, n_data_sets);
    let mut departures = Vec::with_capacity(n_data_sets);
    for &entry in &entries {
        let (start, finish, root_release) = root_group.process_traced(entry);
        let ready = s0_done(start, finish, fork.root_weight(), root_block_work);
        let mut completion = root_release;
        for g in leaf_groups.iter_mut() {
            completion = completion.max(g.process(ready));
        }
        departures.push(completion);
    }
    Ok(SimReport::new(entries, departures))
}

/// Per-replica state of the join group, which executes in two phases:
/// its own leaf work (ready at `S0`-done), then — after *every* leaf of
/// the data set finished anywhere — the join stage itself.
struct JoinSim {
    free_at: Vec<Rat>,
    leaf_durations: Vec<Rat>,
    join_durations: Vec<Rat>,
    last_start: Rat,
    last_release: Rat,
    next: usize,
}

impl JoinSim {
    fn new(fj: &ForkJoin, assignment: &Assignment, platform: &Platform) -> Self {
        let leaf_work: u64 = assignment
            .stages()
            .iter()
            .filter(|&&s| s != fj.join_stage())
            .map(|&s| fj.weight(s))
            .sum();
        let (leaf_durations, join_durations) = match assignment.mode {
            Mode::Replicated => assignment
                .procs()
                .iter()
                .map(|&q| {
                    (
                        Rat::ratio(leaf_work, platform.speed(q)),
                        Rat::ratio(fj.join_weight(), platform.speed(q)),
                    )
                })
                .unzip(),
            Mode::DataParallel => {
                let total = platform.subset_speed(assignment.procs());
                (
                    vec![Rat::ratio(leaf_work, total)],
                    vec![Rat::ratio(fj.join_weight(), total)],
                )
            }
        };
        JoinSim {
            free_at: vec![Rat::ZERO; leaf_durations.len()],
            leaf_durations,
            join_durations,
            last_start: Rat::ZERO,
            last_release: Rat::ZERO,
            next: 0,
        }
    }

    /// Processes a data set: leaf phase ready at `ready`, join phase
    /// gated on `all_leaves_done`. Returns (own leaf-phase completion,
    /// final release).
    fn process(&mut self, ready: Rat, all_leaves_done: impl FnOnce(Rat) -> Rat) -> (Rat, Rat) {
        let u = self.next;
        self.next = (self.next + 1) % self.free_at.len();
        let start = ready.max(self.free_at[u]).max(self.last_start);
        let leaf_done = start + self.leaf_durations[u];
        let join_start = all_leaves_done(leaf_done);
        let done = join_start.max(leaf_done) + self.join_durations[u];
        let release = done.max(self.last_release);
        self.free_at[u] = done;
        self.last_start = start;
        self.last_release = release;
        (leaf_done, release)
    }
}

/// Simulates a fork-join mapping (flexible model).
pub fn simulate_forkjoin(
    fj: &ForkJoin,
    platform: &Platform,
    mapping: &Mapping,
    feed: Feed,
    n_data_sets: usize,
) -> Result<SimReport, Error> {
    mapping.validate_forkjoin(fj, platform, true)?;
    let join_stage = fj.join_stage();
    let root_idx = mapping
        .assignments()
        .iter()
        .position(|a| a.contains_stage(0))
        .expect("validated mapping has a root group");
    let join_idx = mapping
        .assignments()
        .iter()
        .position(|a| a.contains_stage(join_stage))
        .expect("validated mapping has a join group");

    // The root group's block excludes the join stage (the join phase is
    // modeled separately even when it shares the root's processors).
    let root_assignment = &mapping.assignments()[root_idx];
    let root_nonjoin_work: u64 = root_assignment
        .stages()
        .iter()
        .filter(|&&s| s != join_stage)
        .map(|&s| fj.weight(s))
        .sum();

    if root_idx == join_idx {
        // Root and join share a group: one replica runs root+leaves, then
        // waits for all leaves (here: only its own), then the join.
        let mut group = JoinSim::new_root_join(fj, root_assignment, platform);
        let entries = entry_times(feed, n_data_sets);
        let mut departures = Vec::with_capacity(n_data_sets);
        // other leaf groups
        let mut leaf_groups: Vec<GroupSim> = mapping
            .assignments()
            .iter()
            .enumerate()
            .filter(|&(g, _)| g != root_idx)
            .map(|(_, a)| GroupSim::new(a.work(|s| fj.weight(s)), a, platform))
            .collect();
        for &entry in &entries {
            let departure = group.process_root_join(
                entry,
                fj.root_weight(),
                root_nonjoin_work,
                &mut leaf_groups,
            );
            departures.push(departure);
        }
        return Ok(SimReport::new(entries, departures));
    }

    let mut root_group = GroupSim::new(root_nonjoin_work, root_assignment, platform);
    let mut join_group = JoinSim::new(fj, &mapping.assignments()[join_idx], platform);
    let mut leaf_groups: Vec<GroupSim> = mapping
        .assignments()
        .iter()
        .enumerate()
        .filter(|&(g, _)| g != root_idx && g != join_idx)
        .map(|(_, a)| GroupSim::new(a.work(|s| fj.weight(s)), a, platform))
        .collect();

    let entries = entry_times(feed, n_data_sets);
    let mut departures = Vec::with_capacity(n_data_sets);
    for &entry in &entries {
        let (start, finish, root_release) = root_group.process_traced(entry);
        let ready = s0_done(start, finish, fj.root_weight(), root_nonjoin_work);
        let mut leaves_done = root_release;
        for g in leaf_groups.iter_mut() {
            leaves_done = leaves_done.max(g.process(ready));
        }
        let (_, departure) =
            join_group.process(ready, |own_leaf_done| leaves_done.max(own_leaf_done));
        departures.push(departure);
    }
    Ok(SimReport::new(entries, departures))
}

impl JoinSim {
    /// Variant for a merged root+join group: the block is
    /// `root + leaves`, then the join phase.
    fn new_root_join(fj: &ForkJoin, assignment: &Assignment, platform: &Platform) -> Self {
        // the "leaf phase" here is root + leaves (everything except join)
        let leaf_work: u64 = assignment
            .stages()
            .iter()
            .filter(|&&s| s != fj.join_stage())
            .map(|&s| fj.weight(s))
            .sum();
        let (leaf_durations, join_durations): (Vec<Rat>, Vec<Rat>) = assignment
            .procs()
            .iter()
            .map(|&q| {
                (
                    Rat::ratio(leaf_work, platform.speed(q)),
                    Rat::ratio(fj.join_weight(), platform.speed(q)),
                )
            })
            .unzip();
        JoinSim {
            free_at: vec![Rat::ZERO; leaf_durations.len()],
            leaf_durations,
            join_durations,
            last_start: Rat::ZERO,
            last_release: Rat::ZERO,
            next: 0,
        }
    }

    /// Processes one data set of a merged root+join group, driving the
    /// external leaf groups from the `S0`-completion instant.
    fn process_root_join(
        &mut self,
        entry: Rat,
        w0: u64,
        block_work: u64,
        leaf_groups: &mut [GroupSim],
    ) -> Rat {
        let u = self.next;
        self.next = (self.next + 1) % self.free_at.len();
        let start = entry.max(self.free_at[u]).max(self.last_start);
        let block_done = start + self.leaf_durations[u];
        let ready = s0_done(start, block_done, w0, block_work);
        let mut leaves_done = block_done;
        for g in leaf_groups.iter_mut() {
            leaves_done = leaves_done.max(g.process(ready));
        }
        let done = leaves_done + self.join_durations[u];
        let release = done.max(self.last_release);
        self.free_at[u] = done;
        self.last_start = start;
        self.last_release = release;
        release
    }
}

/// The round-robin cycle length of a fork/fork-join mapping.
pub fn cycle_length(mapping: &Mapping) -> usize {
    crate::report::replica_cycle(mapping.assignments().iter().map(|a| match a.mode {
        Mode::Replicated => a.n_procs(),
        Mode::DataParallel => 1,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use repliflow_core::platform::ProcId;

    fn procs(ids: &[usize]) -> Vec<ProcId> {
        ids.iter().map(|&u| ProcId(u)).collect()
    }

    #[test]
    fn fork_latency_matches_analytic_on_hom_platform() {
        let fork = Fork::new(1, vec![1, 2, 3]);
        let plat = Platform::homogeneous(2, 1);
        let m = Mapping::new(vec![
            Assignment::new(vec![0, 1], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![2, 3], procs(&[1]), Mode::Replicated),
        ]);
        let analytic = fork.latency(&plat, &m).unwrap();
        let report = simulate_fork(&fork, &plat, &m, Feed::Interval(Rat::int(100)), 8).unwrap();
        assert_eq!(report.max_latency(), analytic); // 6
    }

    #[test]
    fn fork_period_matches_analytic() {
        let fork = Fork::new(2, vec![3, 3, 4]);
        let plat = Platform::heterogeneous(vec![2, 1, 1]);
        let m = Mapping::new(vec![
            Assignment::new(vec![0, 3], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![1, 2], procs(&[1, 2]), Mode::Replicated),
        ]);
        let analytic = fork.period(&plat, &m).unwrap();
        let report = simulate_fork(&fork, &plat, &m, Feed::Saturated, 50).unwrap();
        let window = 4 * cycle_length(&m);
        assert_eq!(report.measured_period(window), analytic);
    }

    #[test]
    fn forkjoin_latency_matches_analytic_on_hom_platform() {
        let fj = ForkJoin::new(1, vec![2, 2], 3);
        let plat = Platform::homogeneous(2, 1);
        let m = Mapping::new(vec![
            Assignment::new(vec![0, 1], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![2, 3], procs(&[1]), Mode::Replicated),
        ]);
        let analytic = fj.latency(&plat, &m).unwrap();
        let report = simulate_forkjoin(&fj, &plat, &m, Feed::Interval(Rat::int(100)), 8).unwrap();
        assert_eq!(report.max_latency(), analytic); // 6
    }

    #[test]
    fn forkjoin_merged_root_join_group() {
        let fj = ForkJoin::new(2, vec![4, 4], 2);
        let plat = Platform::homogeneous(3, 1);
        // {root, join} on P1; leaves on P2, P3
        let m = Mapping::new(vec![
            Assignment::new(vec![0, 3], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![1], procs(&[1]), Mode::Replicated),
            Assignment::new(vec![2], procs(&[2]), Mode::Replicated),
        ]);
        let analytic = fj.latency(&plat, &m).unwrap();
        let report = simulate_forkjoin(&fj, &plat, &m, Feed::Interval(Rat::int(100)), 8).unwrap();
        assert_eq!(report.max_latency(), analytic); // 2 + 4 + 2 = 8
    }

    #[test]
    fn data_parallel_root_ready_time() {
        // dp root alone on {P1,P2} (speeds 2,2): S0 done at w0/4.
        let fork = Fork::new(8, vec![2, 4]);
        let plat = Platform::heterogeneous(vec![2, 2, 1]);
        let m = Mapping::new(vec![
            Assignment::new(vec![0], procs(&[0, 1]), Mode::DataParallel),
            Assignment::new(vec![1, 2], procs(&[2]), Mode::Replicated),
        ]);
        let analytic = fork.latency(&plat, &m).unwrap();
        let report = simulate_fork(&fork, &plat, &m, Feed::Interval(Rat::int(100)), 6).unwrap();
        assert_eq!(report.max_latency(), analytic); // 8
    }
}
