//! Pipeline simulation: data sets stream through the mapped stage groups
//! in order.

use crate::engine::{entry_times, GroupSim};
use crate::report::{Feed, SimReport};
use repliflow_core::error::Error;
use repliflow_core::mapping::Mapping;
use repliflow_core::platform::Platform;
use repliflow_core::workflow::Pipeline;

/// Simulates `n_data_sets` data sets flowing through `mapping`.
///
/// Groups are traversed in stage order; a data set becomes ready for
/// group `g+1` when group `g` releases it.
pub fn simulate_pipeline(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &Mapping,
    feed: Feed,
    n_data_sets: usize,
) -> Result<SimReport, Error> {
    mapping.validate_pipeline(pipeline, platform, true)?;
    // order groups by their first stage
    let mut order: Vec<usize> = (0..mapping.n_assignments()).collect();
    order.sort_by_key(|&g| mapping.assignments()[g].stages()[0]);

    let mut groups: Vec<GroupSim> = order
        .iter()
        .map(|&g| {
            let a = &mapping.assignments()[g];
            GroupSim::new(a.work(|s| pipeline.weight(s)), a, platform)
        })
        .collect();

    let entries = entry_times(feed, n_data_sets);
    let mut departures = Vec::with_capacity(n_data_sets);
    for &entry in &entries {
        let mut t = entry;
        for group in groups.iter_mut() {
            t = group.process(t);
        }
        departures.push(t);
    }
    Ok(SimReport::new(entries, departures))
}

/// The round-robin cycle length of a pipeline mapping (lcm of replica
/// counts) — the right measurement-window granularity.
pub fn cycle_length(mapping: &Mapping) -> usize {
    crate::report::replica_cycle(mapping.assignments().iter().map(|a| match a.mode {
        repliflow_core::mapping::Mode::Replicated => a.n_procs(),
        repliflow_core::mapping::Mode::DataParallel => 1,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use repliflow_core::mapping::{Assignment, Mode};
    use repliflow_core::platform::ProcId;
    use repliflow_core::rational::Rat;

    fn procs(ids: &[usize]) -> Vec<ProcId> {
        ids.iter().map(|&u| ProcId(u)).collect()
    }

    #[test]
    fn section2_example_period_and_latency() {
        // Replicate the whole pipeline on 3 unit processors: the analytic
        // period is 8 and the latency 24; the simulation must agree.
        let pipe = Pipeline::new(vec![14, 4, 2, 4]);
        let plat = Platform::homogeneous(3, 1);
        let m = Mapping::whole(4, procs(&[0, 1, 2]), Mode::Replicated);
        let report = simulate_pipeline(&pipe, &plat, &m, Feed::Saturated, 40).unwrap();
        let window = 3 * cycle_length(&m);
        assert_eq!(report.measured_period(window), Rat::int(8));
        // latency without queueing
        let report =
            simulate_pipeline(&pipe, &plat, &m, Feed::Interval(Rat::int(100)), 12).unwrap();
        assert_eq!(report.max_latency(), Rat::int(24));
    }

    #[test]
    fn section2_data_parallel_mapping() {
        // dp S1 on {P1,P2}, S2..S4 on P3: period 10, latency 17.
        let pipe = Pipeline::new(vec![14, 4, 2, 4]);
        let plat = Platform::homogeneous(3, 1);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
            Assignment::interval(1, 3, procs(&[2]), Mode::Replicated),
        ]);
        let report = simulate_pipeline(&pipe, &plat, &m, Feed::Saturated, 40).unwrap();
        assert_eq!(report.measured_period(6), Rat::int(10));
        let report = simulate_pipeline(&pipe, &plat, &m, Feed::Interval(Rat::int(50)), 10).unwrap();
        assert_eq!(report.max_latency(), Rat::int(17));
    }

    #[test]
    fn feeding_at_the_analytic_period_is_sustainable() {
        // With inputs arriving exactly at the analytic period the latency
        // stays bounded by the analytic latency (no backlog builds up).
        let pipe = Pipeline::new(vec![6, 3, 3]);
        let plat = Platform::heterogeneous(vec![2, 1, 1]);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0]), Mode::Replicated),
            Assignment::interval(1, 2, procs(&[1, 2]), Mode::Replicated),
        ]);
        let period = pipe.period(&plat, &m).unwrap();
        let latency = pipe.latency(&plat, &m).unwrap();
        let report = simulate_pipeline(&pipe, &plat, &m, Feed::Interval(period), 60).unwrap();
        assert!(report.max_latency() <= latency);
        // and the output rhythm equals the input rhythm
        assert_eq!(report.measured_period(12), period);
    }

    #[test]
    fn feeding_faster_than_the_period_backs_up() {
        // Below the analytic period the backlog grows without bound:
        // latencies increase linearly.
        let pipe = Pipeline::new(vec![8]);
        let plat = Platform::homogeneous(1, 1);
        let m = Mapping::whole(1, procs(&[0]), Mode::Replicated);
        let period = pipe.period(&plat, &m).unwrap();
        let feed = period - Rat::ONE; // 7 < 8
        let report = simulate_pipeline(&pipe, &plat, &m, Feed::Interval(feed), 50).unwrap();
        let lat = &report.latencies;
        assert!(lat[49] > lat[25]);
        assert!(lat[25] > lat[5]);
        // each data set waits one more unit than its predecessor
        assert_eq!(lat[49] - lat[48], Rat::ONE);
    }

    #[test]
    fn invalid_mapping_is_an_error() {
        let pipe = Pipeline::new(vec![1, 2]);
        let plat = Platform::homogeneous(1, 1);
        let m = Mapping::whole(1, procs(&[0]), Mode::Replicated);
        assert!(simulate_pipeline(&pipe, &plat, &m, Feed::Saturated, 5).is_err());
    }
}
