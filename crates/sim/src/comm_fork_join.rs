//! Fork-join simulation under the **general model with communication**
//! (Sections 3.2–3.3): single-processor-per-group [`ForkJoinAlloc`]
//! mappings executed event by event.
//!
//! The timeline extends the fork simulation of [`crate::comm_fork`]
//! with the Section 6.3 join phase:
//!
//! * the root group pulls `δ_in` from `P_in`, computes `S0` (and its own
//!   leaves), then broadcasts `δ_0` on its send port — serialized in
//!   ascending-smallest-stage group order under one-port, concurrent
//!   with the node-capacity bound under bounded multi-port — to every
//!   group holding at least one leaf;
//! * each group computes its leaves on receipt and ships each leaf's
//!   output to the **join group** (not `P_out`) on its own output port,
//!   serialized per group and free when the leaf already lives in the
//!   join group;
//! * once *every* group's outputs have arrived, the join stage runs on
//!   the join group's processor.
//!
//! Each resource (input link, per-group CPUs, the root's broadcast port,
//! per-group output ports) keeps its own free-time across data sets, so
//! a data set traversing the system alone reproduces the analytic
//! [`forkjoin_latency`] of `repliflow_core::comm_cost` exactly — which
//! `tests/comm_vs_analytic.rs` property-tests against both send
//! disciplines and both start rules. As with forks, the saturated-feed
//! period is *not* comparable to [`forkjoin_period`], whose round-robin
//! busy-time accounting deliberately bills a processor's computation and
//! all of its transfers sequentially; use [`Feed::Interval`] with a
//! large interval and read [`SimReport::max_latency`].
//!
//! [`forkjoin_latency`]: repliflow_core::comm_cost::forkjoin_latency
//! [`forkjoin_period`]: repliflow_core::comm_cost::forkjoin_period

use crate::engine::entry_times;
use crate::report::{Feed, SimReport};
use repliflow_core::comm::{CommModel, Endpoint, Network, StartRule};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::ForkJoin;

/// A fork-join group mapping for the general model: group 0 holds the
/// root stage (plus possibly leaves), `join_group` indexes the group
/// executing the join stage (any group, including the root group or a
/// leaf-free group of its own). One processor per group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForkJoinAlloc {
    /// Leaf stage ids (1-based as in the fork part) per group; group 0
    /// implicitly also contains the root stage `S0`.
    pub groups: Vec<Vec<usize>>,
    /// Executing processor of each group.
    pub procs: Vec<ProcId>,
    /// Index of the group executing the join stage.
    pub join_group: usize,
}

impl ForkJoinAlloc {
    fn check(&self, fj: &ForkJoin) {
        assert_eq!(self.groups.len(), self.procs.len());
        assert!(!self.groups.is_empty(), "need at least the root group");
        assert!(self.join_group < self.groups.len(), "join group index");
        let fork = fj.fork();
        let mut seen = vec![false; fork.n_leaves() + 1];
        for g in &self.groups {
            for &s in g {
                assert!(
                    s >= 1 && s <= fork.n_leaves(),
                    "group member {s} is not a leaf stage"
                );
                assert!(!seen[s], "leaf {s} mapped twice");
                seen[s] = true;
            }
        }
        assert!(
            (1..=fork.n_leaves()).all(|s| seen[s]),
            "every leaf must be mapped"
        );
        let mut procs = self.procs.clone();
        procs.sort_unstable();
        procs.dedup();
        assert_eq!(procs.len(), self.procs.len(), "processors must be distinct");
    }

    /// Smallest stage id held by group `g` (root stage 0 for group 0,
    /// the join stage for a leaf-free join group) — the key of the
    /// deterministic group order the one-port broadcast serializes in,
    /// matching `comm_cost`'s ascending-first-stage rule.
    fn first_stage(&self, fj: &ForkJoin, g: usize) -> usize {
        if g == 0 {
            return 0;
        }
        match self.groups[g].iter().copied().min() {
            Some(leaf) => {
                if g == self.join_group {
                    leaf.min(fj.join_stage())
                } else {
                    leaf
                }
            }
            None => fj.join_stage(), // leaf-free: must be the join group
        }
    }
}

/// Simulates a fork-join with communication costs over a one-processor-
/// per-group allocation.
///
/// # Panics
/// Panics if `alloc` is not a legal [`ForkJoinAlloc`] for `fj` (leaves
/// partitioned exactly once, distinct processors, join group in range).
#[allow(clippy::too_many_arguments)] // mirrors the analytic fork-join evaluator's signature
pub fn simulate_forkjoin_with_comm(
    fj: &ForkJoin,
    platform: &Platform,
    network: &Network,
    alloc: &ForkJoinAlloc,
    comm: CommModel,
    start: StartRule,
    feed: Feed,
    n_data_sets: usize,
) -> SimReport {
    alloc.check(fj);
    let fork = fj.fork();
    let m = alloc.groups.len();
    let root = Endpoint::Proc(alloc.procs[0]);
    let join_proc = Endpoint::Proc(alloc.procs[alloc.join_group]);

    // group order of the one-port broadcast (ascending first stage; the
    // root group is always first)
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&g| alloc.first_stage(fj, g));
    debug_assert_eq!(order[0], 0);

    // per-group constants: fork-phase compute (leaves; plus the root
    // stage for group 0 — the join phase is modeled separately)
    let leaf_work = |g: usize| -> u64 { alloc.groups[g].iter().map(|&s| fork.weight(s)).sum() };
    let compute: Vec<Rat> = (0..m)
        .map(|g| {
            let work = if g == 0 {
                fork.root_weight() + leaf_work(0)
            } else {
                leaf_work(g)
            };
            Rat::ratio(work, platform.speed(alloc.procs[g]))
        })
        .collect();
    let s0_time = Rat::ratio(fork.root_weight(), platform.speed(alloc.procs[0]));
    let join_time = Rat::ratio(
        fj.join_weight(),
        platform.speed(alloc.procs[alloc.join_group]),
    );
    let pull = network.transfer_time(fork.input_size(), Endpoint::In, root);
    let bcast: Vec<Rat> = (0..m)
        .map(|g| network.transfer_time(fork.broadcast_size(), root, Endpoint::Proc(alloc.procs[g])))
        .collect();
    // per-group total output push toward the join group (free inside it)
    let outputs: Vec<Rat> = (0..m)
        .map(|g| {
            if g == alloc.join_group {
                return Rat::ZERO;
            }
            alloc.groups[g]
                .iter()
                .map(|&s| {
                    network.transfer_time(
                        fork.output_size(s),
                        Endpoint::Proc(alloc.procs[g]),
                        join_proc,
                    )
                })
                .sum()
        })
        .collect();
    let receivers = (1..m).filter(|&g| !alloc.groups[g].is_empty()).count() as u64;
    let capacity = {
        let volume = fork.broadcast_size() * receivers;
        if volume > 0 && !network.is_infinite() {
            network
                .node_capacity()
                .map(|cap| Rat::ratio(volume, cap))
                .unwrap_or(Rat::ZERO)
        } else {
            Rat::ZERO
        }
    };

    // resource free-times, persistent across data sets
    let mut in_link_free = Rat::ZERO;
    let mut bcast_port_free = Rat::ZERO;
    let mut cpu_free = vec![Rat::ZERO; m];
    let mut out_port_free = vec![Rat::ZERO; m];

    let entries = entry_times(feed, n_data_sets);
    let mut departures = Vec::with_capacity(n_data_sets);
    for &entry in &entries {
        // root: pull input, compute S0 then its own leaves
        let recv_done = entry.max(in_link_free) + pull;
        in_link_free = recv_done;
        let s0_done = recv_done.max(cpu_free[0]) + s0_time;
        let root_done = recv_done.max(cpu_free[0]) + compute[0];
        cpu_free[0] = root_done;
        let send_start = match start {
            StartRule::Flexible => s0_done,
            StartRule::Strict => root_done,
        };
        // broadcast δ0 on the root's send port to every leaf-holding
        // group, in ascending-first-stage order; a leaf-free join group
        // receives nothing and is ready at send_start
        let mut arrive = vec![send_start; m];
        match comm {
            CommModel::OnePort => {
                let mut t = send_start.max(bcast_port_free);
                for &g in order.iter().skip(1) {
                    if alloc.groups[g].is_empty() {
                        continue;
                    }
                    t += bcast[g];
                    arrive[g] = t;
                }
                bcast_port_free = t;
            }
            CommModel::BoundedMultiPort => {
                let base = send_start.max(bcast_port_free);
                for g in 1..m {
                    if alloc.groups[g].is_empty() {
                        continue;
                    }
                    arrive[g] = base + bcast[g].max(capacity);
                    bcast_port_free = bcast_port_free.max(arrive[g]);
                }
            }
        }
        // every group: compute its leaves, then push outputs toward the
        // join group on its own output port; the join waits for all
        let mut join_ready = root_done.max(out_port_free[0]) + outputs[0];
        out_port_free[0] = join_ready;
        for g in 1..m {
            let done = arrive[g].max(cpu_free[g]) + compute[g];
            cpu_free[g] = done;
            let out_done = done.max(out_port_free[g]) + outputs[g];
            out_port_free[g] = out_done;
            join_ready = join_ready.max(out_done);
        }
        // join phase on the join group's processor
        let join_done = join_ready.max(cpu_free[alloc.join_group]) + join_time;
        cpu_free[alloc.join_group] = join_done;
        departures.push(join_done);
    }
    SimReport::new(entries, departures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repliflow_core::comm_cost::forkjoin_latency;
    use repliflow_core::mapping::{Assignment, Mapping, Mode};

    fn mapping_of(fj: &ForkJoin, alloc: &ForkJoinAlloc) -> Mapping {
        Mapping::new(
            alloc
                .groups
                .iter()
                .zip(&alloc.procs)
                .enumerate()
                .map(|(g, (leaves, &proc))| {
                    let mut stages = leaves.clone();
                    if g == 0 {
                        stages.push(0);
                    }
                    if g == alloc.join_group {
                        stages.push(fj.join_stage());
                    }
                    Assignment::new(stages, vec![proc], Mode::Replicated)
                })
                .collect(),
        )
    }

    #[test]
    fn isolated_data_set_matches_analytic_latency() {
        let fj = ForkJoin::with_data_sizes(2, vec![2, 2], 3, 6, 4, vec![2, 2]);
        let plat = Platform::homogeneous(3, 1);
        let net = Network::uniform(3, 2);
        let alloc = ForkJoinAlloc {
            groups: vec![vec![], vec![1], vec![2]],
            procs: vec![ProcId(0), ProcId(1), ProcId(2)],
            join_group: 2,
        };
        let mapping = mapping_of(&fj, &alloc);
        for comm in [CommModel::OnePort, CommModel::BoundedMultiPort] {
            for start in [StartRule::Flexible, StartRule::Strict] {
                let analytic = forkjoin_latency(&fj, &plat, &net, comm, start, &mapping).unwrap();
                let report = simulate_forkjoin_with_comm(
                    &fj,
                    &plat,
                    &net,
                    &alloc,
                    comm,
                    start,
                    Feed::Interval(Rat::int(1000)),
                    4,
                );
                assert_eq!(report.max_latency(), analytic, "{comm:?}/{start:?}");
            }
        }
    }

    #[test]
    fn leaf_outputs_ship_to_the_join_group_not_out() {
        // Heavy per-leaf outputs, join co-located with the leaves: the
        // transfers are free, so the latency is pure compute + input +
        // broadcast — P_out never appears in a fork-join's fork phase.
        let fj = ForkJoin::with_data_sizes(1, vec![1], 1, 0, 2, vec![1000]);
        let plat = Platform::homogeneous(2, 1);
        let net = Network::uniform(2, 2);
        let alloc = ForkJoinAlloc {
            groups: vec![vec![], vec![1]],
            procs: vec![ProcId(0), ProcId(1)],
            join_group: 1,
        };
        let report = simulate_forkjoin_with_comm(
            &fj,
            &plat,
            &net,
            &alloc,
            CommModel::OnePort,
            StartRule::Flexible,
            Feed::Interval(Rat::int(1000)),
            2,
        );
        // root S0 done at 1, broadcast 1 -> arrival 2, leaf 1 -> 3,
        // output free (same group as join), join 1 -> 4
        assert_eq!(report.max_latency(), Rat::int(4));
    }

    #[test]
    fn join_in_root_group_is_legal() {
        let fj = ForkJoin::with_data_sizes(1, vec![2], 4, 2, 2, vec![2]);
        let plat = Platform::heterogeneous(vec![2, 1]);
        let net = Network::uniform(2, 1);
        let alloc = ForkJoinAlloc {
            groups: vec![vec![], vec![1]],
            procs: vec![ProcId(0), ProcId(1)],
            join_group: 0,
        };
        let mapping = mapping_of(&fj, &alloc);
        let analytic = forkjoin_latency(
            &fj,
            &plat,
            &net,
            CommModel::OnePort,
            StartRule::Strict,
            &mapping,
        )
        .unwrap();
        let report = simulate_forkjoin_with_comm(
            &fj,
            &plat,
            &net,
            &alloc,
            CommModel::OnePort,
            StartRule::Strict,
            Feed::Interval(Rat::int(1000)),
            3,
        );
        assert_eq!(report.max_latency(), analytic);
    }
}
