//! Pipeline simulation under the **general model with communication**
//! (Sections 3.2–3.3): single-processor interval mappings where each
//! processor, per data set, *pulls* its input over the incoming link,
//! computes, and *pushes* its output over the outgoing link — all three
//! phases serialized on the processor (one-port discipline).
//!
//! This is exactly the accounting of the paper's formulas (1) and (2),
//! where the transfer between consecutive intervals is billed on both
//! endpoints: the simulation must therefore reproduce
//! `repliflow_core::comm::pipeline_period_with_comm` (saturated feed) and
//! `::pipeline_latency_with_comm` (slow feed) — which the tests verify.

use crate::engine::entry_times;
use crate::report::{Feed, SimReport};
use repliflow_core::comm::{Endpoint, IntervalAlloc, Network};
use repliflow_core::platform::Platform;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Pipeline;

/// Simulates a pipeline with communication costs over an interval
/// allocation (one processor per interval).
///
/// # Panics
/// Panics if `alloc` is not a partition into consecutive intervals (the
/// same contract as the analytic functions in `repliflow_core::comm`).
pub fn simulate_pipeline_with_comm(
    pipeline: &Pipeline,
    platform: &Platform,
    network: &Network,
    alloc: &[IntervalAlloc],
    feed: Feed,
    n_data_sets: usize,
) -> SimReport {
    let m = alloc.len();
    assert!(m > 0, "empty interval mapping");

    // per-interval constants
    let mut pull = Vec::with_capacity(m);
    let mut compute = Vec::with_capacity(m);
    let mut push = Vec::with_capacity(m);
    for (j, a) in alloc.iter().enumerate() {
        let pred = if j == 0 {
            Endpoint::In
        } else {
            Endpoint::Proc(alloc[j - 1].proc)
        };
        let succ = if j + 1 == m {
            Endpoint::Out
        } else {
            Endpoint::Proc(alloc[j + 1].proc)
        };
        let me = Endpoint::Proc(a.proc);
        pull.push(network.transfer_time(pipeline.data_size(a.lo), pred, me));
        compute.push(Rat::ratio(
            pipeline.interval_work(a.lo, a.hi),
            platform.speed(a.proc),
        ));
        push.push(network.transfer_time(pipeline.data_size(a.hi + 1), me, succ));
    }

    let entries = entry_times(feed, n_data_sets);
    let mut free = vec![Rat::ZERO; m];
    let mut departures = Vec::with_capacity(n_data_sets);
    for &entry in &entries {
        // `handoff` = when the predecessor finished pushing this data set
        let mut handoff = entry;
        for j in 0..m {
            let start = handoff.max(free[j]);
            let done = start + pull[j] + compute[j] + push[j];
            free[j] = done;
            handoff = done;
        }
        departures.push(handoff);
    }
    SimReport::new(entries, departures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repliflow_core::comm::{pipeline_latency_with_comm, pipeline_period_with_comm};
    use repliflow_core::gen::Gen;
    use repliflow_core::platform::ProcId;

    fn alloc(parts: &[(usize, usize, usize)]) -> Vec<IntervalAlloc> {
        parts
            .iter()
            .map(|&(lo, hi, u)| IntervalAlloc {
                lo,
                hi,
                proc: ProcId(u),
            })
            .collect()
    }

    #[test]
    fn matches_formula_one_and_two() {
        let pipe = Pipeline::with_data_sizes(vec![8, 3], vec![4, 2, 6]);
        let plat = Platform::heterogeneous(vec![2, 1]);
        let net = Network::uniform(2, 2);
        let a = alloc(&[(0, 0, 0), (1, 1, 1)]);
        let analytic_period = pipeline_period_with_comm(&pipe, &plat, &net, &a);
        let analytic_latency = pipeline_latency_with_comm(&pipe, &plat, &net, &a);
        let report = simulate_pipeline_with_comm(&pipe, &plat, &net, &a, Feed::Saturated, 40);
        assert_eq!(report.measured_period(8), analytic_period);
        let report =
            simulate_pipeline_with_comm(&pipe, &plat, &net, &a, Feed::Interval(Rat::int(1000)), 5);
        assert_eq!(report.max_latency(), analytic_latency);
    }

    #[test]
    fn random_allocations_match_formulas() {
        let mut gen = Gen::new(0x99);
        for _ in 0..25 {
            let n = gen.size(1, 6);
            let p = gen.size(1, 4);
            let weights = gen.positive_ints(n, 1, 9);
            let sizes = gen.positive_ints(n + 1, 0, 6);
            let pipe = Pipeline::with_data_sizes(weights, sizes);
            let plat = gen.het_platform(p, 1, 5);
            let net = Network::uniform(p, gen.int(1, 4));
            // random interval partition with random (possibly repeated
            // across intervals? no — distinct procs) processors
            let mut cuts: Vec<usize> = Vec::new();
            for s in 1..n {
                if gen.flip(0.4) && cuts.len() + 1 < p {
                    cuts.push(s);
                }
            }
            let mut lo = 0;
            let mut a = Vec::new();
            for (next_proc, &c) in cuts.iter().chain(std::iter::once(&n)).enumerate() {
                a.push(IntervalAlloc {
                    lo,
                    hi: c - 1,
                    proc: ProcId(next_proc),
                });
                lo = c;
            }
            let analytic_period = pipeline_period_with_comm(&pipe, &plat, &net, &a);
            let analytic_latency = pipeline_latency_with_comm(&pipe, &plat, &net, &a);
            let report = simulate_pipeline_with_comm(&pipe, &plat, &net, &a, Feed::Saturated, 50);
            assert_eq!(report.measured_period(10), analytic_period);
            let report = simulate_pipeline_with_comm(
                &pipe,
                &plat,
                &net,
                &a,
                Feed::Interval(analytic_latency + Rat::ONE),
                6,
            );
            assert_eq!(report.max_latency(), analytic_latency);
        }
    }

    #[test]
    fn zero_communication_reduces_to_simplified_model() {
        let pipe = Pipeline::new(vec![14, 4, 2, 4]);
        let plat = Platform::homogeneous(2, 1);
        let net = Network::uniform(2, 5);
        let a = alloc(&[(0, 0, 0), (1, 3, 1)]);
        let report =
            simulate_pipeline_with_comm(&pipe, &plat, &net, &a, Feed::Interval(Rat::int(100)), 4);
        assert_eq!(report.max_latency(), Rat::int(24));
    }
}
