//! Simulation inputs (feed policies) and outputs (per-data-set traces and
//! aggregate measurements).

use repliflow_core::rational::Rat;

/// How data sets are fed into the workflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feed {
    /// Every data set is available at time 0 — the system runs at maximum
    /// throughput; use this to measure the steady-state period.
    Saturated,
    /// One data set every `interval` time units. With a large interval
    /// data sets traverse the system alone — use this to measure the
    /// worst-case latency without queueing effects.
    Interval(Rat),
}

/// Trace and aggregate measurements of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Entry time of each data set.
    pub entries: Vec<Rat>,
    /// Departure (full completion) time of each data set, non-decreasing.
    pub departures: Vec<Rat>,
    /// Per-data-set latency (`departure - entry`).
    pub latencies: Vec<Rat>,
}

impl SimReport {
    pub(crate) fn new(entries: Vec<Rat>, departures: Vec<Rat>) -> Self {
        assert_eq!(entries.len(), departures.len());
        let latencies = entries
            .iter()
            .zip(&departures)
            .map(|(&e, &d)| d - e)
            .collect();
        SimReport {
            entries,
            departures,
            latencies,
        }
    }

    /// Number of simulated data sets.
    pub fn len(&self) -> usize {
        self.departures.len()
    }

    /// True iff no data set was simulated.
    pub fn is_empty(&self) -> bool {
        self.departures.is_empty()
    }

    /// Average inter-departure time over the last `window` departures —
    /// the measured steady-state period. `window` should cover whole
    /// round-robin cycles (a multiple of the lcm of replica counts) and
    /// the run must be long enough to pass the pipeline fill transient.
    ///
    /// # Panics
    /// Panics if fewer than `window + 1` data sets were simulated.
    pub fn measured_period(&self, window: usize) -> Rat {
        assert!(
            self.departures.len() > window && window > 0,
            "simulate at least window + 1 data sets"
        );
        let last = *self.departures.last().unwrap();
        let first = self.departures[self.departures.len() - 1 - window];
        (last - first) / Rat::int(window as i128)
    }

    /// Maximum latency over all data sets.
    pub fn max_latency(&self) -> Rat {
        self.latencies.iter().copied().fold(Rat::ZERO, Rat::max)
    }
}

/// The lcm of all replica-set sizes of a mapping — the round-robin cycle
/// length, used to size measurement windows.
pub fn replica_cycle(sizes: impl Iterator<Item = usize>) -> usize {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    sizes.fold(1usize, |acc, k| acc / gcd(acc, k.max(1)) * k.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let entries = vec![Rat::ZERO, Rat::int(1), Rat::int(2)];
        let departures = vec![Rat::int(5), Rat::int(7), Rat::int(9)];
        let r = SimReport::new(entries, departures);
        assert_eq!(r.len(), 3);
        assert_eq!(r.latencies, vec![Rat::int(5), Rat::int(6), Rat::int(7)]);
        assert_eq!(r.max_latency(), Rat::int(7));
        assert_eq!(r.measured_period(2), Rat::int(2));
        assert_eq!(r.measured_period(1), Rat::int(2));
    }

    #[test]
    fn cycle_lcm() {
        assert_eq!(replica_cycle([2, 3].into_iter()), 6);
        assert_eq!(replica_cycle([4, 2, 1].into_iter()), 4);
        assert_eq!(replica_cycle(std::iter::empty()), 1);
        assert_eq!(replica_cycle([0].into_iter()), 1); // defensive clamp
    }

    #[test]
    #[should_panic(expected = "window + 1")]
    fn short_runs_rejected() {
        let r = SimReport::new(vec![Rat::ZERO], vec![Rat::ONE]);
        let _ = r.measured_period(1);
    }
}
