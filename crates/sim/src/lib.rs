//! # repliflow-sim
//!
//! A deterministic discrete-event simulator that *executes* mapped
//! workflows data-set by data-set, providing the independent validation
//! the paper (a pure theory paper) never had: the analytic period and
//! latency formulas of Section 3.4 are checked against observed behaviour.
//!
//! The simulator implements the model's semantics operationally:
//!
//! * round-robin dispatch of consecutive data sets over the replicas of a
//!   replicated group (Section 3.3's rule), with in-order FIFO hand-off
//!   between groups (the property the round-robin rule exists to protect —
//!   a demand-driven distribution would reorder data sets);
//! * data-parallel groups as a single shared resource of aggregate speed;
//! * the flexible fork model: non-root groups start a data set as soon as
//!   `S0` completes for it;
//! * fork-join: the join phase starts once *every* leaf of the data set
//!   has finished anywhere on the platform;
//! * optionally, the general model with communication: pipelines with
//!   pull / compute / push serialized per processor (matching formulas
//!   (1)–(2)), forks with a one-port/multi-port `δ_0` broadcast and
//!   per-group output ports (matching the analytic fork completion
//!   times under both start rules — see [`comm_fork`]), and fork-joins
//!   whose leaf outputs ship to the join group before the join phase
//!   runs (matching the analytic fork-join latency — see
//!   [`comm_fork_join`]).
//!
//! Measurements: feed [`Feed::Saturated`] and read
//! [`SimReport::measured_period`] over whole round-robin cycles to obtain
//! the steady-state period; feed [`Feed::Interval`] with a large interval
//! and read [`SimReport::max_latency`] to obtain the worst-case traversal
//! latency without queueing effects.
//!
//! On homogeneous platforms the measured values equal the analytic ones
//! exactly (`Rat` equality, no tolerance). On heterogeneous platforms the
//! measured latency can be *strictly smaller* than the analytic value:
//! the formulas charge every group its slowest replica, but a data set
//! only experiences that worst case if the round-robin residues align in
//! every group (a CRT condition) — an interesting model-vs-execution gap
//! this crate's tests document. The measured period always matches.

#![warn(missing_docs)]

pub mod comm_fork;
pub mod comm_fork_join;
pub mod comm_pipeline;
pub mod engine;
pub mod fork;
pub mod pipeline;
pub mod report;

pub use comm_fork::simulate_fork_with_comm;
pub use comm_fork_join::{simulate_forkjoin_with_comm, ForkJoinAlloc};
pub use comm_pipeline::simulate_pipeline_with_comm;
pub use fork::{simulate_fork, simulate_forkjoin};
pub use pipeline::simulate_pipeline;
pub use report::{Feed, SimReport};
