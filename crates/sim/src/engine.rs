//! The execution engine: per-group data-set scheduling.
//!
//! Under the paper's model every duration is deterministic, so the
//! discrete-event schedule reduces to a recurrence per (group, data set):
//!
//! * a **replicated** group runs data set `d` on processor `d mod k`
//!   (the round-robin rule of Section 3.3), which may start once the
//!   data set is ready, the processor is free, and — to preserve the
//!   in-order semantics the round-robin rule exists to guarantee — once
//!   the previous data set has started;
//! * results leave the group in order: data set `d` is *released*
//!   no earlier than data set `d-1` (FIFO hand-off, as required when the
//!   next stage is sequential — the reason the paper forbids
//!   demand-driven distribution);
//! * a **data-parallel** group is one shared resource of aggregate speed
//!   `Σ s`, processing data sets one at a time.

use repliflow_core::mapping::{Assignment, Mode};
use repliflow_core::platform::Platform;
use repliflow_core::rational::Rat;

/// Scheduling state of one stage group during a run.
pub struct GroupSim {
    /// Per-replica "free at" clock (one entry for data-parallel groups).
    free_at: Vec<Rat>,
    /// Per-replica processing duration of one data set.
    durations: Vec<Rat>,
    /// Release time of the previous data set (in-order hand-off).
    last_release: Rat,
    /// Start time of the previous data set (in-order starts).
    last_start: Rat,
    /// Next data set's replica index.
    next: usize,
}

impl GroupSim {
    /// Builds the scheduling state for a group of total `work`.
    pub fn new(work: u64, assignment: &Assignment, platform: &Platform) -> Self {
        let (free_at, durations) = match assignment.mode {
            Mode::Replicated => {
                let durations: Vec<Rat> = assignment
                    .procs()
                    .iter()
                    .map(|&q| Rat::ratio(work, platform.speed(q)))
                    .collect();
                (vec![Rat::ZERO; durations.len()], durations)
            }
            Mode::DataParallel => {
                let d = Rat::ratio(work, platform.subset_speed(assignment.procs()));
                (vec![Rat::ZERO], vec![d])
            }
        };
        GroupSim {
            free_at,
            durations,
            last_release: Rat::ZERO,
            last_start: Rat::ZERO,
            next: 0,
        }
    }

    /// Schedules the next data set, ready at `ready`; returns its release
    /// time from this group.
    pub fn process(&mut self, ready: Rat) -> Rat {
        self.process_traced(ready).2
    }

    /// Like [`GroupSim::process`] but also returns the start and finish
    /// times of the data set on its replica (used by the fork simulation,
    /// which needs the `S0`-completion instant within a root group).
    pub fn process_traced(&mut self, ready: Rat) -> (Rat, Rat, Rat) {
        let u = self.next;
        self.next = (self.next + 1) % self.free_at.len();
        let start = ready.max(self.free_at[u]).max(self.last_start);
        let finish = start + self.durations[u];
        let release = finish.max(self.last_release);
        self.free_at[u] = finish;
        self.last_start = start;
        self.last_release = release;
        (start, finish, release)
    }

    /// The group's replica count (1 for data-parallel groups).
    pub fn replicas(&self) -> usize {
        self.free_at.len()
    }
}

/// Entry times induced by a feed policy.
pub fn entry_times(feed: crate::report::Feed, n_data_sets: usize) -> Vec<Rat> {
    match feed {
        crate::report::Feed::Saturated => vec![Rat::ZERO; n_data_sets],
        crate::report::Feed::Interval(dt) => {
            (0..n_data_sets).map(|d| Rat::int(d as i128) * dt).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repliflow_core::platform::ProcId;

    #[test]
    fn round_robin_cycle_matches_group_period() {
        // W = 2 on speeds (1, 2): durations 2 and 1. Saturated: releases
        // at 2, 2, 4, 4, ... -> 2 data sets per tmax = 2 time units,
        // average spacing = 1 = W/(k·s_min) = 2/(2·1).
        let plat = Platform::heterogeneous(vec![1, 2]);
        let a = Assignment::new(vec![0], vec![ProcId(0), ProcId(1)], Mode::Replicated);
        let mut g = GroupSim::new(2, &a, &plat);
        let releases: Vec<Rat> = (0..6).map(|_| g.process(Rat::ZERO)).collect();
        assert_eq!(releases, [2, 2, 4, 4, 6, 6].map(Rat::int).to_vec());
    }

    #[test]
    fn data_parallel_group_serializes() {
        let plat = Platform::heterogeneous(vec![1, 3]);
        let a = Assignment::new(vec![0], vec![ProcId(0), ProcId(1)], Mode::DataParallel);
        let mut g = GroupSim::new(8, &a, &plat);
        assert_eq!(g.replicas(), 1);
        // duration 8/4 = 2 each, strictly serialized
        assert_eq!(g.process(Rat::ZERO), Rat::int(2));
        assert_eq!(g.process(Rat::ZERO), Rat::int(4));
        assert_eq!(g.process(Rat::int(10)), Rat::int(12));
    }

    #[test]
    fn in_order_release_never_inverts() {
        // slow proc first: the fast proc's result must wait
        let plat = Platform::heterogeneous(vec![1, 10]);
        let a = Assignment::new(vec![0], vec![ProcId(0), ProcId(1)], Mode::Replicated);
        let mut g = GroupSim::new(10, &a, &plat);
        let r0 = g.process(Rat::ZERO); // slow: 10
        let r1 = g.process(Rat::ZERO); // fast would finish at 1
        assert_eq!(r0, Rat::int(10));
        assert_eq!(r1, Rat::int(10)); // held for order
    }

    #[test]
    fn feed_entry_times() {
        use crate::report::Feed;
        assert_eq!(entry_times(Feed::Saturated, 3), vec![Rat::ZERO; 3]);
        assert_eq!(
            entry_times(Feed::Interval(Rat::int(5)), 3),
            vec![Rat::ZERO, Rat::int(5), Rat::int(10)]
        );
    }
}
