//! Fork simulation under the **general model with communication**
//! (Sections 3.2–3.3): single-processor-per-group [`ForkAlloc`]
//! mappings executed event by event.
//!
//! The analytic fork timing of `repliflow_core::comm` makes two
//! modeling choices this simulation implements operationally:
//!
//! * **communication overlaps computation** on the same processor
//!   except where the model explicitly serializes it — the `δ_0`
//!   broadcast occupies the root's *send port* (one transfer at a time
//!   under one-port, concurrent-with-capacity under bounded
//!   multi-port), leaf outputs occupy each group's own *output port*
//!   (serialized per group), and computation proceeds independently;
//! * sends start at `S0`-completion under [`StartRule::Flexible`] and
//!   only after the root group's whole computation under
//!   [`StartRule::Strict`].
//!
//! Each resource (input link, root CPU, broadcast port, per-group CPUs
//! and output ports) keeps its own free-time across data sets, so a
//! data set traversing the system alone reproduces
//! [`fork_completion_with_comm`] exactly — which the tests in
//! `tests/comm_vs_analytic.rs` verify against both comm disciplines and
//! both start rules. Use [`Feed::Interval`] with a large interval and
//! read [`SimReport::max_latency`]; the saturated-feed period is *not*
//! comparable to [`fork_period_with_comm`], whose round-robin busy-time
//! accounting deliberately bills a processor's computation and all of
//! its transfers sequentially.
//!
//! [`fork_completion_with_comm`]: repliflow_core::comm::fork_completion_with_comm
//! [`fork_period_with_comm`]: repliflow_core::comm::fork_period_with_comm

use crate::engine::entry_times;
use crate::report::{Feed, SimReport};
use repliflow_core::comm::{CommModel, Endpoint, ForkAlloc, Network, StartRule};
use repliflow_core::platform::Platform;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Fork;

/// Simulates a fork with communication costs over a one-processor-per-
/// group allocation.
///
/// # Panics
/// Panics if `alloc` is not a legal [`ForkAlloc`] for `fork` (the same
/// contract as the analytic functions in `repliflow_core::comm`).
#[allow(clippy::too_many_arguments)] // mirrors the analytic fork evaluators' signatures
pub fn simulate_fork_with_comm(
    fork: &Fork,
    platform: &Platform,
    network: &Network,
    alloc: &ForkAlloc,
    comm: CommModel,
    start: StartRule,
    feed: Feed,
    n_data_sets: usize,
) -> SimReport {
    let m = alloc.groups.len();
    let root = Endpoint::Proc(alloc.procs[0]);

    // per-group constants
    let group_work = |g: usize| -> u64 {
        let leaves: u64 = alloc.groups[g].iter().map(|&s| fork.weight(s)).sum();
        if g == 0 {
            fork.root_weight() + leaves
        } else {
            leaves
        }
    };
    let compute: Vec<Rat> = (0..m)
        .map(|g| Rat::ratio(group_work(g), platform.speed(alloc.procs[g])))
        .collect();
    let s0_time = Rat::ratio(fork.root_weight(), platform.speed(alloc.procs[0]));
    let pull = network.transfer_time(fork.input_size(), Endpoint::In, root);
    let bcast: Vec<Rat> = (0..m)
        .map(|g| network.transfer_time(fork.broadcast_size(), root, Endpoint::Proc(alloc.procs[g])))
        .collect();
    let outputs: Vec<Rat> = (0..m)
        .map(|g| {
            alloc.groups[g]
                .iter()
                .map(|&s| {
                    network.transfer_time(
                        fork.output_size(s),
                        Endpoint::Proc(alloc.procs[g]),
                        Endpoint::Out,
                    )
                })
                .sum()
        })
        .collect();
    let capacity = {
        let volume = fork.broadcast_size() * (m as u64).saturating_sub(1);
        if volume > 0 && !network.is_infinite() {
            network
                .node_capacity()
                .map(|cap| Rat::ratio(volume, cap))
                .unwrap_or(Rat::ZERO)
        } else {
            Rat::ZERO
        }
    };

    // resource free-times, persistent across data sets
    let mut in_link_free = Rat::ZERO;
    let mut bcast_port_free = Rat::ZERO;
    let mut cpu_free = vec![Rat::ZERO; m];
    let mut out_port_free = vec![Rat::ZERO; m];

    let entries = entry_times(feed, n_data_sets);
    let mut departures = Vec::with_capacity(n_data_sets);
    for &entry in &entries {
        // root: pull input, compute S0 then its own leaves
        let recv_done = entry.max(in_link_free) + pull;
        in_link_free = recv_done;
        let s0_done = recv_done.max(cpu_free[0]) + s0_time;
        let root_done = recv_done.max(cpu_free[0]) + compute[0];
        cpu_free[0] = root_done;
        let send_start = match start {
            StartRule::Flexible => s0_done,
            StartRule::Strict => root_done,
        };
        // broadcast δ0 on the root's send port
        let mut arrive = vec![Rat::ZERO; m];
        match comm {
            CommModel::OnePort => {
                let mut t = send_start.max(bcast_port_free);
                for g in 1..m {
                    t += bcast[g];
                    arrive[g] = t;
                }
                bcast_port_free = t;
            }
            CommModel::BoundedMultiPort => {
                let base = send_start.max(bcast_port_free);
                for g in 1..m {
                    arrive[g] = base + bcast[g].max(capacity);
                    bcast_port_free = bcast_port_free.max(arrive[g]);
                }
            }
        }
        // every group: compute on arrival, then push outputs on its own
        // output port
        let mut departure = root_done.max(out_port_free[0]) + outputs[0];
        out_port_free[0] = departure;
        for g in 1..m {
            let done = arrive[g].max(cpu_free[g]) + compute[g];
            cpu_free[g] = done;
            let out_done = done.max(out_port_free[g]) + outputs[g];
            out_port_free[g] = out_done;
            departure = departure.max(out_done);
        }
        departures.push(departure);
    }
    SimReport::new(entries, departures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repliflow_core::comm::fork_completion_with_comm;
    use repliflow_core::platform::ProcId;

    #[test]
    fn isolated_data_set_matches_analytic_completion() {
        let fork = Fork::with_data_sizes(2, vec![2, 2], 6, 4, vec![2, 2]);
        let plat = Platform::homogeneous(3, 1);
        let net = Network::uniform(3, 2);
        let fa = ForkAlloc {
            groups: vec![vec![], vec![1], vec![2]],
            procs: vec![ProcId(0), ProcId(1), ProcId(2)],
        };
        for comm in [CommModel::OnePort, CommModel::BoundedMultiPort] {
            for start in [StartRule::Flexible, StartRule::Strict] {
                let (_, analytic) = fork_completion_with_comm(&fork, &plat, &net, &fa, comm, start);
                let report = simulate_fork_with_comm(
                    &fork,
                    &plat,
                    &net,
                    &fa,
                    comm,
                    start,
                    Feed::Interval(Rat::int(1000)),
                    4,
                );
                assert_eq!(report.max_latency(), analytic, "{comm:?}/{start:?}");
            }
        }
    }

    #[test]
    fn capacity_bound_slows_the_broadcast() {
        let fork = Fork::with_data_sizes(0, vec![1, 1], 0, 4, vec![0, 0]);
        let plat = Platform::homogeneous(3, 1);
        let net = Network::uniform(3, 100).with_node_capacity(2);
        let fa = ForkAlloc {
            groups: vec![vec![], vec![1], vec![2]],
            procs: vec![ProcId(0), ProcId(1), ProcId(2)],
        };
        let report = simulate_fork_with_comm(
            &fork,
            &plat,
            &net,
            &fa,
            CommModel::BoundedMultiPort,
            StartRule::Flexible,
            Feed::Interval(Rat::int(1000)),
            2,
        );
        // volume 8 / capacity 2 = 4, then 1 unit of leaf work
        assert_eq!(report.max_latency(), Rat::int(5));
    }
}
