//! Property tests: the simulator agrees with the analytic cost model of
//! `repliflow-core` on randomized mappings.
//!
//! * **Period** — always equal: the steady-state inter-departure average
//!   over whole round-robin cycles equals the analytic period, saturated.
//! * **Latency** — equal on homogeneous platforms; bounded above by the
//!   analytic value on heterogeneous platforms (the formulas charge the
//!   slowest replica of every group; an executing data set hits that
//!   combination only when the round-robin residues align).

use repliflow_core::gen::Gen;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::ProcId;
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Fork;
use repliflow_sim::{simulate_fork, simulate_pipeline, Feed};

/// Random legal pipeline mapping: random interval cuts, random disjoint
/// processor blocks, random modes.
fn random_pipeline_mapping(gen: &mut Gen, n: usize, p: usize, allow_dp: bool) -> Mapping {
    // choose number of groups and cuts
    let m = gen.size(1, n.min(p));
    let mut cuts: Vec<usize> = Vec::new();
    while cuts.len() + 1 < m {
        let c = gen.size(1, n - 1);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    cuts.push(n);
    // distribute processors: give each group at least one, spread the rest
    let mut sizes = vec![1usize; m];
    let mut extra = p - m;
    while extra > 0 {
        let g = gen.size(0, m - 1);
        sizes[g] += 1;
        extra -= 1;
    }
    let mut assignments = Vec::new();
    let mut lo = 0;
    let mut next_proc = 0;
    for (g, &hi) in cuts.iter().enumerate() {
        let procs: Vec<ProcId> = (next_proc..next_proc + sizes[g]).map(ProcId).collect();
        next_proc += sizes[g];
        let single_stage = hi - lo == 1;
        let mode = if allow_dp && single_stage && procs.len() >= 2 && gen.flip(0.5) {
            Mode::DataParallel
        } else {
            Mode::Replicated
        };
        assignments.push(Assignment::interval(lo, hi - 1, procs, mode));
        lo = hi;
    }
    Mapping::new(assignments)
}

#[test]
fn pipeline_period_matches_analytic_everywhere() {
    let mut gen = Gen::new(0x500);
    for case in 0..40 {
        let n = gen.size(1, 6);
        let p = gen.size(1, 6);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.het_platform(p, 1, 5);
        let m = random_pipeline_mapping(&mut gen, n, p, true);
        let analytic = pipe.period(&plat, &m).unwrap();
        let cycle = repliflow_sim::pipeline::cycle_length(&m);
        let window = 4 * cycle;
        let report = simulate_pipeline(
            &pipe,
            &plat,
            &m,
            Feed::Saturated,
            10 * window.max(4) + window,
        )
        .unwrap();
        assert_eq!(
            report.measured_period(window),
            analytic,
            "case {case}: {m} on {:?}",
            plat.speeds()
        );
    }
}

#[test]
fn pipeline_latency_matches_analytic_on_hom_platforms() {
    let mut gen = Gen::new(0x501);
    for case in 0..40 {
        let n = gen.size(1, 6);
        let p = gen.size(1, 6);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.hom_platform(p, 1, 4);
        let m = random_pipeline_mapping(&mut gen, n, p, true);
        let analytic = pipe.latency(&plat, &m).unwrap();
        let report =
            simulate_pipeline(&pipe, &plat, &m, Feed::Interval(analytic + Rat::ONE), 24).unwrap();
        assert_eq!(report.max_latency(), analytic, "case {case}: {m}");
    }
}

#[test]
fn pipeline_latency_bounded_by_analytic_on_het_platforms() {
    let mut gen = Gen::new(0x502);
    let mut equal = 0;
    for case in 0..40 {
        let n = gen.size(1, 6);
        let p = gen.size(1, 6);
        let pipe = gen.pipeline(n, 1, 12);
        let plat = gen.het_platform(p, 1, 5);
        let m = random_pipeline_mapping(&mut gen, n, p, true);
        let analytic = pipe.latency(&plat, &m).unwrap();
        let report =
            simulate_pipeline(&pipe, &plat, &m, Feed::Interval(analytic + Rat::ONE), 48).unwrap();
        assert!(
            report.max_latency() <= analytic,
            "case {case}: {m} measured {} > analytic {analytic}",
            report.max_latency()
        );
        if report.max_latency() == analytic {
            equal += 1;
        }
    }
    // the bound is tight on most instances (single-proc groups, aligned
    // residues, homogeneous groups...)
    assert!(equal >= 20, "only {equal}/40 tight");
}

#[test]
fn single_processor_groups_are_always_tight() {
    // with one processor per group the analytic latency is exact even on
    // heterogeneous platforms (no round-robin variance)
    let mut gen = Gen::new(0x503);
    for _ in 0..30 {
        let n = gen.size(1, 5);
        let pipe = gen.pipeline(n, 1, 10);
        let p = gen.size(n, 6);
        let plat = gen.het_platform(p, 1, 6);
        // n singleton groups
        let mapping = Mapping::new((0..n).map(|s| Assignment::single(s, ProcId(s))).collect());
        let analytic = pipe.latency(&plat, &mapping).unwrap();
        let report = simulate_pipeline(
            &pipe,
            &plat,
            &mapping,
            Feed::Interval(analytic + Rat::ONE),
            8,
        )
        .unwrap();
        assert_eq!(report.max_latency(), analytic);
    }
}

/// Random legal fork mapping: random leaf partition around a root group.
fn random_fork_mapping(gen: &mut Gen, fork: &Fork, p: usize, allow_dp: bool) -> Mapping {
    let n = fork.n_leaves();
    // root group takes a random (possibly empty) prefix of leaves
    let n0 = gen.size(0, n);
    let groups_rest = if n0 == n {
        0
    } else {
        gen.size(1, (n - n0).min(p - 1))
    };
    let mut sizes = vec![1usize; 1 + groups_rest];
    let mut extra = p - sizes.len();
    while extra > 0 {
        let g = gen.size(0, sizes.len() - 1);
        sizes[g] += 1;
        extra -= 1;
    }
    let mut assignments = Vec::new();
    let mut next_proc = 0usize;
    // root group
    let root_procs: Vec<ProcId> = (0..sizes[0]).map(ProcId).collect();
    next_proc += sizes[0];
    let mut root_stages = vec![0usize];
    root_stages.extend(1..=n0);
    let root_mode = if allow_dp && n0 == 0 && root_procs.len() >= 2 && gen.flip(0.5) {
        Mode::DataParallel
    } else {
        Mode::Replicated
    };
    assignments.push(Assignment::new(root_stages, root_procs, root_mode));
    // split remaining leaves into groups_rest contiguous chunks
    let rest: Vec<usize> = (n0 + 1..=n).collect();
    if !rest.is_empty() {
        let chunk = rest.len().div_ceil(groups_rest);
        for (g, leaves) in rest.chunks(chunk).enumerate() {
            let k = sizes.get(1 + g).copied().unwrap_or(1);
            let procs: Vec<ProcId> = (next_proc..next_proc + k).map(ProcId).collect();
            next_proc += k;
            let mode = if allow_dp && procs.len() >= 2 && gen.flip(0.5) {
                Mode::DataParallel
            } else {
                Mode::Replicated
            };
            assignments.push(Assignment::new(leaves.to_vec(), procs, mode));
        }
    }
    Mapping::new(assignments)
}

#[test]
fn fork_period_matches_analytic_everywhere() {
    let mut gen = Gen::new(0x504);
    for case in 0..30 {
        let n = gen.size(0, 5);
        let p = gen.size(2, 6);
        let fork = gen.fork(n, 1, 10);
        let plat = gen.het_platform(p, 1, 5);
        let m = random_fork_mapping(&mut gen, &fork, p, true);
        if m.validate_fork(&fork, &plat, true).is_err() {
            continue;
        }
        let analytic = fork.period(&plat, &m).unwrap();
        let cycle = repliflow_sim::fork::cycle_length(&m);
        let window = 4 * cycle;
        let report = simulate_fork(
            &fork,
            &plat,
            &m,
            Feed::Saturated,
            10 * window.max(4) + window,
        )
        .unwrap();
        assert_eq!(report.measured_period(window), analytic, "case {case}: {m}");
    }
}

#[test]
fn fork_latency_matches_analytic_on_hom_platforms() {
    let mut gen = Gen::new(0x505);
    for case in 0..30 {
        let n = gen.size(0, 5);
        let p = gen.size(2, 6);
        let fork = gen.fork(n, 1, 10);
        let plat = gen.hom_platform(p, 1, 4);
        let m = random_fork_mapping(&mut gen, &fork, p, true);
        if m.validate_fork(&fork, &plat, true).is_err() {
            continue;
        }
        let analytic = fork.latency(&plat, &m).unwrap();
        let report =
            simulate_fork(&fork, &plat, &m, Feed::Interval(analytic + Rat::ONE), 24).unwrap();
        assert_eq!(report.max_latency(), analytic, "case {case}: {m}");
    }
}
