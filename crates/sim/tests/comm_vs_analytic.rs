//! Property tests: the discrete-event simulation of the general model
//! (pull / compute / push, one-port per processor) agrees with the
//! analytic communication-aware evaluators of `repliflow-core` on
//! randomized single-processor interval mappings — the class where the
//! paper's formulas (1)–(2), the general-mapping evaluators of
//! `comm_cost` and the simulator must all coincide exactly.

use proptest::prelude::*;
use repliflow_core::comm::{
    fork_completion_with_comm, pipeline_latency_with_comm, pipeline_period_with_comm, CommModel,
    ForkAlloc, IntervalAlloc, Network, StartRule,
};
use repliflow_core::comm_cost;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::{Fork, ForkJoin, Pipeline};
use repliflow_sim::{
    simulate_fork_with_comm, simulate_forkjoin_with_comm, simulate_pipeline_with_comm, Feed,
    ForkJoinAlloc,
};

/// Deterministically derives an interval partition of `n` stages onto
/// distinct processors of a `p`-processor platform from proptest-drawn
/// cut decisions.
fn derive_alloc(n: usize, p: usize, cut_bits: usize) -> Vec<IntervalAlloc> {
    let mut cuts = Vec::new();
    for s in 1..n {
        if cut_bits & (1 << (s - 1)) != 0 && cuts.len() + 1 < p {
            cuts.push(s);
        }
    }
    cuts.push(n);
    let mut alloc = Vec::new();
    let mut lo = 0;
    for (proc, &c) in cuts.iter().enumerate() {
        alloc.push(IntervalAlloc {
            lo,
            hi: c - 1,
            proc: ProcId(proc),
        });
        lo = c;
    }
    alloc
}

fn mapping_of(alloc: &[IntervalAlloc]) -> Mapping {
    Mapping::new(
        alloc
            .iter()
            .map(|a| Assignment::interval(a.lo, a.hi, vec![a.proc], Mode::Replicated))
            .collect(),
    )
}

/// Deterministically derives a fork group allocation (root group plus
/// up to `p - 1` leaf groups on distinct processors) from proptest-drawn
/// assignment decisions.
fn derive_fork_alloc(n_leaves: usize, p: usize, picks: usize) -> ForkAlloc {
    let n_groups = 1 + (p - 1).min(n_leaves);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut bits = picks;
    for leaf in 1..=n_leaves {
        groups[bits % n_groups].push(leaf);
        bits /= n_groups.max(1);
    }
    // drop empty non-root groups so every group is meaningful
    let mut final_groups = vec![std::mem::take(&mut groups[0])];
    final_groups.extend(groups.into_iter().skip(1).filter(|g| !g.is_empty()));
    let procs: Vec<ProcId> = (0..final_groups.len()).map(ProcId).collect();
    ForkAlloc {
        groups: final_groups,
        procs,
    }
}

/// Deterministically derives a fork-join group allocation from
/// proptest-drawn decisions: the fork part as in [`derive_fork_alloc`],
/// plus a join-group choice — any existing group, or (when a processor
/// is free) a dedicated leaf-free join group of its own.
fn derive_forkjoin_alloc(
    n_leaves: usize,
    p: usize,
    picks: usize,
    join_pick: usize,
) -> ForkJoinAlloc {
    let base = derive_fork_alloc(n_leaves, p, picks);
    let mut groups = base.groups;
    let mut procs = base.procs;
    let choices = groups.len() + usize::from(procs.len() < p);
    let choice = join_pick % choices;
    let join_group = if choice == groups.len() {
        // dedicated leaf-free join group on the first unused processor
        groups.push(Vec::new());
        procs.push(ProcId(procs.len()));
        groups.len() - 1
    } else {
        choice
    };
    ForkJoinAlloc {
        groups,
        procs,
        join_group,
    }
}

/// The [`Mapping`] equivalent of a [`ForkJoinAlloc`] (single-processor
/// replicated groups; group 0 additionally holds the root stage, the
/// join group additionally holds the join stage).
fn forkjoin_mapping_of(fj: &ForkJoin, alloc: &ForkJoinAlloc) -> Mapping {
    Mapping::new(
        alloc
            .groups
            .iter()
            .zip(&alloc.procs)
            .enumerate()
            .map(|(g, (leaves, &proc))| {
                let mut stages = leaves.clone();
                if g == 0 {
                    stages.push(0);
                }
                if g == alloc.join_group {
                    stages.push(fj.join_stage());
                }
                Assignment::new(stages, vec![proc], Mode::Replicated)
            })
            .collect(),
    )
}

/// The [`Mapping`] equivalent of a [`ForkAlloc`] (single-processor
/// replicated groups; group 0 additionally holds the root stage).
fn fork_mapping_of(alloc: &ForkAlloc) -> Mapping {
    Mapping::new(
        alloc
            .groups
            .iter()
            .zip(&alloc.procs)
            .enumerate()
            .map(|(g, (leaves, &proc))| {
                let mut stages = leaves.clone();
                if g == 0 {
                    stages.push(0);
                }
                Assignment::new(stages, vec![proc], Mode::Replicated)
            })
            .collect(),
    )
}

proptest! {
    /// Saturated-feed steady state reproduces formula (1); an isolated
    /// data set reproduces formula (2). Both also equal the
    /// general-mapping evaluators restricted to this class.
    #[test]
    fn simulation_matches_analytic_comm_evaluators(
        weights in prop::collection::vec(1u64..=9, 1..=6),
        sizes in prop::collection::vec(0u64..=6, 7),
        speeds in prop::collection::vec(1u64..=5, 1..=4),
        bw in 1u64..=4,
        cut_bits in 0usize..1_000_000,
    ) {
        let n = weights.len();
        let p = speeds.len();
        let pipe = Pipeline::with_data_sizes(weights, sizes[..=n].to_vec());
        let plat = Platform::heterogeneous(speeds);
        let net = Network::uniform(p, bw);
        let alloc = derive_alloc(n, p, cut_bits);

        let analytic_period = pipeline_period_with_comm(&pipe, &plat, &net, &alloc);
        let analytic_latency = pipeline_latency_with_comm(&pipe, &plat, &net, &alloc);

        // the general-mapping evaluators agree on this class
        let mapping = mapping_of(&alloc);
        prop_assert_eq!(
            comm_cost::pipeline_period(&pipe, &plat, &net, &mapping).unwrap(),
            analytic_period
        );
        prop_assert_eq!(
            comm_cost::pipeline_latency(&pipe, &plat, &net, &mapping).unwrap(),
            analytic_latency
        );

        // ... and so does the independent discrete-event execution
        let report = simulate_pipeline_with_comm(&pipe, &plat, &net, &alloc, Feed::Saturated, 40);
        prop_assert_eq!(report.measured_period(8), analytic_period);
        let report = simulate_pipeline_with_comm(
            &pipe,
            &plat,
            &net,
            &alloc,
            Feed::Interval(analytic_latency + Rat::ONE),
            5,
        );
        prop_assert_eq!(report.max_latency(), analytic_latency);
    }

    /// Fork witnesses: the discrete-event broadcast/output-port
    /// execution of an isolated data set reproduces both the paper-
    /// formula completion times (`core::comm`) and the general-mapping
    /// evaluator (`core::comm_cost`) restricted to single-processor
    /// groups — for both send disciplines and both start rules.
    #[test]
    fn fork_simulation_matches_analytic_comm_evaluators(
        root_w in 1u64..=8,
        leaf_weights in prop::collection::vec(1u64..=8, 0..=5),
        sizes in prop::collection::vec(0u64..=6, 7),
        speeds in prop::collection::vec(1u64..=5, 1..=4),
        bw in 1u64..=4,
        capacity in 0u64..=4,
        picks in 0usize..1_000_000,
        one_port in 0usize..2,
        strict in 0usize..2,
    ) {
        let n = leaf_weights.len();
        let p = speeds.len();
        let fork = Fork::with_data_sizes(
            root_w,
            leaf_weights,
            sizes[0],
            sizes[1],
            sizes[2..2 + n].to_vec(),
        );
        let plat = Platform::heterogeneous(speeds);
        // capacity 0 encodes "no node bound"
        let net = if capacity > 0 {
            Network::uniform(p, bw).with_node_capacity(capacity)
        } else {
            Network::uniform(p, bw)
        };
        let alloc = derive_fork_alloc(n, p, picks);
        let comm = if one_port == 0 { CommModel::OnePort } else { CommModel::BoundedMultiPort };
        let start = if strict == 0 { StartRule::Strict } else { StartRule::Flexible };

        let (_, analytic) = fork_completion_with_comm(&fork, &plat, &net, &alloc, comm, start);

        // the general-mapping evaluator agrees on this class
        let mapping = fork_mapping_of(&alloc);
        prop_assert_eq!(
            comm_cost::fork_latency(&fork, &plat, &net, comm, start, &mapping).unwrap(),
            analytic
        );

        // ... and so does the independent discrete-event execution
        let report = simulate_fork_with_comm(
            &fork,
            &plat,
            &net,
            &alloc,
            comm,
            start,
            Feed::Interval(analytic + Rat::ONE),
            4,
        );
        prop_assert_eq!(report.max_latency(), analytic);
    }

    /// Fork-join witnesses: the discrete-event execution — broadcast in,
    /// per-group leaf outputs shipped to the join group, join phase once
    /// everything arrived — reproduces the analytic general-mapping
    /// fork-join latency (`core::comm_cost::forkjoin_latency`) on an
    /// isolated data set, for both send disciplines, both start rules,
    /// every join placement (root group, leaf group, dedicated group)
    /// and capacity-bounded networks.
    #[test]
    fn forkjoin_simulation_matches_analytic_comm_evaluator(
        root_w in 1u64..=8,
        join_w in 1u64..=8,
        leaf_weights in prop::collection::vec(1u64..=8, 0..=5),
        sizes in prop::collection::vec(0u64..=6, 7),
        speeds in prop::collection::vec(1u64..=5, 1..=4),
        bw in 1u64..=4,
        capacity in 0u64..=4,
        picks in 0usize..1_000_000,
        join_pick in 0usize..64,
        one_port in 0usize..2,
        strict in 0usize..2,
    ) {
        let n = leaf_weights.len();
        let p = speeds.len();
        let fj = ForkJoin::with_data_sizes(
            root_w,
            leaf_weights,
            join_w,
            sizes[0],
            sizes[1],
            sizes[2..2 + n].to_vec(),
        );
        let plat = Platform::heterogeneous(speeds);
        // capacity 0 encodes "no node bound"
        let net = if capacity > 0 {
            Network::uniform(p, bw).with_node_capacity(capacity)
        } else {
            Network::uniform(p, bw)
        };
        let alloc = derive_forkjoin_alloc(n, p, picks, join_pick);
        let comm = if one_port == 0 { CommModel::OnePort } else { CommModel::BoundedMultiPort };
        let start = if strict == 0 { StartRule::Strict } else { StartRule::Flexible };

        let mapping = forkjoin_mapping_of(&fj, &alloc);
        let analytic =
            comm_cost::forkjoin_latency(&fj, &plat, &net, comm, start, &mapping).unwrap();

        let report = simulate_forkjoin_with_comm(
            &fj,
            &plat,
            &net,
            &alloc,
            comm,
            start,
            Feed::Interval(analytic + Rat::ONE),
            4,
        );
        prop_assert_eq!(report.max_latency(), analytic);
    }

    /// Zero data sizes make the simulated general model collapse onto the
    /// simplified analytic model, communication discipline regardless.
    #[test]
    fn zero_sizes_simulate_to_simplified_model(
        weights in prop::collection::vec(1u64..=9, 1..=6),
        speeds in prop::collection::vec(1u64..=5, 1..=4),
        bw in 1u64..=4,
        cut_bits in 0usize..1_000_000,
    ) {
        let n = weights.len();
        let p = speeds.len();
        let pipe = Pipeline::new(weights);
        let plat = Platform::heterogeneous(speeds);
        let net = Network::uniform(p, bw);
        let alloc = derive_alloc(n, p, cut_bits);
        let mapping = mapping_of(&alloc);
        let simplified_period = pipe.period(&plat, &mapping).unwrap();
        let report = simulate_pipeline_with_comm(&pipe, &plat, &net, &alloc, Feed::Saturated, 40);
        prop_assert_eq!(report.measured_period(8), simplified_period);
    }
}
