//! Loom-model checks for the graceful-drain state machine.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p repliflow-serve
//! --test modelcheck_drain` — without `--cfg loom` this file is empty.
//!
//! `server.rs` cannot be modelled directly (real sockets), so this
//! models its drain essence: a connection thread that checks the
//! draining flag, admits, answers through the writer channel, and
//! releases its ticket; a drain thread that raises the flag at an
//! arbitrary point. The contract under exploration is the one
//! `ServerHandle::shutdown` documents — **every request that is read
//! gets exactly one response** (a solve answer, a shed, or a drain
//! refusal; never silence), every admitted request completes, and the
//! writer drains its queue after the senders hang up, in every
//! bounded-preemption interleaving.
#![cfg(loom)]

use repliflow_serve::admission::{Admission, AdmissionConfig};
use repliflow_sync::loom;
use repliflow_sync::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use repliflow_sync::sync::{mpsc, Arc};
use repliflow_sync::thread;

/// What the modelled connection answered for one request.
#[derive(Debug, PartialEq, Eq)]
enum Answer {
    /// Admitted, solved, ticket released.
    Served,
    /// Refused because drain was observed first.
    Draining,
    /// Refused by admission control (queue full).
    Shed,
}

/// The per-request serving path distilled from `handle_line`: drain
/// check, then admission, then the answer goes to the writer channel.
/// Exactly one `Answer` is sent on every path — the invariant the
/// model exists to pin.
fn serve_request(
    draining: &AtomicBool,
    admission: &Arc<Admission>,
    conn: &Arc<AtomicUsize>,
    tx: &mpsc::Sender<Answer>,
) {
    if draining.load(Ordering::SeqCst) {
        let _ = tx.send(Answer::Draining);
        return;
    }
    match admission.try_admit(conn) {
        Ok(_ticket) => {
            // "Solve" is instantaneous here; the ticket is held across
            // the send so drain can race the release.
            let _ = tx.send(Answer::Served);
        }
        Err(_) => {
            let _ = tx.send(Answer::Shed);
        }
    }
}

#[test]
fn every_read_request_is_answered_across_drain() {
    let schedules = loom::Builder {
        max_preemptions: 2,
        max_schedules: 50_000,
    }
    .model(|| {
        let draining = Arc::new(AtomicBool::new(false));
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 4,
            per_conn_inflight: 4,
        });
        let (tx, rx) = mpsc::channel();

        // One connection, two pipelined requests, racing the drain.
        let conn_thread = {
            let draining = Arc::clone(&draining);
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let conn = Arc::new(AtomicUsize::new(0));
                serve_request(&draining, &admission, &conn, &tx);
                serve_request(&draining, &admission, &conn, &tx);
                // reader loop exits; dropping tx lets the writer drain.
            })
        };
        // The drain side: raise the flag at an arbitrary point.
        draining.store(true, Ordering::SeqCst);
        conn_thread.join().expect("connection thread joins");

        // The writer side: drain the queue after the sender hung up.
        let answers: Vec<Answer> = rx.iter().collect();
        assert_eq!(answers.len(), 2, "a read request went unanswered");
        // Depth 4 never sheds a 2-request connection.
        assert!(!answers.contains(&Answer::Shed));
        let stats = admission.stats();
        let served = answers.iter().filter(|a| **a == Answer::Served).count();
        assert_eq!(stats.accepted as usize, served);
        assert_eq!(stats.completed, stats.accepted, "an admit never completed");
        assert_eq!(stats.in_flight, 0, "drain left a ticket in flight");
    })
    .schedules;
    eprintln!("drain_all_answered: {schedules} schedules");
    assert!(schedules >= 4, "explored only {schedules} schedules");
}

#[test]
fn drain_observed_before_admit_is_refused_not_dropped() {
    let schedules = loom::Builder {
        max_preemptions: 2,
        max_schedules: 50_000,
    }
    .model(|| {
        let draining = Arc::new(AtomicBool::new(false));
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 1,
            per_conn_inflight: 1,
        });
        let (tx, rx) = mpsc::channel();
        let conn_thread = {
            let draining = Arc::clone(&draining);
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let conn = Arc::new(AtomicUsize::new(0));
                serve_request(&draining, &admission, &conn, &tx);
            })
        };
        draining.store(true, Ordering::SeqCst);
        conn_thread.join().expect("connection thread joins");
        let answer = rx.recv().expect("the request must be answered");
        // Both orders are legal, but the books must match the answer:
        // a drain refusal admits nothing; a served request releases.
        match answer {
            Answer::Draining => assert_eq!(admission.stats().accepted, 0),
            Answer::Served => {
                assert_eq!(admission.stats().accepted, 1);
                assert_eq!(admission.stats().completed, 1);
            }
            Answer::Shed => panic!("an idle depth-1 queue must not shed"),
        }
        assert_eq!(admission.stats().in_flight, 0);
    })
    .schedules;
    eprintln!("drain_refusal: {schedules} schedules");
    assert!(schedules >= 2, "explored only {schedules} schedules");
}

#[test]
fn writer_drains_queued_answers_after_reader_exit() {
    let schedules = loom::Builder {
        max_preemptions: 2,
        max_schedules: 50_000,
    }
    .model(|| {
        // The writer-side half of drain in isolation: a blocked
        // `recv()` must wake both for queued answers and for the
        // sender hang-up, with no lost-wakeup interleaving between a
        // late send and the disconnect.
        let (tx, rx) = mpsc::channel();
        let writer = thread::spawn(move || {
            let mut delivered = 0usize;
            while rx.recv().is_ok() {
                delivered += 1;
            }
            delivered
        });
        tx.send(Answer::Served).expect("writer is alive");
        tx.send(Answer::Draining).expect("writer is alive");
        drop(tx);
        let delivered = writer.join().expect("writer joins");
        assert_eq!(delivered, 2, "the writer dropped a queued answer");
    })
    .schedules;
    eprintln!("drain_writer: {schedules} schedules");
    assert!(schedules >= 2, "explored only {schedules} schedules");
}
