//! End-to-end daemon tests: a real [`Server`] on an ephemeral port,
//! real TCP clients, and the protocol guarantees the crate advertises —
//! byte-identical remote solves, structured errors for every kind of
//! bad input, deterministic load-shedding at saturation, and a graceful
//! drain that answers every admitted request.

use repliflow_serve::server::{Server, ServerConfig, ServerHandle};
use repliflow_serve::{AdmissionConfig, ErrorCode, RemoteClient, RemoteError, RemoteSolveOptions};
use repliflow_solver::{Budget, EnginePref, SolveRequest, SolverService};
use repliflow_sync::thread::JoinHandle;
use serde::Value;
use serde_json::parse_value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn instances_dir() -> PathBuf {
    // crates/serve -> workspace root -> examples/instances
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/instances")
        .canonicalize()
        .expect("examples/instances exists")
}

fn golden_instances() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(instances_dir())
        .expect("instances directory is readable")
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 8, "golden instance set shrank unexpectedly");
    paths
}

fn load_instance(path: &Path) -> repliflow_core::instance::ProblemInstance {
    let json = std::fs::read_to_string(path).expect("instance file is readable");
    serde_json::from_str(&json).expect("golden instance parses")
}

/// A communication-aware fork whose forced `comm-bb` search reliably
/// outlives a few-hundred-ms time limit (10 leaves branch over set
/// partitions — seconds of search space), so a daemon given a small
/// `bb_time_limit_ms` holds a worker for predictably ~that long.
fn slow_instance_json() -> String {
    r#"{"workflow":{"Fork":{"root_weight":5,
        "leaf_weights":[7,3,9,4,6,8,2,5,7,4],
        "input_size":3,"broadcast_size":5,
        "output_sizes":[2,1,3,1,2,3,1,2,2,1]}},
      "platform":{"speeds":[3,2,2,1,1,1]},
      "allow_data_parallel":false,
      "objective":"Latency",
      "cost_model":{"WithComm":{"network":{
        "proc_bw":[[1,1,1,1,1,1],[1,1,1,1,1,1],[1,1,1,1,1,1],
                   [1,1,1,1,1,1],[1,1,1,1,1,1],[1,1,1,1,1,1]],
        "input_bw":[2,2,2,2,2,2],"output_bw":[2,2,2,2,2,2],
        "node_capacity":null,"infinite":false},
        "comm":"OnePort","overlap":false}}}"#
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// A budget whose `comm-bb` runs are cut at `ms` wall-clock.
fn slow_budget(ms: u64) -> Budget {
    Budget {
        bb_time_limit_ms: ms,
        bb_node_limit: u64::MAX,
        ..Budget::default()
    }
}

/// Binds a server with `config`, runs it on a background thread, and
/// returns everything a test needs to talk to and stop it.
fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("server binds an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    let join = repliflow_sync::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// Sends raw request lines over one socket and reads `expect` response
/// lines (completion order), returning them parsed.
fn raw_exchange(addr: SocketAddr, lines: &[String], expect: usize) -> Vec<Value> {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for line in lines {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.flush().unwrap();
    let mut responses = Vec::new();
    for _ in 0..expect {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("response read") > 0,
            "daemon hung up before answering everything"
        );
        responses.push(parse_value(line.trim_end()).expect("response parses"));
    }
    responses
}

fn err_code(response: &Value) -> Option<&str> {
    response.field("err")?.field("code")?.as_str()
}

fn id_int(response: &Value) -> i128 {
    match response.field("id") {
        Some(Value::Int(id)) => *id,
        other => panic!("response id is not an integer: {other:?}"),
    }
}

#[test]
fn golden_roundtrips_are_byte_identical_to_in_process_solves() {
    let (addr, handle, join) = start(ServerConfig::default());
    let service = SolverService::builder().build();
    let mut client = RemoteClient::connect(addr).expect("client connects");
    for path in golden_instances() {
        let instance = load_instance(&path);
        let local = service
            .solve(&SolveRequest::new(instance.clone()))
            .unwrap_or_else(|e| panic!("local solve of {path:?} failed: {e}"));
        let remote = client
            .solve(&instance, &RemoteSolveOptions::default())
            .unwrap_or_else(|e| panic!("remote solve of {path:?} failed: {e}"));
        assert_eq!(
            remote.canonical_json(),
            local.canonical_json(),
            "remote report for {path:?} diverges from the in-process solve"
        );
        assert!(!remote.cell.is_empty());
        assert!(remote.wall_time_ms >= 0.0);
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn pareto_roundtrips_are_byte_identical_to_in_process_fronts() {
    use repliflow_multicrit::{FrontRequest, FrontSolver};
    use repliflow_serve::RemoteParetoOptions;
    let (addr, handle, join) = start(ServerConfig::default());
    let front = FrontSolver::new(repliflow_sync::sync::Arc::new(
        SolverService::builder().build(),
    ));
    let mut client = RemoteClient::connect(addr).expect("client connects");
    // A small point cap keeps the sweep over the large golden
    // instances fast; the cut is deterministic, so byte-identity is
    // exercised exactly as hard as with the full front.
    let points = 6;
    let budget = Budget::default().max_front_points(points);
    let options = RemoteParetoOptions {
        points: Some(points),
        ..RemoteParetoOptions::default()
    };
    for path in golden_instances() {
        let instance = load_instance(&path);
        let local = front
            .solve_front(&FrontRequest::new(instance.clone()).budget(budget))
            .unwrap_or_else(|e| panic!("local front of {path:?} failed: {e}"));
        let remote = client
            .pareto(&instance, &options)
            .unwrap_or_else(|e| panic!("remote front of {path:?} failed: {e}"));
        assert_eq!(
            remote.canonical_json(),
            local.canonical_json(),
            "remote front for {path:?} diverges from the in-process front"
        );
        assert_eq!(remote.n_points, local.points.len());
        assert!(remote.wall_time_ms >= 0.0);
    }
    // A repeated front is served from the daemon's front cache,
    // byte-identically.
    let instance = load_instance(&golden_instances()[0]);
    let local = front
        .solve_front(&FrontRequest::new(instance.clone()).budget(budget))
        .expect("local front");
    let again = client
        .pareto(&instance, &options)
        .expect("cached remote front");
    assert!(again.is_cached(), "second identical pareto should hit");
    assert_eq!(again.canonical_json(), local.canonical_json());

    // The points override changes the request (no false cache hit) and
    // bounds the front length.
    let capped = client
        .pareto(
            &instance,
            &RemoteParetoOptions {
                points: Some(1),
                ..RemoteParetoOptions::default()
            },
        )
        .expect("capped remote front");
    assert!(capped.n_points <= 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_each_get_consistent_reports() {
    let (addr, handle, join) = start(ServerConfig::default());
    // Reference canonical answers, solved once in-process.
    let paths: Vec<PathBuf> = golden_instances().into_iter().take(4).collect();
    let service = SolverService::builder().build();
    let expected: Vec<String> = paths
        .iter()
        .map(|p| {
            service
                .solve(&SolveRequest::new(load_instance(p)))
                .expect("local solve")
                .canonical_json()
        })
        .collect();
    let threads: Vec<_> = (0..6)
        .map(|worker| {
            let paths = paths.clone();
            let expected = expected.clone();
            repliflow_sync::thread::spawn(move || {
                let mut client = RemoteClient::connect(addr).expect("client connects");
                // stagger which instance each worker starts with
                for i in 0..paths.len() * 2 {
                    let k = (worker + i) % paths.len();
                    let remote = client
                        .solve(&load_instance(&paths[k]), &RemoteSolveOptions::default())
                        .expect("remote solve");
                    assert_eq!(remote.canonical_json(), expected[k]);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn saturation_sheds_deterministically_with_overloaded() {
    let (addr, handle, join) = start(ServerConfig {
        workers: Some(1),
        cache_capacity: 0,
        admission: AdmissionConfig {
            queue_depth: 2,
            per_conn_inflight: 16,
        },
        default_budget: slow_budget(400),
        ..ServerConfig::default()
    });
    let instance = slow_instance_json();
    let lines: Vec<String> = (1..=6)
        .map(|id| {
            format!(
                r#"{{"v":1,"id":{id},"verb":"solve","engine":"comm-bb","instance":{instance}}}"#
            )
        })
        .collect();
    let responses = raw_exchange(addr, &lines, 6);
    // Requests 1 and 2 fill the queue (one running, one waiting);
    // 3..6 arrive microseconds later, while both are still unfinished
    // (each runs ~400ms), and must be shed.
    let mut ok = Vec::new();
    let mut shed = Vec::new();
    for response in &responses {
        match err_code(response) {
            None => ok.push(id_int(response)),
            Some("overloaded") => shed.push(id_int(response)),
            Some(other) => panic!("unexpected error code {other}"),
        }
    }
    ok.sort_unstable();
    shed.sort_unstable();
    assert_eq!(
        ok,
        vec![1, 2],
        "exactly the first two requests are admitted"
    );
    assert_eq!(shed, vec![3, 4, 5, 6], "the rest are shed immediately");

    // The shed requests are visible in the metrics.
    let mut client = RemoteClient::connect(addr).expect("stats client connects");
    let stats = client.stats().expect("stats verb");
    let admission = stats.field("admission").unwrap();
    assert_eq!(admission.field("accepted").unwrap().as_int(), Some(2));
    assert_eq!(admission.field("rejected").unwrap().as_int(), Some(4));
    assert_eq!(admission.field("high_water").unwrap().as_int(), Some(2));
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn per_connection_inflight_cap_binds_before_the_global_queue() {
    let (addr, handle, join) = start(ServerConfig {
        workers: Some(1),
        cache_capacity: 0,
        admission: AdmissionConfig {
            queue_depth: 64,
            per_conn_inflight: 1,
        },
        default_budget: slow_budget(300),
        ..ServerConfig::default()
    });
    let instance = slow_instance_json();
    let lines: Vec<String> = (1..=3)
        .map(|id| {
            format!(
                r#"{{"v":1,"id":{id},"verb":"solve","engine":"comm-bb","instance":{instance}}}"#
            )
        })
        .collect();
    let responses = raw_exchange(addr, &lines, 3);
    let shed: Vec<i128> = responses
        .iter()
        .filter(|r| err_code(r) == Some("overloaded"))
        .map(id_int)
        .collect();
    assert_eq!(shed, vec![2, 3], "one in flight per connection, rest shed");
    let busy = responses
        .iter()
        .find(|r| err_code(r) == Some("overloaded"))
        .and_then(|r| r.field("err").unwrap().field("message").unwrap().as_str())
        .unwrap();
    assert!(
        busy.contains("connection in-flight cap"),
        "reject message names the per-connection cap: {busy}"
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn graceful_drain_under_load_answers_every_admitted_request() {
    let (addr, _handle, join) = start(ServerConfig {
        workers: Some(2),
        cache_capacity: 0,
        admission: AdmissionConfig::default(),
        default_budget: slow_budget(300),
        ..ServerConfig::default()
    });
    let instance = slow_instance_json();
    let mut stream = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for id in 1..=6 {
        let line = format!(
            r#"{{"v":1,"id":{id},"verb":"solve","engine":"comm-bb","instance":{instance}}}"#
        );
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.flush().unwrap();
    // Let the daemon parse and admit all six (parsing is microseconds;
    // each solve runs ~300ms), then ask for a drain mid-flight.
    repliflow_sync::thread::sleep(Duration::from_millis(150));
    let mut admin = RemoteClient::connect(addr).expect("admin connects");
    admin.shutdown().expect("shutdown verb acknowledged");

    // Every admitted request is still answered, then the daemon hangs
    // up — nothing is lost.
    let mut answered = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read") == 0 {
            break; // clean EOF after the responses
        }
        let response = parse_value(line.trim_end()).expect("response parses");
        assert_eq!(err_code(&response), None, "admitted solve failed: {line}");
        answered.push(id_int(&response));
    }
    answered.sort_unstable();
    assert_eq!(answered, vec![1, 2, 3, 4, 5, 6]);

    // The server thread exits cleanly and the port stops accepting.
    join.join().unwrap().unwrap();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener is closed after drain"
    );
}

#[test]
fn broken_input_gets_structured_errors_and_the_connection_survives() {
    let (addr, handle, join) = start(ServerConfig {
        max_line_bytes: 1024,
        ..ServerConfig::default()
    });
    let lines = vec![
        "this is not json".to_string(),
        r#"{"v":1,"id":"trunc","verb":"solve","instance":{"#.to_string(),
        r#"{"v":7,"id":"vers","verb":"ping"}"#.to_string(),
        r#"{"v":1,"id":"field","verb":"ping","bogus":1}"#.to_string(),
        r#"{"v":1,"id":"verb","verb":"dance"}"#.to_string(),
        format!(
            r#"{{"v":1,"id":"big","verb":"ping","pad":"{}"}}"#,
            "x".repeat(4000)
        ),
        r#"{"v":1,"id":"alive","verb":"ping"}"#.to_string(),
    ];
    let responses = raw_exchange(addr, &lines, 7);
    let code = |i: usize| err_code(&responses[i]);
    let id = |i: usize| responses[i].field("id").unwrap().clone();
    assert_eq!(code(0), Some("bad_request"));
    assert_eq!(id(0), Value::Null, "no id extractable from non-JSON");
    assert_eq!(code(1), Some("bad_request"), "truncated JSON");
    assert_eq!(code(2), Some("unsupported_version"));
    assert_eq!(
        id(2),
        Value::String("vers".into()),
        "id echoed despite bad version"
    );
    assert_eq!(code(3), Some("bad_request"), "unknown field");
    assert_eq!(code(4), Some("bad_request"), "unknown verb");
    assert_eq!(code(5), Some("line_too_long"), "over the 1 KiB cap");
    assert_eq!(id(5), Value::Null, "oversized lines are skipped unparsed");
    // ...and after all that abuse, the same connection still serves.
    assert_eq!(code(6), None);
    assert_eq!(
        responses[6].field("ok").unwrap().field("pong"),
        Some(&Value::Bool(true))
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn stats_snapshot_reports_counters_cache_and_percentiles() {
    let (addr, handle, join) = start(ServerConfig::default());
    let mut client = RemoteClient::connect(addr).expect("client connects");
    let instance = load_instance(&instances_dir().join("hom_pipeline_period.json"));
    for _ in 0..5 {
        client
            .solve(&instance, &RemoteSolveOptions::default())
            .expect("solve");
    }
    let stats = client.stats().expect("stats verb");

    let admission = stats.field("admission").unwrap();
    assert_eq!(admission.field("accepted").unwrap().as_int(), Some(5));
    assert_eq!(admission.field("completed").unwrap().as_int(), Some(5));
    assert_eq!(admission.field("rejected").unwrap().as_int(), Some(0));

    let service = stats.field("service").unwrap();
    assert_eq!(service.field("requests").unwrap().as_int(), Some(5));
    assert_eq!(service.field("computed").unwrap().as_int(), Some(1));
    assert_eq!(service.field("cache_hits").unwrap().as_int(), Some(4));

    let cache = stats.field("cache").unwrap();
    assert_eq!(cache.field("hits").unwrap().as_int(), Some(4));
    assert_eq!(cache.field("insertions").unwrap().as_int(), Some(1));

    let latency = stats.field("latency").unwrap();
    assert_eq!(latency.field("count").unwrap().as_int(), Some(5));
    let p50 = latency
        .field("p50_us")
        .unwrap()
        .as_int()
        .expect("p50 present");
    let p95 = latency
        .field("p95_us")
        .unwrap()
        .as_int()
        .expect("p95 present");
    let p99 = latency
        .field("p99_us")
        .unwrap()
        .as_int()
        .expect("p99 present");
    let max = latency
        .field("max_us")
        .unwrap()
        .as_int()
        .expect("max present");
    assert!(
        p50 <= p95 && p95 <= p99 && p99 <= max,
        "{p50} {p95} {p99} {max}"
    );
    // One real compute dominates four cache hits: the distribution
    // cannot be flat-zero at the top.
    assert!(max > 0, "the computed solve took measurable time");

    let server = stats.field("server").unwrap();
    assert_eq!(server.field("draining").unwrap(), &Value::Bool(false));
    assert!(server.field("connections_total").unwrap().as_int() >= Some(1));

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn expired_deadlines_map_to_a_deadline_exceeded_envelope() {
    let (addr, handle, join) = start(ServerConfig::default());
    let mut client = RemoteClient::connect(addr).expect("client connects");
    let instance = load_instance(&instances_dir().join("hom_pipeline_period.json"));
    let error = client
        .solve(
            &instance,
            &RemoteSolveOptions {
                deadline_ms: Some(0),
                ..RemoteSolveOptions::default()
            },
        )
        .expect_err("an already-expired deadline cannot succeed");
    match error {
        RemoteError::Server { code, .. } => {
            assert_eq!(code, Some(ErrorCode::DeadlineExceeded));
        }
        other => panic!("expected a server error envelope, got {other}"),
    }
    // The connection is still usable afterwards.
    client
        .solve(&instance, &RemoteSolveOptions::default())
        .expect("solve after the failed one");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn forced_engine_preference_is_honored_remotely() {
    let (addr, handle, join) = start(ServerConfig::default());
    let mut client = RemoteClient::connect(addr).expect("client connects");
    let instance = load_instance(&instances_dir().join("hom_pipeline_period.json"));
    let remote = client
        .solve(
            &instance,
            &RemoteSolveOptions {
                engine: EnginePref::Exact,
                ..RemoteSolveOptions::default()
            },
        )
        .expect("exact solve");
    assert_eq!(remote.canonical_str("engine"), Some("exact"));
    assert_eq!(remote.canonical_str("optimality"), Some("proven"));
    handle.shutdown();
    join.join().unwrap().unwrap();
}
