//! Loom-model checks for [`Admission`] ticket accounting.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p repliflow-serve
//! --test modelcheck_admission` — without `--cfg loom` this file is
//! empty.
//!
//! Properties explored over every bounded-preemption interleaving:
//! the global cap is never exceeded (high-water ≤ queue_depth), every
//! admit is eventually matched by exactly one completion (tickets
//! release on drop — including a drop driven by a panic unwinding),
//! and the per-connection cap binds independently of the global one.
#![cfg(loom)]

use repliflow_serve::admission::{Admission, AdmissionConfig};
use repliflow_sync::loom;
use repliflow_sync::sync::atomic::{AtomicUsize, Ordering};
use repliflow_sync::sync::Arc;
use repliflow_sync::thread;

fn conn() -> Arc<AtomicUsize> {
    Arc::new(AtomicUsize::new(0))
}

#[test]
fn global_cap_never_exceeded_under_concurrent_admits() {
    let schedules = loom::Builder {
        max_preemptions: 2,
        max_schedules: 50_000,
    }
    .model(|| {
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 1,
            per_conn_inflight: 8,
        });
        // Both sides HOLD their ticket until after the join, so a
        // double-admit would be directly observable as in_flight == 2.
        let racer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let c = conn();
                admission.try_admit(&c).ok()
            })
        };
        let c = conn();
        let mine = admission.try_admit(&c).ok();
        let theirs = racer.join().expect("racer joins");
        let stats = admission.stats();
        // Neither holder released yet: with depth 1, exactly one of
        // the two racing admits can have won, in every interleaving.
        assert_eq!(stats.high_water, 1, "queue_depth=1 was exceeded");
        assert_eq!((stats.accepted, stats.rejected), (1, 1));
        assert_eq!(stats.in_flight, 1);
        assert!(mine.is_some() != theirs.is_some(), "exactly one winner");
        drop((mine, theirs));
        let stats = admission.stats();
        assert_eq!(stats.completed, 1, "the winner's ticket must release");
        assert_eq!(stats.in_flight, 0);
    })
    .schedules;
    eprintln!("admission_global_cap: {schedules} schedules");
    assert!(schedules >= 4, "explored only {schedules} schedules");
}

#[test]
fn panicking_holder_never_leaks_its_slot() {
    // The seeded handler panic below fires once per explored schedule;
    // silence the global hook for the duration so the test log stays
    // readable (failures still surface through loom's ModelFailure).
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let schedules = loom::Builder {
        max_preemptions: 2,
        max_schedules: 50_000,
    }
    .model(|| {
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 2,
            per_conn_inflight: 2,
        });
        let worker = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let c = conn();
                // A request handler that panics mid-flight: the RAII
                // ticket must still release during the unwind.
                let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ticket = admission.try_admit(&c).expect("depth 2 admits");
                    panic!("handler panicked while holding a ticket");
                }));
                assert!(unwound.is_err());
                assert_eq!(c.load(Ordering::SeqCst), 0, "conn slot leaked");
            })
        };
        let c = conn();
        let ticket = admission.try_admit(&c).expect("depth 2 admits");
        drop(ticket);
        worker.join().expect("worker joins");
        let stats = admission.stats();
        assert_eq!(stats.in_flight, 0, "a panicked holder leaked its slot");
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
    })
    .schedules;
    std::panic::set_hook(prev);
    eprintln!("admission_panic_release: {schedules} schedules");
    assert!(schedules >= 4, "explored only {schedules} schedules");
}

#[test]
fn per_connection_cap_binds_under_races_too() {
    let schedules = loom::Builder {
        max_preemptions: 2,
        max_schedules: 50_000,
    }
    .model(|| {
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 8,
            per_conn_inflight: 1,
        });
        // One pipelining connection races two admits; a second
        // connection must be unaffected by the first one's cap.
        let shared_conn = conn();
        let racer = {
            let admission = Arc::clone(&admission);
            let shared_conn = Arc::clone(&shared_conn);
            thread::spawn(move || admission.try_admit(&shared_conn).ok())
        };
        let mine = admission.try_admit(&shared_conn).ok();
        let theirs = racer.join().expect("racer joins");
        let other = conn();
        let unaffected = admission.try_admit(&other);
        assert!(unaffected.is_ok(), "other connections must admit freely");
        // The shared connection never exceeds its cap of 1 live ticket.
        assert!(shared_conn.load(Ordering::SeqCst) <= 1, "conn cap exceeded");
        drop((mine, theirs, unaffected));
        assert_eq!(shared_conn.load(Ordering::SeqCst), 0);
        assert_eq!(admission.stats().in_flight, 0);
    })
    .schedules;
    eprintln!("admission_conn_cap: {schedules} schedules");
    assert!(schedules >= 4, "explored only {schedules} schedules");
}
