//! The `stats` verb's payload: one JSON snapshot of everything the
//! daemon can observe about itself — server lifecycle, admission
//! counters, solver service statistics (cache hit rate, per-engine
//! wall time, worker utilization) and the end-to-end latency
//! histogram's percentiles.
//!
//! Layout (all durations in milliseconds unless suffixed `_us`):
//!
//! ```json
//! {"server":{"uptime_ms":...,"draining":false,
//!            "connections_open":1,"connections_total":3},
//!  "admission":{"in_flight":2,"high_water":4,"queue_depth":64,
//!               "per_conn_inflight":16,"accepted":10,"rejected":1,
//!               "completed":8},
//!  "service":{"requests":9,"cache_hits":3,"computed":5,"errors":1,
//!             "cache_hit_rate":0.333,"workers":8,
//!             "queue_wait_ms":...,"jobs_executed":5,
//!             "busy_ms":...,"worker_utilization":0.41,
//!             "per_engine":[{"engine":"paper","wall_ms":...,"solves":4}]},
//!  "cache":{"hits":3,"misses":6,"insertions":5,"evictions":0,
//!           "shards":8},
//!  "hedge":{"races":2,"primary_wins":1,"secondary_wins":1,
//!           "losers_cancelled":2,"window_rescues":0},
//!  "escalation":{"scheduled":1,"refreshed":1,"unimproved":0,
//!                "shed":0,"failed":0},
//!  "latency":{"count":9,"mean_us":...,"min_us":...,"max_us":...,
//!             "p50_us":...,"p95_us":...,"p99_us":...}}
//! ```
//!
//! `cache` is `null` when the daemon runs cacheless; latency
//! percentiles are `null` until the first request is served. The
//! `hedge` counters stay zero until the first `engine: "hedged"`
//! request; `escalation` counters stay zero unless the daemon runs
//! with `--escalate`.

use crate::server::ServerShared;
use repliflow_solver::{HistogramSnapshot, SolverService};
use repliflow_sync::sync::atomic::Ordering;
use serde::Value;
use std::time::Duration;

/// Milliseconds as a JSON float (µs precision is plenty for wall time).
fn ms(d: Duration) -> Value {
    Value::Float((d.as_micros() as f64) / 1e3)
}

/// Whole microseconds as a JSON integer, `null` when absent — integer
/// so tests and dashboards compare percentiles without float fuzz.
fn us(d: Option<Duration>) -> Value {
    match d {
        Some(d) => Value::Int(d.as_micros() as i128),
        None => Value::Null,
    }
}

/// The latency histogram section.
fn latency_section(snapshot: &HistogramSnapshot) -> Value {
    Value::Object(vec![
        ("count".into(), Value::Int(snapshot.count as i128)),
        ("mean_us".into(), us(snapshot.mean)),
        ("min_us".into(), us(snapshot.min)),
        ("max_us".into(), us(snapshot.max)),
        ("p50_us".into(), us(snapshot.p50)),
        ("p95_us".into(), us(snapshot.p95)),
        ("p99_us".into(), us(snapshot.p99)),
    ])
}

/// Builds the full metrics snapshot served by the `stats` verb.
pub(crate) fn snapshot(service: &SolverService, shared: &ServerShared) -> Value {
    let admission = shared.admission.stats();
    let config = shared.admission.config();
    let stats = service.stats();
    let per_engine = stats
        .per_engine
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("engine".into(), Value::String(e.engine.into())),
                ("wall_ms".into(), ms(e.wall)),
                ("solves".into(), Value::Int(e.solves as i128)),
            ])
        })
        .collect();
    let cache = match service.cache_stats() {
        None => Value::Null,
        Some(c) => Value::Object(vec![
            ("hits".into(), Value::Int(c.hits as i128)),
            ("misses".into(), Value::Int(c.misses as i128)),
            ("insertions".into(), Value::Int(c.insertions as i128)),
            ("evictions".into(), Value::Int(c.evictions as i128)),
            (
                "shards".into(),
                Value::Int(service.cache_shards().unwrap_or(0) as i128),
            ),
        ]),
    };
    let hedge = Value::Object(vec![
        ("races".into(), Value::Int(stats.hedge.races as i128)),
        (
            "primary_wins".into(),
            Value::Int(stats.hedge.primary_wins as i128),
        ),
        (
            "secondary_wins".into(),
            Value::Int(stats.hedge.secondary_wins as i128),
        ),
        (
            "losers_cancelled".into(),
            Value::Int(stats.hedge.losers_cancelled as i128),
        ),
        (
            "window_rescues".into(),
            Value::Int(stats.hedge.window_rescues as i128),
        ),
    ]);
    let escalation = Value::Object(vec![
        (
            "scheduled".into(),
            Value::Int(stats.escalation.scheduled as i128),
        ),
        (
            "refreshed".into(),
            Value::Int(stats.escalation.refreshed as i128),
        ),
        (
            "unimproved".into(),
            Value::Int(stats.escalation.unimproved as i128),
        ),
        ("shed".into(), Value::Int(stats.escalation.shed as i128)),
        ("failed".into(), Value::Int(stats.escalation.failed as i128)),
    ]);
    Value::Object(vec![
        (
            "server".into(),
            Value::Object(vec![
                ("uptime_ms".into(), ms(shared.started.elapsed())),
                ("draining".into(), Value::Bool(shared.draining())),
                (
                    "connections_open".into(),
                    // relaxed: point-in-time gauge for a stats page —
                    // a stale-by-one read is indistinguishable from
                    // reading a moment earlier.
                    Value::Int(shared.connections_open.load(Ordering::Relaxed) as i128),
                ),
                (
                    "connections_total".into(),
                    // relaxed: monotone counter, same reasoning.
                    Value::Int(shared.connections_total.load(Ordering::Relaxed) as i128),
                ),
            ]),
        ),
        (
            "admission".into(),
            Value::Object(vec![
                ("in_flight".into(), Value::Int(admission.in_flight as i128)),
                (
                    "high_water".into(),
                    Value::Int(admission.high_water as i128),
                ),
                ("queue_depth".into(), Value::Int(config.queue_depth as i128)),
                (
                    "per_conn_inflight".into(),
                    Value::Int(config.per_conn_inflight as i128),
                ),
                ("accepted".into(), Value::Int(admission.accepted as i128)),
                ("rejected".into(), Value::Int(admission.rejected as i128)),
                ("completed".into(), Value::Int(admission.completed as i128)),
            ]),
        ),
        (
            "service".into(),
            Value::Object(vec![
                ("requests".into(), Value::Int(stats.requests as i128)),
                ("cache_hits".into(), Value::Int(stats.cache_hits as i128)),
                ("computed".into(), Value::Int(stats.computed as i128)),
                ("errors".into(), Value::Int(stats.errors as i128)),
                ("cache_hit_rate".into(), Value::Float(stats.hit_rate())),
                ("workers".into(), Value::Int(service.pool_size() as i128)),
                ("queue_wait_ms".into(), ms(stats.queue_wait)),
                (
                    "jobs_executed".into(),
                    Value::Int(stats.jobs_executed as i128),
                ),
                ("busy_ms".into(), ms(stats.busy)),
                (
                    "worker_utilization".into(),
                    Value::Float(stats.worker_utilization),
                ),
                ("per_engine".into(), Value::Array(per_engine)),
            ]),
        ),
        ("cache".into(), cache),
        ("hedge".into(), hedge),
        ("escalation".into(), escalation),
        ("latency".into(), latency_section(&stats.latency)),
    ])
}
