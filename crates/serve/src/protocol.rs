//! The wire protocol: one line of JSON per request, one line of JSON
//! per response, over a plain TCP stream.
//!
//! ## Grammar
//!
//! Every request is a single JSON object terminated by `\n`:
//!
//! ```json
//! {"v":1,"id":"r-1","verb":"solve","instance":{...},"engine":"auto",
//!  "quality":"balanced","validate":true,"deadline_ms":250}
//! {"v":1,"id":2,"verb":"stats"}
//! {"v":1,"id":3,"verb":"ping"}
//! {"v":1,"id":4,"verb":"shutdown"}
//! {"v":1,"id":5,"verb":"pareto","instance":{...},"engine":"auto",
//!  "quality":"balanced","validate":true,"points":16}
//! ```
//!
//! * `v` — protocol version, required, must equal
//!   [`PROTOCOL_VERSION`]; anything else is answered with an
//!   `unsupported_version` error envelope.
//! * `id` — required request id (string or integer), echoed verbatim
//!   on the response so clients may pipeline requests and match
//!   responses arriving in completion order.
//! * `verb` — `solve`, `pareto`, `stats`, `ping` or `shutdown`.
//! * `solve` only: `instance` (required; the same JSON accepted by the
//!   `solve` CLI and golden instance files), plus optional `engine`
//!   (`auto`/`exact`/`heuristic`/`paper`/`comm-bb`), `quality`
//!   (`fast`/`balanced`/`thorough`), `validate` (bool, default true)
//!   and `deadline_ms` (integer; the deadline clock starts when the
//!   daemon parses the request, so it covers queueing).
//! * `pareto` only: `instance` (required, same JSON; its `objective`
//!   field is ignored — a front is always traced over period and
//!   latency), plus optional `engine` (`auto`/`exact`/`sweep` — the
//!   *front* engine vocabulary, not the solve one), `quality`,
//!   `validate`, and `points` (positive integer overriding the
//!   daemon budget's `max_front_points`).
//!
//! Unknown top-level fields are rejected (`bad_request`) instead of
//! ignored: a client typo like `"dedline_ms"` must not silently solve
//! without its deadline.
//!
//! Responses are one JSON object per line, always carrying `v` and the
//! echoed `id` (or `null` when the request line was too broken to
//! extract one):
//!
//! ```json
//! {"v":1,"id":"r-1","ok":{...}}
//! {"v":1,"id":"r-1","err":{"code":"overloaded","message":"..."}}
//! ```
//!
//! `ok` payloads: a [report object](report_to_wire) for `solve`, a
//! [front object](front_to_wire) for `pareto`, a metrics snapshot for
//! `stats`, `{"pong":true}` for `ping`, `{"draining":true}` for
//! `shutdown`. Error codes are enumerated by [`ErrorCode`].

use repliflow_multicrit::{FrontEnginePref, FrontReport};
use repliflow_solver::{EnginePref, Quality, SolveError, SolveReport};
use serde::{Deserialize, Value};
use serde_json::parse_value;

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: i128 = 1;

/// Default cap on one request line, in bytes (1 MiB). Lines longer
/// than the cap are consumed and answered with a `line_too_long`
/// error envelope — the connection survives.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Machine-readable error category of an error envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a valid request object (malformed JSON,
    /// missing/mistyped/unknown fields, bad instance).
    BadRequest,
    /// `v` was missing or not [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The request line exceeded the daemon's line-length cap.
    LineTooLong,
    /// Admission control shed the request (queue full or the
    /// connection's in-flight cap reached). Retry later, or elsewhere.
    Overloaded,
    /// The daemon is draining and no longer admits solve requests.
    ShuttingDown,
    /// The request's deadline expired before an engine started.
    DeadlineExceeded,
    /// The request was cancelled before an engine started.
    Cancelled,
    /// The solver rejected or failed the request (unsupported cell,
    /// capacity, network mismatch, invalid witness, unattainable
    /// bound...). The message carries the solver's description.
    SolveFailed,
    /// An engine bug (contained panic). The daemon survives.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::SolveFailed => "solve_failed",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling (clients matching on responses).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "line_too_long" => ErrorCode::LineTooLong,
            "overloaded" => ErrorCode::Overloaded,
            "shutting_down" => ErrorCode::ShuttingDown,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "cancelled" => ErrorCode::Cancelled,
            "solve_failed" => ErrorCode::SolveFailed,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The envelope for a [`SolveError`] (code + human-readable
    /// message).
    pub fn of_solve_error(error: &SolveError) -> (ErrorCode, String) {
        let code = match error {
            SolveError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            SolveError::Cancelled => ErrorCode::Cancelled,
            SolveError::EnginePanicked => ErrorCode::Internal,
            _ => ErrorCode::SolveFailed,
        };
        (code, error.to_string())
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The solve-specific body of a request.
#[derive(Clone, Debug)]
pub struct SolveBody {
    /// The instance, exactly as the `solve` CLI accepts it.
    pub instance: repliflow_core::instance::ProblemInstance,
    /// Engine routing preference (default `auto`).
    pub engine: EnginePref,
    /// Heuristic effort tier (default `balanced`), applied on top of
    /// the daemon's default budget.
    pub quality: Quality,
    /// Witness re-validation (default true).
    pub validate: bool,
    /// Optional wall-clock deadline in milliseconds, measured from
    /// request parse time (covers queueing).
    pub deadline_ms: Option<u64>,
}

/// The pareto-specific body of a request.
#[derive(Clone, Debug)]
pub struct ParetoBody {
    /// The instance whose (period, latency) front to trace; its
    /// `objective` field is ignored (see
    /// [`repliflow_multicrit::FrontRequest`]).
    pub instance: repliflow_core::instance::ProblemInstance,
    /// Front engine routing preference (default `auto`).
    pub engine: FrontEnginePref,
    /// Heuristic effort tier applied to every inner solve (default
    /// `balanced`).
    pub quality: Quality,
    /// Per-point witness re-validation (default true).
    pub validate: bool,
    /// Optional override of the daemon budget's `max_front_points`.
    pub points: Option<usize>,
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct WireRequest {
    /// The client-chosen request id (string or integer), echoed on the
    /// response.
    pub id: Value,
    /// What to do.
    pub verb: Verb,
}

/// The request verb.
#[derive(Clone, Debug)]
pub enum Verb {
    /// Solve one instance.
    Solve(Box<SolveBody>),
    /// Trace one instance's (period, latency) Pareto front.
    Pareto(Box<ParetoBody>),
    /// Return the metrics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain: stop accepting, answer everything
    /// admitted, exit.
    Shutdown,
}

/// A request parse failure: the best-effort extracted id (for the
/// error envelope), the error category and a message.
#[derive(Clone, Debug)]
pub struct ParseFailure {
    /// Echoable id when one could be extracted, else `Value::Null`.
    pub id: Value,
    /// Error category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl ParseFailure {
    fn new(id: Value, code: ErrorCode, message: impl Into<String>) -> ParseFailure {
        ParseFailure {
            id,
            code,
            message: message.into(),
        }
    }
}

/// Whether a value is usable as a request id (string or integer).
fn valid_id(v: &Value) -> bool {
    matches!(v, Value::String(_) | Value::Int(_))
}

/// Parses one request line. On failure the returned [`ParseFailure`]
/// still carries the request id whenever the line was well-formed
/// enough to contain one, so the error envelope stays matchable.
pub fn parse_request(line: &str) -> Result<WireRequest, ParseFailure> {
    let root = parse_value(line).map_err(|e| {
        ParseFailure::new(
            Value::Null,
            ErrorCode::BadRequest,
            format!("malformed JSON: {e}"),
        )
    })?;
    let Value::Object(fields) = &root else {
        return Err(ParseFailure::new(
            Value::Null,
            ErrorCode::BadRequest,
            "request must be a JSON object",
        ));
    };
    // Best-effort id for error envelopes from here on.
    let id = match root.field("id") {
        Some(v) if valid_id(v) => v.clone(),
        _ => Value::Null,
    };
    let fail = |code, message: String| Err(ParseFailure::new(id.clone(), code, message));
    match root.field("v") {
        Some(v) if v.as_int() == Some(PROTOCOL_VERSION) => {}
        Some(v) => {
            return fail(
                ErrorCode::UnsupportedVersion,
                format!(
                    "unsupported protocol version {v:?} (this daemon speaks v{PROTOCOL_VERSION})"
                ),
            );
        }
        None => {
            return fail(
                ErrorCode::UnsupportedVersion,
                format!("missing protocol version field `v` (expected {PROTOCOL_VERSION})"),
            );
        }
    }
    if id == Value::Null {
        return fail(
            ErrorCode::BadRequest,
            "missing or invalid `id` (string or integer required)".to_string(),
        );
    }
    let Some(verb) = root.field("verb").and_then(Value::as_str) else {
        return fail(ErrorCode::BadRequest, "missing `verb` string".to_string());
    };
    let allowed: &[&str] = match verb {
        "solve" => &[
            "v",
            "id",
            "verb",
            "instance",
            "engine",
            "quality",
            "validate",
            "deadline_ms",
        ],
        "pareto" => &[
            "v", "id", "verb", "instance", "engine", "quality", "validate", "points",
        ],
        "stats" | "ping" | "shutdown" => &["v", "id", "verb"],
        other => {
            return fail(ErrorCode::BadRequest, format!("unknown verb `{other}`"));
        }
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            // Point a misplaced-but-known field at the verb it belongs
            // to instead of calling it unknown.
            let hint = match key.as_str() {
                "deadline_ms" => format!(" (only valid on verb `solve`, not `{verb}`)"),
                "points" => format!(" (only valid on verb `pareto`, not `{verb}`)"),
                "instance" | "engine" | "quality" | "validate" => {
                    format!(" (only valid on verbs `solve` and `pareto`, not `{verb}`)")
                }
                _ => String::new(),
            };
            return fail(
                ErrorCode::BadRequest,
                format!("unknown field `{key}`{hint}"),
            );
        }
    }
    let verb = match verb {
        "stats" => Verb::Stats,
        "ping" => Verb::Ping,
        "shutdown" => Verb::Shutdown,
        "pareto" => {
            let Some(instance_value) = root.field("instance") else {
                return fail(
                    ErrorCode::BadRequest,
                    "verb `pareto` requires an `instance` object".to_string(),
                );
            };
            let instance =
                match repliflow_core::instance::ProblemInstance::deserialize(instance_value) {
                    Ok(instance) => instance,
                    Err(e) => {
                        return fail(ErrorCode::BadRequest, format!("invalid instance: {e}"));
                    }
                };
            let engine = match root.field("engine") {
                None => FrontEnginePref::Auto,
                Some(v) => match v.as_str().and_then(FrontEnginePref::parse) {
                    Some(engine) => engine,
                    None => {
                        return fail(
                            ErrorCode::BadRequest,
                            format!("invalid front `engine` {v:?} (auto|exact|sweep)"),
                        );
                    }
                },
            };
            let quality = match root.field("quality") {
                None => Quality::Balanced,
                Some(v) => match v.as_str().and_then(Quality::parse) {
                    Some(quality) => quality,
                    None => {
                        return fail(
                            ErrorCode::BadRequest,
                            format!("invalid `quality` {v:?} (fast|balanced|thorough)"),
                        );
                    }
                },
            };
            let validate = match root.field("validate") {
                None => true,
                Some(Value::Bool(b)) => *b,
                Some(v) => {
                    return fail(
                        ErrorCode::BadRequest,
                        format!("invalid `validate` {v:?} (boolean required)"),
                    );
                }
            };
            let points = match root.field("points") {
                None => None,
                Some(v) => match v.as_int() {
                    Some(n) if (1..=u32::MAX as i128).contains(&n) => Some(n as usize),
                    _ => {
                        return fail(
                            ErrorCode::BadRequest,
                            format!("invalid `points` {v:?} (positive integer required)"),
                        );
                    }
                },
            };
            Verb::Pareto(Box::new(ParetoBody {
                instance,
                engine,
                quality,
                validate,
                points,
            }))
        }
        _solve => {
            let Some(instance_value) = root.field("instance") else {
                return fail(
                    ErrorCode::BadRequest,
                    "verb `solve` requires an `instance` object".to_string(),
                );
            };
            let instance =
                match repliflow_core::instance::ProblemInstance::deserialize(instance_value) {
                    Ok(instance) => instance,
                    Err(e) => {
                        return fail(ErrorCode::BadRequest, format!("invalid instance: {e}"));
                    }
                };
            let engine = match root.field("engine") {
                None => EnginePref::Auto,
                Some(v) => match v.as_str().and_then(EnginePref::parse) {
                    Some(engine) => engine,
                    None => {
                        return fail(
                            ErrorCode::BadRequest,
                            format!("invalid `engine` {v:?} (auto|exact|heuristic|paper|comm-bb)"),
                        );
                    }
                },
            };
            let quality = match root.field("quality") {
                None => Quality::Balanced,
                Some(v) => match v.as_str().and_then(Quality::parse) {
                    Some(quality) => quality,
                    None => {
                        return fail(
                            ErrorCode::BadRequest,
                            format!("invalid `quality` {v:?} (fast|balanced|thorough)"),
                        );
                    }
                },
            };
            let validate = match root.field("validate") {
                None => true,
                Some(Value::Bool(b)) => *b,
                Some(v) => {
                    return fail(
                        ErrorCode::BadRequest,
                        format!("invalid `validate` {v:?} (boolean required)"),
                    );
                }
            };
            let deadline_ms = match root.field("deadline_ms") {
                None => None,
                Some(v) => match v.as_int() {
                    Some(ms) if (0..=u64::MAX as i128).contains(&ms) => Some(ms as u64),
                    _ => {
                        return fail(
                            ErrorCode::BadRequest,
                            format!("invalid `deadline_ms` {v:?} (non-negative integer required)"),
                        );
                    }
                },
            };
            Verb::Solve(Box::new(SolveBody {
                instance,
                engine,
                quality,
                validate,
                deadline_ms,
            }))
        }
    };
    Ok(WireRequest { id, verb })
}

/// Renders a success response line (without the trailing newline).
pub fn ok_response(id: &Value, body: Value) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("v".into(), Value::Int(PROTOCOL_VERSION)),
        ("id".into(), id.clone()),
        ("ok".into(), body),
    ]))
    .unwrap_or_else(|_| fallback_error_line())
}

/// A hand-assembled error line for the (unreachable in practice) case
/// where serializing a [`Value`] tree fails: serving paths must never
/// panic, and a malformed-but-parseable envelope beats a dead
/// connection.
fn fallback_error_line() -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":null,\"err\":{{\"code\":\"solve_failed\",\
         \"message\":\"internal: response serialization failed\"}}}}"
    )
}

/// Renders an error response line (without the trailing newline).
pub fn err_response(id: &Value, code: ErrorCode, message: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("v".into(), Value::Int(PROTOCOL_VERSION)),
        ("id".into(), id.clone()),
        (
            "err".into(),
            Value::Object(vec![
                ("code".into(), Value::String(code.as_str().into())),
                ("message".into(), Value::String(message.into())),
            ]),
        ),
    ]))
    .unwrap_or_else(|_| fallback_error_line())
}

/// The `ok` payload of a solve response. The `canonical` field embeds
/// the report's [`canonical_json`] object **verbatim** — the
/// deterministic solution content a remote client re-serializes to get
/// bytes identical to an in-process solve (pinned by the daemon
/// integration suite). The siblings carry serving metadata and float
/// renderings that are excluded from the canonical form.
///
/// [`canonical_json`]: SolveReport::canonical_json
pub fn report_to_wire(report: &SolveReport) -> Value {
    // canonical_json comes from our own serializer, so the parse cannot
    // fail; if it ever did, ship the text as an opaque string instead
    // of panicking the connection thread.
    let canonical = match parse_value(&report.canonical_json()) {
        Ok(value) => value,
        Err(_) => Value::String(report.canonical_json()),
    };
    let cell = match report.complexity {
        repliflow_core::instance::Complexity::Polynomial(thm) => format!("polynomial ({thm})"),
        repliflow_core::instance::Complexity::NpHard(thm) => format!("NP-hard ({thm})"),
    };
    let opt_f64 = |r: Option<repliflow_core::rational::Rat>| match r {
        Some(v) => Value::Float(v.to_f64()),
        None => Value::Null,
    };
    Value::Object(vec![
        ("canonical".into(), canonical),
        ("cell".into(), Value::String(cell)),
        (
            "provenance".into(),
            Value::String(report.provenance.to_string()),
        ),
        (
            "wall_time_ms".into(),
            Value::Float(report.wall_time.as_secs_f64() * 1e3),
        ),
        ("period_f64".into(), opt_f64(report.period)),
        ("latency_f64".into(), opt_f64(report.latency)),
        ("objective_f64".into(), opt_f64(report.objective_value)),
        (
            // Search counters are timing-dependent under the parallel
            // root-branch search, so the canonical form only records
            // completion; the full counters ride along here as serving
            // metadata for remote observability.
            "search_stats".into(),
            match &report.search {
                Some(s) => Value::Object(vec![
                    ("nodes".into(), Value::Int(s.nodes as i128)),
                    ("pruned_bound".into(), Value::Int(s.pruned_bound as i128)),
                    (
                        "pruned_dominated".into(),
                        Value::Int(s.pruned_dominated as i128),
                    ),
                    ("completed".into(), Value::Bool(s.completed)),
                ]),
                None => Value::Null,
            },
        ),
    ])
}

/// The `ok` payload of a pareto response. Mirrors [`report_to_wire`]:
/// the `canonical` field embeds the front's
/// [`canonical_json`](FrontReport::canonical_json) object **verbatim**
/// — the deterministic front content a remote client re-serializes to
/// get bytes identical to an in-process front solve — and the siblings
/// carry serving metadata the canonical form deliberately excludes.
pub fn front_to_wire(report: &FrontReport) -> Value {
    // Our own serializer produced the canonical text, so the parse
    // cannot fail; ship it as an opaque string rather than panicking
    // the connection thread if that ever changes.
    let canonical = match parse_value(&report.canonical_json()) {
        Ok(value) => value,
        Err(_) => Value::String(report.canonical_json()),
    };
    Value::Object(vec![
        ("canonical".into(), canonical),
        ("n_points".into(), Value::Int(report.points.len() as i128)),
        (
            "provenance".into(),
            Value::String(report.provenance.to_string()),
        ),
        (
            "wall_time_ms".into(),
            Value::Float(report.wall_time.as_secs_f64() * 1e3),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance_json() -> &'static str {
        r#"{"workflow":{"Pipeline":{"weights":[14,4,2,4],"data_sizes":[0,0,0,0,0]}},
            "platform":{"speeds":[2,2,1,1]},"allow_data_parallel":true,"objective":"Period"}"#
    }

    #[test]
    fn parses_a_full_solve_request() {
        let line = format!(
            r#"{{"v":1,"id":"r-7","verb":"solve","instance":{},"engine":"exact",
                "quality":"fast","validate":false,"deadline_ms":250}}"#,
            instance_json()
        );
        let request = parse_request(&line).unwrap();
        assert_eq!(request.id, Value::String("r-7".into()));
        let Verb::Solve(body) = request.verb else {
            panic!("expected solve verb");
        };
        assert_eq!(body.engine, EnginePref::Exact);
        assert_eq!(body.quality, Quality::Fast);
        assert!(!body.validate);
        assert_eq!(body.deadline_ms, Some(250));
        assert_eq!(body.instance.workflow.n_stages(), 4);
    }

    #[test]
    fn parses_a_full_pareto_request() {
        let line = format!(
            r#"{{"v":1,"id":"p-1","verb":"pareto","instance":{},"engine":"sweep",
                "quality":"thorough","validate":false,"points":16}}"#,
            instance_json()
        );
        let request = parse_request(&line).unwrap();
        let Verb::Pareto(body) = request.verb else {
            panic!("expected pareto verb");
        };
        assert_eq!(body.engine, FrontEnginePref::Sweep);
        assert_eq!(body.quality, Quality::Thorough);
        assert!(!body.validate);
        assert_eq!(body.points, Some(16));
        assert_eq!(body.instance.workflow.n_stages(), 4);
    }

    #[test]
    fn pareto_defaults_mirror_solve_defaults() {
        let line = format!(
            r#"{{"v":1,"id":"p-2","verb":"pareto","instance":{}}}"#,
            instance_json()
        );
        let Verb::Pareto(body) = parse_request(&line).unwrap().verb else {
            panic!("expected pareto verb");
        };
        assert_eq!(body.engine, FrontEnginePref::Auto);
        assert_eq!(body.quality, Quality::Balanced);
        assert!(body.validate);
        assert_eq!(body.points, None);
    }

    #[test]
    fn pareto_rejects_the_solve_engine_vocabulary() {
        let line = format!(
            r#"{{"v":1,"id":"p-3","verb":"pareto","instance":{},"engine":"comm-bb"}}"#,
            instance_json()
        );
        let failure = parse_request(&line).unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
        assert!(failure.message.contains("auto|exact|sweep"));
    }

    #[test]
    fn pareto_rejects_non_positive_points() {
        for points in ["0", "-3", "\"many\""] {
            let line = format!(
                r#"{{"v":1,"id":"p-4","verb":"pareto","instance":{},"points":{points}}}"#,
                instance_json()
            );
            let failure = parse_request(&line).unwrap_err();
            assert_eq!(failure.code, ErrorCode::BadRequest);
            assert!(failure.message.contains("points"), "{}", failure.message);
        }
    }

    #[test]
    fn misplaced_fields_name_the_right_verb() {
        let failure = parse_request(r#"{"v":1,"id":"x","verb":"solve","instance":{},"points":4}"#)
            .unwrap_err();
        assert!(failure.message.contains("only valid on verb `pareto`"));
        let line = format!(
            r#"{{"v":1,"id":"x","verb":"pareto","instance":{},"deadline_ms":5}}"#,
            instance_json()
        );
        let failure = parse_request(&line).unwrap_err();
        assert!(failure.message.contains("only valid on verb `solve`"));
    }

    #[test]
    fn admin_verbs_parse_with_integer_ids() {
        for (verb, pattern) in [
            (
                "stats",
                matches!(
                    parse_request(r#"{"v":1,"id":3,"verb":"stats"}"#)
                        .unwrap()
                        .verb,
                    Verb::Stats
                ),
            ),
            (
                "ping",
                matches!(
                    parse_request(r#"{"v":1,"id":3,"verb":"ping"}"#)
                        .unwrap()
                        .verb,
                    Verb::Ping
                ),
            ),
            (
                "shutdown",
                matches!(
                    parse_request(r#"{"v":1,"id":3,"verb":"shutdown"}"#)
                        .unwrap()
                        .verb,
                    Verb::Shutdown
                ),
            ),
        ] {
            assert!(pattern, "verb {verb}");
        }
    }

    #[test]
    fn rejects_malformed_json_with_null_id() {
        let failure = parse_request("this is not json").unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
        assert_eq!(failure.id, Value::Null);
    }

    #[test]
    fn rejects_truncated_json() {
        let failure = parse_request(r#"{"v":1,"id":"x","verb":"solve","instance":{"#).unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
    }

    #[test]
    fn rejects_wrong_version_but_echoes_the_id() {
        let failure = parse_request(r#"{"v":99,"id":"x","verb":"ping"}"#).unwrap_err();
        assert_eq!(failure.code, ErrorCode::UnsupportedVersion);
        assert_eq!(failure.id, Value::String("x".into()));
    }

    #[test]
    fn rejects_missing_version() {
        let failure = parse_request(r#"{"id":"x","verb":"ping"}"#).unwrap_err();
        assert_eq!(failure.code, ErrorCode::UnsupportedVersion);
    }

    #[test]
    fn rejects_unknown_fields() {
        let failure = parse_request(r#"{"v":1,"id":"x","verb":"ping","zzz":1}"#).unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
        assert!(failure.message.contains("zzz"), "{}", failure.message);
    }

    #[test]
    fn rejects_solve_fields_on_admin_verbs_with_a_hint() {
        let failure =
            parse_request(r#"{"v":1,"id":"x","verb":"stats","deadline_ms":5}"#).unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
        assert!(failure.message.contains("only valid on verb `solve`"));
    }

    #[test]
    fn rejects_missing_id() {
        let failure = parse_request(r#"{"v":1,"verb":"ping"}"#).unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
        assert!(failure.message.contains("id"));
    }

    #[test]
    fn rejects_bad_instance_with_message() {
        let failure =
            parse_request(r#"{"v":1,"id":"x","verb":"solve","instance":{"nope":1}}"#).unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
        assert!(failure.message.contains("invalid instance"));
    }

    #[test]
    fn response_envelopes_round_trip() {
        let ok = ok_response(
            &Value::Int(5),
            Value::Object(vec![("pong".into(), Value::Bool(true))]),
        );
        let parsed = parse_value(&ok).unwrap();
        assert_eq!(parsed.field("id").unwrap(), &Value::Int(5));
        assert_eq!(
            parsed.field("ok").unwrap().field("pong"),
            Some(&Value::Bool(true))
        );

        let err = err_response(
            &Value::String("a".into()),
            ErrorCode::Overloaded,
            "queue full",
        );
        let parsed = parse_value(&err).unwrap();
        let envelope = parsed.field("err").unwrap();
        assert_eq!(envelope.field("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(ErrorCode::parse("overloaded"), Some(ErrorCode::Overloaded));
    }

    #[test]
    fn every_error_code_round_trips_its_spelling() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::LineTooLong,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Cancelled,
            ErrorCode::SolveFailed,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }
}
