//! The daemon itself: accept loop, per-connection protocol handling,
//! admission, and graceful drain.
//!
//! ## Architecture
//!
//! One [`Server`] owns one shared [`SolverService`] (persistent worker
//! pool + solve cache) and a TCP listener. Each accepted connection
//! gets two threads:
//!
//! * a **reader** (the connection thread): parses bounded request
//!   lines, answers admin verbs inline, and for `solve` requests asks
//!   the [`Admission`] gate for a ticket — admitted requests are
//!   submitted to the service pool via
//!   [`SolverService::solve_detached`], shed ones are answered
//!   `overloaded` immediately;
//! * a **writer**: serializes responses from an mpsc channel, one JSON
//!   line each, in *completion* order — the echoed request `id` is the
//!   client's correlation key, so one connection can pipeline many
//!   solves and a fast solve overtakes a slow sibling.
//!
//! Compute never runs on connection threads: connections are cheap
//! (two mostly-parked threads), and total solve concurrency is bounded
//! by the service pool regardless of the connection count.
//!
//! ## Lifecycle
//!
//! Drain is requested by SIGINT/SIGTERM (when
//! [`ServerConfig::honor_process_signals`] is set), by the protocol
//! `shutdown` verb, or by [`ServerHandle::shutdown`]. The server then
//! 1. stops accepting (the listener closes — new connects are
//!    refused),
//! 2. stops reading new requests on every connection,
//! 3. answers every already-admitted request (each reader drops its
//!    channel sender and joins its writer, which drains the in-flight
//!    solve callbacks' responses first),
//! 4. joins every connection thread and returns cleanly — the binary
//!    exits 0.
//!
//! Nothing admitted is ever dropped: a ticket only dies after its
//! response line is queued to the writer, and the writer only exits
//! after the queue is empty.

use crate::admission::{Admission, AdmissionConfig};
use crate::protocol::{
    err_response, front_to_wire, ok_response, parse_request, report_to_wire, ErrorCode, Verb,
    DEFAULT_MAX_LINE_BYTES,
};
use crate::{metrics, signal};
use repliflow_multicrit::{FrontRequest, FrontSolver};
use repliflow_solver::{Budget, Deadline, SolveRequest, SolverService};
use repliflow_sync::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use repliflow_sync::sync::{mpsc, Arc};
use repliflow_sync::thread::JoinHandle;
use serde::Value;
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Default TCP port of the daemon.
pub const DEFAULT_PORT: u16 = 7473;

/// How long blocked reads and idle accept polls sleep before
/// re-checking the drain flag — the upper bound on how stale a drain
/// request can go unnoticed.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Everything configurable about a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port —
    /// see [`Server::local_addr`]).
    pub addr: String,
    /// Admission limits (global queue depth, per-connection in-flight
    /// cap).
    pub admission: AdmissionConfig,
    /// Request line length cap in bytes; longer lines are answered
    /// with `line_too_long` and skipped.
    pub max_line_bytes: usize,
    /// Worker threads for the shared solver service (`None`: available
    /// parallelism).
    pub workers: Option<usize>,
    /// Solve-cache capacity in reports (`0` disables caching).
    pub cache_capacity: usize,
    /// Lock-striped solve-cache shard count (rounded to a power of two
    /// and clamped to the capacity; see `SolveCache::with_shards`).
    pub cache_shards: usize,
    /// Whether budgeted background escalation is enabled: heuristic
    /// answers get a bounded thorough-tier re-solve whose improvement
    /// refreshes the cache (`escalated` provenance on later hits).
    pub escalation: bool,
    /// Default budget applied to every request (the wire `quality`
    /// field overrides its quality tier per request).
    pub default_budget: Budget,
    /// Whether SIGINT/SIGTERM (via [`signal::install_handlers`])
    /// request drain. The binary sets this; library users and tests
    /// drive drain via [`ServerHandle::shutdown`] instead.
    pub honor_process_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: format!("127.0.0.1:{DEFAULT_PORT}"),
            admission: AdmissionConfig::default(),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            workers: None,
            cache_capacity: repliflow_solver::DEFAULT_CACHE_CAPACITY,
            cache_shards: repliflow_solver::DEFAULT_CACHE_SHARDS,
            escalation: false,
            default_budget: Budget::default(),
            honor_process_signals: false,
        }
    }
}

/// State shared between the accept loop, every connection, and
/// [`ServerHandle`]s.
pub(crate) struct ServerShared {
    pub(crate) admission: Arc<Admission>,
    draining: AtomicBool,
    honor_signals: bool,
    pub(crate) started: Instant,
    pub(crate) connections_total: AtomicU64,
    pub(crate) connections_open: AtomicUsize,
    max_line_bytes: usize,
    default_budget: Budget,
}

impl ServerShared {
    /// Whether drain has been requested through any channel.
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || (self.honor_signals && signal::drain_requested())
    }
}

/// A handle for requesting drain (and observing it) from outside the
/// server thread. Cloneable; safe to keep after the server exits.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl ServerHandle {
    /// Requests a graceful drain: stop accepting, answer everything
    /// admitted, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] consumes it and
/// blocks until drained.
pub struct Server {
    listener: TcpListener,
    service: Arc<SolverService>,
    front: Arc<FrontSolver>,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Binds the listener and builds the shared solver service. The
    /// service's worker pool spawns lazily on the first admitted
    /// solve.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let mut builder = SolverService::builder()
            .cache_capacity(config.cache_capacity)
            .cache_shards(config.cache_shards)
            .escalation(config.escalation)
            .default_budget(config.default_budget);
        if let Some(workers) = config.workers {
            builder = builder.workers(workers);
        }
        let service = Arc::new(builder.build());
        // Front cache geometry follows the solve cache's on/off switch:
        // a daemon with solve caching disabled caches no fronts either.
        let front = if config.cache_capacity == 0 {
            FrontSolver::without_cache(Arc::clone(&service))
        } else {
            FrontSolver::new(Arc::clone(&service))
        };
        Ok(Server {
            listener,
            service,
            front: Arc::new(front),
            shared: Arc::new(ServerShared {
                admission: Admission::new(config.admission),
                draining: AtomicBool::new(false),
                honor_signals: config.honor_process_signals,
                started: Instant::now(),
                connections_total: AtomicU64::new(0),
                connections_open: AtomicUsize::new(0),
                max_line_bytes: config.max_line_bytes,
                default_budget: config.default_budget,
            }),
        })
    }

    /// The bound address (resolves port `0` to the ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A drain handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The shared solver service (for in-process observability).
    pub fn service(&self) -> &Arc<SolverService> {
        &self.service
    }

    /// The shared front solver behind the `pareto` verb.
    pub fn front_solver(&self) -> &Arc<FrontSolver> {
        &self.front
    }

    /// Serves until drain is requested, then drains and returns. On a
    /// clean drain every admitted request has been answered and every
    /// connection closed by the time this returns.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            service,
            front,
            shared,
        } = self;
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !shared.draining() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // relaxed: gauge/counter metrics only — nothing is
                    // ordered against these loads, stats() tolerates a
                    // momentarily stale value.
                    shared.connections_total.fetch_add(1, Ordering::Relaxed);
                    shared.connections_open.fetch_add(1, Ordering::Relaxed);
                    let service = Arc::clone(&service);
                    let front = Arc::clone(&front);
                    let shared_conn = Arc::clone(&shared);
                    let spawned = repliflow_sync::thread::Builder::new()
                        .name("repliflow-serve-conn".into())
                        .spawn(move || {
                            handle_connection(stream, &service, &front, &shared_conn);
                            // relaxed: gauge metric only (see above).
                            shared_conn.connections_open.fetch_sub(1, Ordering::Relaxed);
                        });
                    match spawned {
                        Ok(handle) => connections.push(handle),
                        // Spawn fails only under resource exhaustion;
                        // shedding this connection (the dropped closure
                        // drops the stream, hanging up on the peer) is
                        // strictly better than panicking the accept
                        // loop and killing every live connection.
                        Err(_) => {
                            // relaxed: gauge metric only (see above).
                            shared.connections_open.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    // Reap finished connection threads so a long-lived
                    // daemon's handle list doesn't grow without bound.
                    connections.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    repliflow_sync::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // Transient accept errors (e.g. a connection reset
                // between accept queue and accept) must not kill the
                // daemon.
                Err(_) => repliflow_sync::thread::sleep(POLL_INTERVAL),
            }
        }
        // Drain: close the listener first (new connects are refused),
        // then wait for every connection to answer its admitted
        // requests and hang up.
        drop(listener);
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Outcome of one bounded line read.
enum Line {
    /// A complete line (without the terminator).
    Full(String),
    /// The line exceeded the cap; it was consumed and discarded.
    TooLong,
    /// Clean end of stream (or an unterminated trailing fragment).
    Eof,
    /// Drain was requested while waiting for bytes.
    Draining,
    /// Unrecoverable stream error.
    Failed,
}

/// A newline-delimited reader with a hard per-line byte cap and
/// drain-aware blocking: reads use a short timeout so a parked
/// connection notices a drain request within [`POLL_INTERVAL`].
struct LineReader<'a> {
    stream: TcpStream,
    shared: &'a ServerShared,
    pending: Vec<u8>,
    /// Set while consuming the remainder of an over-cap line.
    discarding: bool,
}

impl<'a> LineReader<'a> {
    fn new(stream: TcpStream, shared: &'a ServerShared) -> LineReader<'a> {
        LineReader {
            stream,
            shared,
            pending: Vec::new(),
            discarding: false,
        }
    }

    fn next_line(&mut self) -> Line {
        let mut chunk = [0u8; 4096];
        loop {
            // Hand out a complete buffered line first.
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding {
                    self.discarding = false;
                    return Line::TooLong;
                }
                return match String::from_utf8(line) {
                    Ok(s) => Line::Full(s),
                    // surfaced as a parse failure by the caller
                    Err(_) => Line::Full("\u{fffd}".into()),
                };
            }
            // Over-cap partial line: switch to discard mode, keep
            // consuming until its newline goes by.
            if self.pending.len() > self.shared.max_line_bytes {
                self.pending.clear();
                self.discarding = true;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Line::Eof,
                Ok(n) => {
                    if self.discarding {
                        // only the terminator matters; retain the tail
                        // after it for the next request
                        if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                            self.pending.extend_from_slice(&chunk[..=pos]);
                            self.pending.extend_from_slice(&chunk[pos + 1..n]);
                        }
                    } else {
                        self.pending.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if self.shared.draining() {
                        return Line::Draining;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Line::Failed,
            }
        }
    }
}

/// Serves one connection: reads requests until EOF/drain, answers via
/// the writer thread, then waits for every admitted solve's response
/// to flush before hanging up.
fn handle_connection(
    stream: TcpStream,
    service: &Arc<SolverService>,
    front: &Arc<FrontSolver>,
    shared: &Arc<ServerShared>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // A stuck peer must not wedge the writer (and thus drain) forever.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    let spawned = repliflow_sync::thread::Builder::new()
        .name("repliflow-serve-write".into())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            for line in rx {
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    // Peer is gone: stop writing. Senders' `send`s fail
                    // harmlessly; admission tickets still release.
                    return;
                }
            }
        });
    // Without a writer thread the connection cannot answer anything;
    // hang up (the peer retries) rather than panic the daemon. Spawn
    // fails only under resource exhaustion.
    let Ok(writer) = spawned else {
        return;
    };

    let conn_inflight = Arc::new(AtomicUsize::new(0));
    let mut reader = LineReader::new(stream, shared);
    loop {
        if shared.draining() {
            break;
        }
        match reader.next_line() {
            Line::Full(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(&line, service, front, shared, &conn_inflight, &tx);
            }
            Line::TooLong => {
                let _ = tx.send(err_response(
                    &Value::Null,
                    ErrorCode::LineTooLong,
                    &format!(
                        "request line exceeds the {} byte cap; request skipped",
                        shared.max_line_bytes
                    ),
                ));
            }
            Line::Draining | Line::Eof | Line::Failed => break,
        }
    }
    // Dropping our sender lets the writer exit once every in-flight
    // solve callback has delivered its response — the "no admitted
    // request is ever dropped" half of graceful drain.
    drop(tx);
    let _ = writer.join();
}

/// Dispatches one parsed request line.
fn handle_line(
    line: &str,
    service: &Arc<SolverService>,
    front: &Arc<FrontSolver>,
    shared: &Arc<ServerShared>,
    conn_inflight: &Arc<AtomicUsize>,
    tx: &mpsc::Sender<String>,
) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(failure) => {
            let _ = tx.send(err_response(&failure.id, failure.code, &failure.message));
            return;
        }
    };
    let id = request.id;
    match request.verb {
        Verb::Ping => {
            let _ = tx.send(ok_response(
                &id,
                Value::Object(vec![("pong".into(), Value::Bool(true))]),
            ));
        }
        Verb::Stats => {
            let _ = tx.send(ok_response(&id, metrics::snapshot(service, shared)));
        }
        Verb::Shutdown => {
            // Answer first, then raise the flag: the writer drains its
            // queue before exiting, so the acknowledgement always ships.
            let _ = tx.send(ok_response(
                &id,
                Value::Object(vec![("draining".into(), Value::Bool(true))]),
            ));
            shared.draining.store(true, Ordering::SeqCst);
        }
        Verb::Solve(body) => {
            if shared.draining() {
                let _ = tx.send(err_response(
                    &id,
                    ErrorCode::ShuttingDown,
                    "daemon is draining; no new requests admitted",
                ));
                return;
            }
            let ticket = match shared.admission.try_admit(conn_inflight) {
                Ok(ticket) => ticket,
                Err(reason) => {
                    let _ = tx.send(err_response(
                        &id,
                        ErrorCode::Overloaded,
                        &reason.message(shared.admission.config()),
                    ));
                    return;
                }
            };
            let mut solve = SolveRequest::new(body.instance)
                .engine(body.engine)
                .budget(shared.default_budget.quality(body.quality))
                .validate_witness(body.validate);
            if let Some(ms) = body.deadline_ms {
                solve = solve.deadline(Deadline::in_ms(ms));
            }
            let tx = tx.clone();
            service.solve_detached(solve, move |result| {
                let response = match result {
                    Ok(report) => ok_response(&id, report_to_wire(&report)),
                    Err(error) => {
                        let (code, message) = ErrorCode::of_solve_error(&error);
                        err_response(&id, code, &message)
                    }
                };
                // Release the slot before queuing the response: a
                // client that has read its answer must already see the
                // request as completed (e.g. in a follow-up `stats`).
                drop(ticket);
                let _ = tx.send(response);
            });
        }
        Verb::Pareto(body) => {
            if shared.draining() {
                let _ = tx.send(err_response(
                    &id,
                    ErrorCode::ShuttingDown,
                    "daemon is draining; no new requests admitted",
                ));
                return;
            }
            let ticket = match shared.admission.try_admit(conn_inflight) {
                Ok(ticket) => ticket,
                Err(reason) => {
                    let _ = tx.send(err_response(
                        &id,
                        ErrorCode::Overloaded,
                        &reason.message(shared.admission.config()),
                    ));
                    return;
                }
            };
            let mut budget = shared.default_budget.quality(body.quality);
            if let Some(points) = body.points {
                budget = budget.max_front_points(points);
            }
            let request = FrontRequest::new(body.instance)
                .engine(body.engine)
                .budget(budget)
                .validate_witness(body.validate);
            let front = Arc::clone(front);
            let front_tx = tx.clone();
            let front_id = id.clone();
            // A front solve is a *sequence* of pool solves; running it
            // on the connection thread would stall pipelined siblings
            // behind the whole sweep, so it gets its own orchestration
            // thread (the compute still runs on the shared pool, which
            // bounds total solve concurrency).
            let spawned = repliflow_sync::thread::Builder::new()
                .name("repliflow-serve-front".into())
                .spawn(move || {
                    let response = match front.solve_front(&request) {
                        Ok(report) => ok_response(&front_id, front_to_wire(&report)),
                        Err(error) => {
                            let (code, message) = ErrorCode::of_solve_error(&error);
                            err_response(&front_id, code, &message)
                        }
                    };
                    // Same release-before-answer ordering as solve.
                    drop(ticket);
                    let _ = front_tx.send(response);
                });
            if spawned.is_err() {
                // Resource exhaustion: shed this request; the ticket
                // (moved into the dropped closure) releases on drop.
                let _ = tx.send(err_response(
                    &id,
                    ErrorCode::Overloaded,
                    "cannot spawn a front orchestration thread; retry later",
                ));
            }
        }
    }
}
