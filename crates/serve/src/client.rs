//! A synchronous client for the daemon protocol: used by the CLI's
//! `--remote` mode, the `repliflow-serve ctl` admin subcommand, the
//! integration suite and the serving benchmark.
//!
//! One [`RemoteClient`] owns one TCP connection and issues one request
//! at a time (simple lock-step request/response; the *daemon* supports
//! pipelining, this client just doesn't need it — tests that exercise
//! pipelining write to the socket directly).

use crate::protocol::{ErrorCode, PROTOCOL_VERSION};
use repliflow_core::instance::ProblemInstance;
use repliflow_multicrit::FrontEnginePref;
use repliflow_solver::{EnginePref, Quality};
use serde::{Serialize, Value};
use serde_json::parse_value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// The wire spelling of an [`EnginePref`] (inverse of
/// [`EnginePref::parse`]).
pub fn engine_wire_name(engine: EnginePref) -> &'static str {
    match engine {
        EnginePref::Auto => "auto",
        EnginePref::Exact => "exact",
        EnginePref::Heuristic => "heuristic",
        EnginePref::Paper => "paper",
        EnginePref::CommBb => "comm-bb",
        EnginePref::Hedged => "hedged",
    }
}

/// The wire spelling of a [`FrontEnginePref`] (inverse of
/// [`FrontEnginePref::parse`]).
pub fn front_engine_wire_name(engine: FrontEnginePref) -> &'static str {
    match engine {
        FrontEnginePref::Auto => "auto",
        FrontEnginePref::Exact => "exact",
        FrontEnginePref::Sweep => "sweep",
    }
}

/// The wire spelling of a [`Quality`] (inverse of [`Quality::parse`]).
pub fn quality_wire_name(quality: Quality) -> &'static str {
    match quality {
        Quality::Fast => "fast",
        Quality::Balanced => "balanced",
        Quality::Thorough => "thorough",
    }
}

/// Everything that can go wrong talking to a daemon.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport failure (connect, read, write, or the daemon hung up).
    Io(std::io::Error),
    /// The daemon answered something this client cannot interpret.
    Protocol(String),
    /// The daemon answered with an error envelope.
    Server {
        /// Parsed error category (`None` for codes this build does not
        /// know — a newer daemon).
        code: Option<ErrorCode>,
        /// The wire spelling of the code, verbatim.
        raw_code: String,
        /// The daemon's human-readable message.
        message: String,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Io(e) => write!(f, "connection error: {e}"),
            RemoteError::Protocol(m) => write!(f, "protocol error: {m}"),
            RemoteError::Server {
                raw_code, message, ..
            } => write!(f, "daemon error [{raw_code}]: {message}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> RemoteError {
        RemoteError::Io(e)
    }
}

/// A solve response as it crossed the wire. `canonical` is the
/// daemon-side report's canonical JSON object, embedded verbatim —
/// [`RemoteReport::canonical_json`] re-serializes it byte-identically
/// to what [`SolveReport::canonical_json`] produced in the daemon
/// (object field order is preserved end to end). The other fields are
/// the serving metadata the canonical form deliberately excludes.
///
/// [`SolveReport::canonical_json`]: repliflow_solver::SolveReport::canonical_json
#[derive(Clone, Debug)]
pub struct RemoteReport {
    /// The canonical report object (verbatim from the daemon).
    pub canonical: Value,
    /// Table 1 cell with complexity class, e.g. `polynomial (Thm. 6)`.
    pub cell: String,
    /// `computed` or `cached` (daemon-side provenance).
    pub provenance: String,
    /// Daemon-side serve wall time in milliseconds.
    pub wall_time_ms: f64,
    /// Float rendering of the period, when present.
    pub period_f64: Option<f64>,
    /// Float rendering of the latency, when present.
    pub latency_f64: Option<f64>,
    /// Float rendering of the objective value, when present.
    pub objective_f64: Option<f64>,
    /// Daemon-side search counters `(nodes, pruned_bound,
    /// pruned_dominated, completed)` — serving metadata; the canonical
    /// form only records completion because the counters are
    /// timing-dependent under the parallel root-branch search.
    pub search_stats: Option<(u64, u64, u64, bool)>,
}

impl RemoteReport {
    fn from_wire(ok: &Value) -> Result<RemoteReport, RemoteError> {
        let field = |name: &str| {
            ok.field(name)
                .ok_or_else(|| RemoteError::Protocol(format!("solve payload missing `{name}`")))
        };
        let string = |name: &str| {
            field(name)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| RemoteError::Protocol(format!("`{name}` is not a string")))
        };
        let float = |name: &str| match field(name)? {
            Value::Null => Ok(None),
            Value::Float(v) => Ok(Some(*v)),
            Value::Int(v) => Ok(Some(*v as f64)),
            _ => Err(RemoteError::Protocol(format!("`{name}` is not a number"))),
        };
        let search_stats = ok.field("search_stats").and_then(|stats| {
            let count = |name: &str| match stats.field(name)? {
                Value::Int(v) if (0..=u64::MAX as i128).contains(v) => Some(*v as u64),
                _ => None,
            };
            Some((
                count("nodes")?,
                count("pruned_bound")?,
                count("pruned_dominated")?,
                matches!(stats.field("completed"), Some(Value::Bool(true))),
            ))
        });
        Ok(RemoteReport {
            canonical: field("canonical")?.clone(),
            cell: string("cell")?,
            provenance: string("provenance")?,
            wall_time_ms: float("wall_time_ms")?
                .ok_or_else(|| RemoteError::Protocol("`wall_time_ms` is null".into()))?,
            period_f64: float("period_f64")?,
            latency_f64: float("latency_f64")?,
            objective_f64: float("objective_f64")?,
            search_stats,
        })
    }

    /// The canonical JSON string — byte-identical to the daemon-side
    /// [`SolveReport::canonical_json`] output.
    ///
    /// [`SolveReport::canonical_json`]: repliflow_solver::SolveReport::canonical_json
    pub fn canonical_json(&self) -> String {
        // Value trees always re-serialize; should that ever change, a
        // "null" sentinel fails any downstream byte comparison loudly
        // without panicking the client.
        serde_json::to_string(&self.canonical).unwrap_or_else(|_| "null".into())
    }

    /// A string field of the canonical object (`None` when null or
    /// absent).
    pub fn canonical_str(&self, name: &str) -> Option<&str> {
        self.canonical.field(name).and_then(Value::as_str)
    }

    /// Whether the daemon served this report from its cache.
    pub fn is_cached(&self) -> bool {
        self.provenance == "cached"
    }

    /// The daemon's search counters, when the routed engine ran a
    /// search: `(nodes, pruned_bound, pruned_dominated, completed)`.
    /// Sourced from the wire-level `search_stats` sibling — the
    /// canonical `search` block only records completion.
    pub fn search(&self) -> Option<(u64, u64, u64, bool)> {
        self.search_stats
    }
}

/// A pareto response as it crossed the wire. `canonical` is the
/// daemon-side front's canonical JSON object, embedded verbatim —
/// [`RemoteFrontReport::canonical_json`] re-serializes it
/// byte-identically to what [`FrontReport::canonical_json`] produced
/// in the daemon. The other fields are serving metadata.
///
/// [`FrontReport::canonical_json`]: repliflow_multicrit::FrontReport::canonical_json
#[derive(Clone, Debug)]
pub struct RemoteFrontReport {
    /// The canonical front object (verbatim from the daemon).
    pub canonical: Value,
    /// Number of front points.
    pub n_points: usize,
    /// `computed` or `cached` (daemon-side front-cache provenance).
    pub provenance: String,
    /// Daemon-side front wall time in milliseconds.
    pub wall_time_ms: f64,
}

impl RemoteFrontReport {
    fn from_wire(ok: &Value) -> Result<RemoteFrontReport, RemoteError> {
        let field = |name: &str| {
            ok.field(name)
                .ok_or_else(|| RemoteError::Protocol(format!("pareto payload missing `{name}`")))
        };
        let n_points = match field("n_points")? {
            Value::Int(v) if (0..=u32::MAX as i128).contains(v) => *v as usize,
            v => {
                return Err(RemoteError::Protocol(format!(
                    "`n_points` is not a count: {v:?}"
                )));
            }
        };
        let provenance = field("provenance")?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| RemoteError::Protocol("`provenance` is not a string".into()))?;
        let wall_time_ms = match field("wall_time_ms")? {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            _ => {
                return Err(RemoteError::Protocol(
                    "`wall_time_ms` is not a number".into(),
                ))
            }
        };
        Ok(RemoteFrontReport {
            canonical: field("canonical")?.clone(),
            n_points,
            provenance,
            wall_time_ms,
        })
    }

    /// The canonical JSON string — byte-identical to the daemon-side
    /// [`FrontReport::canonical_json`] output.
    ///
    /// [`FrontReport::canonical_json`]: repliflow_multicrit::FrontReport::canonical_json
    pub fn canonical_json(&self) -> String {
        // Value trees always re-serialize; a "null" sentinel fails any
        // downstream byte comparison loudly without panicking.
        serde_json::to_string(&self.canonical).unwrap_or_else(|_| "null".into())
    }

    /// Whether the daemon served this front from its front cache.
    pub fn is_cached(&self) -> bool {
        self.provenance == "cached"
    }
}

/// Per-request options for [`RemoteClient::pareto`]; mirrors the wire
/// fields of the `pareto` verb.
#[derive(Clone, Copy, Debug)]
pub struct RemoteParetoOptions {
    /// Front engine routing preference.
    pub engine: FrontEnginePref,
    /// Heuristic effort tier for every inner solve.
    pub quality: Quality,
    /// Per-point witness re-validation daemon-side.
    pub validate: bool,
    /// Optional override of the daemon budget's `max_front_points`.
    pub points: Option<usize>,
}

impl Default for RemoteParetoOptions {
    fn default() -> Self {
        RemoteParetoOptions {
            engine: FrontEnginePref::Auto,
            quality: Quality::Balanced,
            validate: true,
            points: None,
        }
    }
}

/// Per-request options for [`RemoteClient::solve`]; mirrors the wire
/// fields of the `solve` verb.
#[derive(Clone, Copy, Debug)]
pub struct RemoteSolveOptions {
    /// Engine routing preference.
    pub engine: EnginePref,
    /// Heuristic effort tier.
    pub quality: Quality,
    /// Witness re-validation daemon-side.
    pub validate: bool,
    /// Optional deadline in milliseconds (daemon clock, starts at
    /// request parse).
    pub deadline_ms: Option<u64>,
}

impl Default for RemoteSolveOptions {
    fn default() -> Self {
        RemoteSolveOptions {
            engine: EnginePref::Auto,
            quality: Quality::Balanced,
            validate: true,
            deadline_ms: None,
        }
    }
}

/// One connection to a daemon.
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl RemoteClient {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<RemoteClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RemoteClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
        })
    }

    /// Sends one request object (the `v` and `id` fields are added
    /// here) and blocks for its response, returning the `ok` payload.
    fn roundtrip(&mut self, mut fields: Vec<(String, Value)>) -> Result<Value, RemoteError> {
        self.next_id += 1;
        let id = Value::Int(self.next_id as i128);
        let mut request = vec![
            ("v".to_string(), Value::Int(PROTOCOL_VERSION)),
            ("id".to_string(), id.clone()),
        ];
        request.append(&mut fields);
        let line = serde_json::to_string(&Value::Object(request))
            .map_err(|e| RemoteError::Protocol(format!("request serialization failed: {e}")))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(RemoteError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before answering",
            )));
        }
        let response = parse_value(response.trim_end())
            .map_err(|e| RemoteError::Protocol(format!("unparseable response: {e}")))?;
        match response.field("id") {
            Some(got) if *got == id => {}
            other => {
                return Err(RemoteError::Protocol(format!(
                    "response id {other:?} does not match request id {id:?}"
                )));
            }
        }
        if let Some(envelope) = response.field("err") {
            let raw_code = envelope
                .field("code")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            return Err(RemoteError::Server {
                code: ErrorCode::parse(&raw_code),
                raw_code,
                message: envelope
                    .field("message")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        match response.field("ok") {
            Some(ok) => Ok(ok.clone()),
            None => Err(RemoteError::Protocol(
                "response carries neither `ok` nor `err`".into(),
            )),
        }
    }

    /// Solves one instance on the daemon.
    pub fn solve(
        &mut self,
        instance: &ProblemInstance,
        options: &RemoteSolveOptions,
    ) -> Result<RemoteReport, RemoteError> {
        let mut fields = vec![
            ("verb".to_string(), Value::String("solve".into())),
            ("instance".to_string(), instance.serialize()),
            (
                "engine".to_string(),
                Value::String(engine_wire_name(options.engine).into()),
            ),
            (
                "quality".to_string(),
                Value::String(quality_wire_name(options.quality).into()),
            ),
            ("validate".to_string(), Value::Bool(options.validate)),
        ];
        if let Some(ms) = options.deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::Int(ms as i128)));
        }
        let ok = self.roundtrip(fields)?;
        RemoteReport::from_wire(&ok)
    }

    /// Traces one instance's (period, latency) Pareto front on the
    /// daemon.
    pub fn pareto(
        &mut self,
        instance: &ProblemInstance,
        options: &RemoteParetoOptions,
    ) -> Result<RemoteFrontReport, RemoteError> {
        let mut fields = vec![
            ("verb".to_string(), Value::String("pareto".into())),
            ("instance".to_string(), instance.serialize()),
            (
                "engine".to_string(),
                Value::String(front_engine_wire_name(options.engine).into()),
            ),
            (
                "quality".to_string(),
                Value::String(quality_wire_name(options.quality).into()),
            ),
            ("validate".to_string(), Value::Bool(options.validate)),
        ];
        if let Some(points) = options.points {
            fields.push(("points".to_string(), Value::Int(points as i128)));
        }
        let ok = self.roundtrip(fields)?;
        RemoteFrontReport::from_wire(&ok)
    }

    /// Fetches the daemon's metrics snapshot (the `stats` verb).
    pub fn stats(&mut self) -> Result<Value, RemoteError> {
        self.roundtrip(vec![("verb".to_string(), Value::String("stats".into()))])
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), RemoteError> {
        let ok = self.roundtrip(vec![("verb".to_string(), Value::String("ping".into()))])?;
        match ok.field("pong") {
            Some(Value::Bool(true)) => Ok(()),
            _ => Err(RemoteError::Protocol("ping did not pong".into())),
        }
    }

    /// Requests a graceful drain. The daemon acknowledges, finishes
    /// everything admitted, then exits.
    pub fn shutdown(&mut self) -> Result<(), RemoteError> {
        let ok = self.roundtrip(vec![("verb".to_string(), Value::String("shutdown".into()))])?;
        match ok.field("draining") {
            Some(Value::Bool(true)) => Ok(()),
            _ => Err(RemoteError::Protocol(
                "shutdown was not acknowledged".into(),
            )),
        }
    }
}
