//! repliflow-serve — the network-facing solver daemon.
//!
//! Everything below `crates/solver` answers *"how do we solve one
//! request well?"*; this crate answers *"how do we keep answering under
//! load, forever, and stop cleanly?"*. It wraps one shared
//! [`SolverService`] (persistent worker pool + fingerprint-keyed solve
//! cache) in a TCP daemon speaking a line-delimited JSON protocol:
//!
//! * [`protocol`] — the wire grammar: versioned requests with echoed
//!   ids, five verbs (`solve`, `pareto`, `stats`, `ping`, `shutdown`),
//!   structured error envelopes. Malformed, oversized or mis-versioned
//!   lines get an error response, never a dropped connection or a
//!   panic.
//! * [`admission`] — bounded admission with immediate load-shedding
//!   (`overloaded`), a per-connection in-flight cap, and counters.
//! * [`server`] — the daemon: thread-per-connection accept loop,
//!   per-connection writer threads (responses in completion order, so
//!   clients may pipeline), graceful drain that answers everything
//!   admitted before exiting.
//! * [`signal`] — SIGINT/SIGTERM → drain flag, without a `libc` crate.
//! * [`client`] — a synchronous client: the CLI's `--remote` mode, the
//!   `ctl` admin subcommand, tests and benchmarks.
//!
//! The load-bearing protocol guarantee: a remote solve's canonical
//! report is **byte-identical** to an in-process solve of the same
//! instance — the daemon embeds [`SolveReport::canonical_json`]'s
//! object verbatim in the response and the client re-serializes it
//! without reordering (pinned by `tests/daemon.rs`). The `pareto` verb
//! extends the same guarantee to whole Pareto fronts
//! ([`FrontReport::canonical_json`]).
//!
//! [`SolverService`]: repliflow_solver::SolverService
//! [`SolveReport::canonical_json`]: repliflow_solver::SolveReport::canonical_json
//! [`FrontReport::canonical_json`]: repliflow_multicrit::FrontReport::canonical_json

pub mod admission;
pub mod client;
mod metrics;
pub mod protocol;
pub mod server;
pub mod signal;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, RejectReason, Ticket};
pub use client::{
    engine_wire_name, front_engine_wire_name, quality_wire_name, RemoteClient, RemoteError,
    RemoteFrontReport, RemoteParetoOptions, RemoteReport, RemoteSolveOptions,
};
pub use protocol::{ErrorCode, DEFAULT_MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerHandle, DEFAULT_PORT};
