//! Process signal handling for graceful drain, without a `libc` crate.
//!
//! The build environment vendors no `libc`, so the daemon declares the
//! one POSIX symbol it needs itself: `signal(2)`. The installed
//! handler does the only thing that is async-signal-safe here — store
//! into a process-global [`AtomicBool`] — and the server's accept and
//! connection loops poll that flag alongside their own drain flag.
//! This is the classic self-pipe trick minus the pipe: every loop
//! already wakes on a short timeout (non-blocking accept poll, read
//! timeouts), so a flag is all the wake-up machinery required.
//!
//! Only the daemon binary installs the handlers
//! ([`install_handlers`]); the library and its tests drive drain
//! through [`ServerHandle::shutdown`] instead and never touch process
//! state.
//!
//! [`ServerHandle::shutdown`]: crate::server::ServerHandle::shutdown

use repliflow_sync::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on SIGINT/SIGTERM; polled by the server loops.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// `SIGINT` on every platform this repo targets.
const SIGINT: i32 = 2;
/// `SIGTERM` likewise.
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    /// POSIX `signal(2)`. The handler is passed as a raw function
    /// address (`sighandler_t`).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The installed handler: flag-store only (async-signal-safe).
#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers that request a graceful drain.
/// Call once from the daemon binary before serving. No-op on
/// non-unix platforms (drain remains available via the `shutdown`
/// verb and [`ServerHandle::shutdown`]).
///
/// [`ServerHandle::shutdown`]: crate::server::ServerHandle::shutdown
pub fn install_handlers() {
    #[cfg(unix)]
    // SAFETY: `signal` is the POSIX function; the handler only stores
    // into an atomic, which is async-signal-safe.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// Whether a SIGINT/SIGTERM arrived since [`install_handlers`].
pub fn drain_requested() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn a_raised_sigint_sets_the_drain_flag() {
        install_handlers();
        assert!(!drain_requested());
        // SAFETY: raising a signal whose handler we just installed; the
        // handler only stores into an atomic.
        unsafe {
            raise(SIGINT);
        }
        assert!(drain_requested());
    }
}
