//! `repliflow-serve` — run the solver daemon, or administrate one.
//!
//! ```text
//! repliflow-serve                          # serve on 127.0.0.1:7473
//! repliflow-serve --addr 0.0.0.0:9000     # custom bind address
//! repliflow-serve --workers 4 --no-cache  # pool and cache knobs
//! repliflow-serve --cache-shards 16       # cache lock striping
//! repliflow-serve --escalate              # background thorough re-solves
//! repliflow-serve --queue-depth 16 --per-conn-inflight 4
//! repliflow-serve --quality fast          # default heuristic tier
//! repliflow-serve ctl ping                # admin: liveness probe
//! repliflow-serve ctl stats               # admin: metrics snapshot
//! repliflow-serve ctl shutdown            # admin: graceful drain
//! repliflow-serve ctl stats --addr 127.0.0.1:9000
//! ```
//!
//! The daemon prints `listening on ADDR` to stdout once ready (scripts
//! wait for that line), serves until SIGINT/SIGTERM or a `shutdown`
//! verb, drains — every admitted request is answered — and exits 0.
//!
//! `ctl` connects as a client, runs one verb, prints the response
//! (pretty JSON for `stats`) and exits 0 on success.

use repliflow_serve::server::{Server, ServerConfig};
use repliflow_serve::{signal, RemoteClient, DEFAULT_PORT};
use repliflow_solver::{Budget, Quality};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repliflow-serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--per-conn-inflight N] [--no-cache] [--cache-capacity N] [--cache-shards N] \
         [--escalate] [--quality fast|balanced|thorough] [--max-line-bytes N]\n\
         \x20      repliflow-serve ctl ping|stats|shutdown [--addr HOST:PORT]"
    );
    ExitCode::FAILURE
}

/// The `ctl` admin subcommand: one verb over one connection.
fn ctl(args: &[String]) -> ExitCode {
    let mut verb: Option<String> = None;
    let mut addr = format!("127.0.0.1:{DEFAULT_PORT}");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return usage(),
            },
            "ping" | "stats" | "shutdown" if verb.is_none() => verb = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(verb) = verb else {
        return usage();
    };
    let mut client = match RemoteClient::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match verb.as_str() {
        "ping" => client.ping().map(|()| println!("pong")),
        "shutdown" => client.shutdown().map(|()| println!("draining")),
        _stats => client.stats().map(|snapshot| {
            // Value trees always serialize; "{}" keeps the CLI's output
            // valid JSON even if that ever changes.
            println!(
                "{}",
                serde_json::to_string_pretty(&snapshot).unwrap_or_else(|_| "{}".into())
            );
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("ctl") {
        return ctl(&args[1..]);
    }

    let mut config = ServerConfig {
        honor_process_signals: true,
        ..ServerConfig::default()
    };
    let mut quality = Quality::Balanced;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => config.addr = a,
                None => return usage(),
            },
            "--workers" => match it.next().as_deref().and_then(|w| w.parse().ok()) {
                Some(w) if w > 0 => config.workers = Some(w),
                _ => return usage(),
            },
            "--queue-depth" => match it.next().as_deref().and_then(|d| d.parse().ok()) {
                Some(d) => config.admission.queue_depth = d,
                None => return usage(),
            },
            "--per-conn-inflight" => match it.next().as_deref().and_then(|c| c.parse().ok()) {
                Some(c) if c > 0 => config.admission.per_conn_inflight = c,
                _ => return usage(),
            },
            "--no-cache" => config.cache_capacity = 0,
            "--cache-capacity" => match it.next().as_deref().and_then(|c| c.parse().ok()) {
                Some(c) => config.cache_capacity = c,
                None => return usage(),
            },
            "--cache-shards" => match it.next().as_deref().and_then(|s| s.parse().ok()) {
                Some(s) if s > 0 => config.cache_shards = s,
                _ => return usage(),
            },
            "--escalate" => config.escalation = true,
            "--quality" => match it.next().as_deref().and_then(Quality::parse) {
                Some(q) => quality = q,
                None => return usage(),
            },
            "--max-line-bytes" => match it.next().as_deref().and_then(|b| b.parse().ok()) {
                Some(b) if b > 0 => config.max_line_bytes = b,
                _ => return usage(),
            },
            "-h" | "--help" => return usage(),
            _ => return usage(),
        }
    }
    config.default_budget = Budget::default().quality(quality);

    signal::install_handlers();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Readiness line; scripts wait for it before connecting.
            println!("listening on {addr}");
        }
        Err(e) => {
            eprintln!("error: no local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("drained; exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
