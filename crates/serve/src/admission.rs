//! Admission control: the bounded gate between the accept loop and the
//! solver's worker pool.
//!
//! The replication-queueing literature the ROADMAP cites (Sun/Koksal/
//! Shroff; Wang/Joshi/Wornell) is blunt about unbounded queues: once
//! arrival rate exceeds service rate, an unbounded queue converts a
//! capacity problem into unbounded *latency* for everyone. The daemon
//! therefore bounds the number of admitted-but-unfinished solves and
//! sheds the excess immediately with structured `overloaded` responses
//! — a rejected client knows within microseconds, instead of waiting
//! out a queue that can never catch up. A second, per-connection
//! in-flight cap keeps one greedy pipelining client from occupying the
//! whole global queue.
//!
//! [`Admission::try_admit`] hands out RAII [`Ticket`]s; dropping the
//! ticket (response written, or solve callback finished) releases both
//! the global slot and the connection's slot and counts the request as
//! completed. High-water marks and accept/reject/complete counters
//! feed the `stats` verb.

use repliflow_sync::sync::atomic::{AtomicUsize, Ordering};
use repliflow_sync::sync::{Arc, Mutex, PoisonError};

/// Admission limits.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum admitted-but-unfinished solve requests daemon-wide
    /// (running on a worker *or* queued for one). `0` sheds every
    /// solve — useful for tests and maintenance mode.
    pub queue_depth: usize,
    /// Maximum admitted-but-unfinished solve requests per connection.
    pub per_conn_inflight: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_depth: 64,
            per_conn_inflight: 16,
        }
    }
}

#[derive(Debug, Default)]
struct Counts {
    in_flight: usize,
    high_water: usize,
    accepted: u64,
    rejected: u64,
    completed: u64,
}

/// Why a request was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global admitted-request bound is at capacity.
    QueueFull,
    /// This connection already has its maximum admitted requests.
    ConnectionBusy,
}

impl RejectReason {
    /// Human-readable message for the error envelope.
    pub fn message(self, config: &AdmissionConfig) -> String {
        match self {
            RejectReason::QueueFull => format!(
                "request queue full ({} admitted requests in flight); retry later",
                config.queue_depth
            ),
            RejectReason::ConnectionBusy => format!(
                "connection in-flight cap reached ({} requests); await responses before \
                 pipelining more",
                config.per_conn_inflight
            ),
        }
    }
}

/// Snapshot of the admission counters for the `stats` verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Admitted-but-unfinished solves right now.
    pub in_flight: usize,
    /// Largest `in_flight` ever observed.
    pub high_water: usize,
    /// Solve requests admitted.
    pub accepted: u64,
    /// Solve requests shed (queue full or connection cap).
    pub rejected: u64,
    /// Admitted solves whose response lifecycle finished.
    pub completed: u64,
}

/// The daemon-wide admission gate. Shared across connections.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    counts: Mutex<Counts>,
}

impl Admission {
    /// A gate with the given limits.
    pub fn new(config: AdmissionConfig) -> Arc<Admission> {
        Arc::new(Admission {
            config,
            counts: Mutex::new(Counts::default()),
        })
    }

    /// The configured limits.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Tries to admit one solve for the connection owning
    /// `conn_inflight`. On success the returned [`Ticket`] holds both
    /// the global slot and the connection slot until dropped; on
    /// rejection the reject counter is bumped and the caller should
    /// answer `overloaded`.
    pub fn try_admit(
        self: &Arc<Admission>,
        conn_inflight: &Arc<AtomicUsize>,
    ) -> Result<Ticket, RejectReason> {
        // Only counter arithmetic ever runs under this lock, so a
        // poisoned mutex still holds coherent counts — recover instead
        // of panicking the accept loop (pinned by modelcheck_admission).
        let mut counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        if counts.in_flight >= self.config.queue_depth {
            counts.rejected += 1;
            return Err(RejectReason::QueueFull);
        }
        // relaxed: the per-connection counter is only ever mutated
        // under the global `counts` lock, whose acquire/release orders
        // the accesses — check-then-increment cannot race.
        if conn_inflight.load(Ordering::Relaxed) >= self.config.per_conn_inflight {
            counts.rejected += 1;
            return Err(RejectReason::ConnectionBusy);
        }
        counts.in_flight += 1;
        counts.high_water = counts.high_water.max(counts.in_flight);
        counts.accepted += 1;
        // relaxed: ordered by the held `counts` lock (see load above).
        conn_inflight.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket {
            admission: Arc::clone(self),
            conn_inflight: Arc::clone(conn_inflight),
        })
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> AdmissionStats {
        let counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        AdmissionStats {
            in_flight: counts.in_flight,
            high_water: counts.high_water,
            accepted: counts.accepted,
            rejected: counts.rejected,
            completed: counts.completed,
        }
    }
}

/// RAII admission slot: held from admit until the request's response
/// lifecycle finishes; dropping releases the global and per-connection
/// slots and counts the completion.
#[derive(Debug)]
pub struct Ticket {
    admission: Arc<Admission>,
    conn_inflight: Arc<AtomicUsize>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // Recover a poisoned lock so a panicking request still releases
        // its slots — a leaked slot would shrink capacity forever.
        let mut counts = self
            .admission
            .counts
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        counts.in_flight -= 1;
        counts.completed += 1;
        // relaxed: ordered by the held `counts` lock (see try_admit).
        self.conn_inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> Arc<AtomicUsize> {
        Arc::new(AtomicUsize::new(0))
    }

    #[test]
    fn queue_depth_bounds_global_inflight() {
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 2,
            per_conn_inflight: 10,
        });
        let c = conn();
        let t1 = admission.try_admit(&c).unwrap();
        let _t2 = admission.try_admit(&c).unwrap();
        assert_eq!(
            admission.try_admit(&c).unwrap_err(),
            RejectReason::QueueFull
        );
        let stats = admission.stats();
        assert_eq!((stats.accepted, stats.rejected, stats.in_flight), (2, 1, 2));
        assert_eq!(stats.high_water, 2);
        drop(t1);
        assert!(admission.try_admit(&c).is_ok());
        assert_eq!(admission.stats().high_water, 2);
    }

    #[test]
    fn per_connection_cap_binds_before_the_global_one() {
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 100,
            per_conn_inflight: 1,
        });
        let (a, b) = (conn(), conn());
        let _ta = admission.try_admit(&a).unwrap();
        assert_eq!(
            admission.try_admit(&a).unwrap_err(),
            RejectReason::ConnectionBusy
        );
        // a different connection still gets in
        let _tb = admission.try_admit(&b).unwrap();
        assert_eq!(admission.stats().in_flight, 2);
    }

    #[test]
    fn zero_depth_sheds_everything() {
        let admission = Admission::new(AdmissionConfig {
            queue_depth: 0,
            per_conn_inflight: 1,
        });
        assert_eq!(
            admission.try_admit(&conn()).unwrap_err(),
            RejectReason::QueueFull
        );
    }

    #[test]
    fn dropping_tickets_counts_completions_and_frees_conn_slots() {
        let admission = Admission::new(AdmissionConfig::default());
        let c = conn();
        let tickets: Vec<Ticket> = (0..5).map(|_| admission.try_admit(&c).unwrap()).collect();
        assert_eq!(c.load(Ordering::Relaxed), 5);
        drop(tickets);
        let stats = admission.stats();
        assert_eq!((stats.in_flight, stats.completed), (0, 5));
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }
}
