//! Property-based tests for the core model: rational arithmetic laws and
//! the paper's Lemmas 1 and 2 as executable invariants.

use proptest::prelude::*;
use repliflow_core::cost;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Pipeline;

/// Small rationals that can never overflow in chained operations.
fn small_rat() -> impl Strategy<Value = Rat> {
    (-1000i128..=1000, 1i128..=1000).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    #[test]
    fn rat_add_commutative(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rat_add_associative(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rat_mul_commutative(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn rat_distributive(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rat_sub_roundtrip(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn rat_div_roundtrip(a in small_rat(), b in small_rat()) {
        prop_assume!(b != Rat::ZERO);
        prop_assert_eq!(a / b * b, a);
    }

    #[test]
    fn rat_order_total_and_consistent(a in small_rat(), b in small_rat()) {
        // exactly one of <, ==, > holds, and it matches subtraction sign
        let diff = a - b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff < Rat::ZERO),
            std::cmp::Ordering::Equal => prop_assert_eq!(diff, Rat::ZERO),
            std::cmp::Ordering::Greater => prop_assert!(diff > Rat::ZERO),
        }
    }

    #[test]
    fn rat_floor_ceil_bracket(a in small_rat()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rat::int(f) <= a && a <= Rat::int(c));
        prop_assert!(c - f <= 1);
    }

    #[test]
    fn rat_to_f64_monotone(a in small_rat(), b in small_rat()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }
}

/// Strategy: a pipeline of 1..=6 stages with weights 1..=30 plus a platform
/// of 1..=5 processors, and a random single-interval split point.
fn pipeline_platform() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    (
        prop::collection::vec(1u64..=30, 1..=6),
        prop::collection::vec(1u64..=10, 1..=5),
    )
}

/// Builds the canonical "split at k, first part on some procs replicated,
/// rest on the others" mapping used by several properties below.
fn split_mapping(n: usize, p: usize, k: usize, split_proc: usize, mode: Mode) -> Option<Mapping> {
    if n < 2 || p < 2 {
        return None;
    }
    let k = k % (n - 1); // first interval = stages 0..=k
    let split_proc = 1 + split_proc % (p - 1); // procs 0..split_proc | rest
    let first: Vec<ProcId> = (0..split_proc).map(ProcId).collect();
    let second: Vec<ProcId> = (split_proc..p).map(ProcId).collect();
    // data-parallel first interval only legal when it is a single stage
    let first_mode = if k == 0 { mode } else { Mode::Replicated };
    Some(Mapping::new(vec![
        Assignment::interval(0, k, first, first_mode),
        Assignment::interval(k + 1, n - 1, second, Mode::Replicated),
    ]))
}

proptest! {
    /// Lemma 1: on homogeneous platforms, a data-parallel single stage has
    /// exactly the same period as the same stage replicated on the same
    /// processor set.
    #[test]
    fn lemma1_dp_equals_replication_period_on_hom_platforms(
        (weights, _) in pipeline_platform(),
        p in 2usize..=5,
        s in 1u64..=10,
        k in 0usize..100,
        split in 0usize..100,
    ) {
        let n = weights.len();
        prop_assume!(n >= 2);
        let pipe = Pipeline::new(weights);
        let plat = Platform::homogeneous(p, s);
        let dp = split_mapping(n, p, k, split, Mode::DataParallel).unwrap();
        let rep = split_mapping(n, p, k, split, Mode::Replicated).unwrap();
        prop_assert_eq!(
            cost::pipeline_period(&pipe, &plat, &dp).unwrap(),
            cost::pipeline_period(&pipe, &plat, &rep).unwrap()
        );
    }

    /// Lemma 2: replication never changes the latency — shrinking every
    /// replicated group to its slowest processor alone preserves latency.
    #[test]
    fn lemma2_replication_does_not_change_latency(
        (weights, speeds) in pipeline_platform(),
        k in 0usize..100,
        split in 0usize..100,
    ) {
        let n = weights.len();
        let p = speeds.len();
        prop_assume!(n >= 2 && p >= 2);
        let pipe = Pipeline::new(weights);
        let plat = Platform::heterogeneous(speeds.clone());
        let m = split_mapping(n, p, k, split, Mode::Replicated).unwrap();
        // shrink each assignment to its slowest processor
        let shrunk = Mapping::new(
            m.assignments()
                .iter()
                .map(|a| {
                    let slowest = *a
                        .procs()
                        .iter()
                        .min_by_key(|&&q| (plat.speed(q), q.0))
                        .unwrap();
                    Assignment::new(a.stages().to_vec(), vec![slowest], Mode::Replicated)
                })
                .collect(),
        );
        prop_assert_eq!(
            cost::pipeline_latency(&pipe, &plat, &m).unwrap(),
            cost::pipeline_latency(&pipe, &plat, &shrunk).unwrap()
        );
    }

    /// Any mapping's period is at least total work / total platform speed
    /// (the lower bound used by Theorems 1 and 10).
    #[test]
    fn period_lower_bound(
        (weights, speeds) in pipeline_platform(),
        k in 0usize..100,
        split in 0usize..100,
        dp in any::<bool>(),
    ) {
        let n = weights.len();
        let p = speeds.len();
        prop_assume!(n >= 2 && p >= 2);
        let pipe = Pipeline::new(weights.clone());
        let plat = Platform::heterogeneous(speeds.clone());
        let mode = if dp { Mode::DataParallel } else { Mode::Replicated };
        let m = split_mapping(n, p, k, split, mode).unwrap();
        let period = cost::pipeline_period(&pipe, &plat, &m).unwrap();
        let bound = Rat::ratio(weights.iter().sum(), speeds.iter().sum());
        prop_assert!(period >= bound);
    }

    /// A group's delay is never smaller than its period.
    #[test]
    fn delay_at_least_period(
        work in 1u64..=1000,
        speeds in prop::collection::vec(1u64..=10, 1..=5),
        dp in any::<bool>(),
    ) {
        let plat = Platform::heterogeneous(speeds.clone());
        let procs: Vec<ProcId> = (0..speeds.len()).map(ProcId).collect();
        let mode = if dp { Mode::DataParallel } else { Mode::Replicated };
        let a = Assignment::new(vec![0], procs, mode);
        prop_assert!(
            cost::group_delay(work, &a, &plat) >= cost::group_period(work, &a, &plat)
        );
    }
}

// ---- Communication-aware model properties (Sections 3.2–3.3) ----

use repliflow_core::comm::{CommModel, Network, StartRule};
use repliflow_core::comm_cost;
use repliflow_core::workflow::{Fork, ForkJoin};

proptest! {
    /// With the infinite-bandwidth network every transfer is free, so the
    /// general-model pipeline evaluators must equal the simplified
    /// Section 3.4 model exactly — whatever the data sizes and the
    /// mapping's replication structure.
    #[test]
    fn comm_infinite_bandwidth_degenerates_to_simplified_pipeline(
        (weights, speeds) in pipeline_platform(),
        sizes in prop::collection::vec(0u64..=50, 7),
        k in 0usize..100,
        split in 0usize..100,
        dp in any::<bool>(),
    ) {
        let n = weights.len();
        let p = speeds.len();
        prop_assume!(n >= 2 && p >= 2);
        let pipe = Pipeline::with_data_sizes(weights.clone(), sizes[..=n].to_vec());
        let plat = Platform::heterogeneous(speeds);
        let net = Network::infinite(p);
        let mode = if dp { Mode::DataParallel } else { Mode::Replicated };
        let m = split_mapping(n, p, k, split, mode).unwrap();
        prop_assert_eq!(
            comm_cost::pipeline_period(&pipe, &plat, &net, &m).unwrap(),
            cost::pipeline_period(&pipe, &plat, &m).unwrap()
        );
        prop_assert_eq!(
            comm_cost::pipeline_latency(&pipe, &plat, &net, &m).unwrap(),
            cost::pipeline_latency(&pipe, &plat, &m).unwrap()
        );
    }

    /// Communication costs are non-negative: under any finite network a
    /// mapping's comm-aware period and latency dominate the simplified
    /// values (the monotonicity the comm-aware Table 1 rows rely on).
    #[test]
    fn comm_costs_only_increase_pipeline_objectives(
        (weights, speeds) in pipeline_platform(),
        sizes in prop::collection::vec(0u64..=50, 7),
        bw in 1u64..=8,
        k in 0usize..100,
        split in 0usize..100,
    ) {
        let n = weights.len();
        let p = speeds.len();
        prop_assume!(n >= 2 && p >= 2);
        let pipe = Pipeline::with_data_sizes(weights, sizes[..=n].to_vec());
        let plat = Platform::heterogeneous(speeds);
        let net = Network::uniform(p, bw);
        let m = split_mapping(n, p, k, split, Mode::Replicated).unwrap();
        prop_assert!(
            comm_cost::pipeline_period(&pipe, &plat, &net, &m).unwrap()
                >= cost::pipeline_period(&pipe, &plat, &m).unwrap()
        );
        prop_assert!(
            comm_cost::pipeline_latency(&pipe, &plat, &net, &m).unwrap()
                >= cost::pipeline_latency(&pipe, &plat, &m).unwrap()
        );
    }

    /// Fork degeneracy: free network + the flexible start rule reproduce
    /// the simplified fork (and fork-join) evaluators under both send
    /// disciplines.
    #[test]
    fn comm_infinite_bandwidth_degenerates_to_simplified_fork(
        root_weight in 1u64..=20,
        leaf_weights in prop::collection::vec(1u64..=20, 1..=5),
        sizes in prop::collection::vec(0u64..=50, 8),
        speeds in prop::collection::vec(1u64..=10, 2..=4),
        join_weight in 1u64..=20,
        cut in 0usize..100,
        one_port in any::<bool>(),
    ) {
        let n = leaf_weights.len();
        let p = speeds.len();
        let fork = Fork::with_data_sizes(
            root_weight,
            leaf_weights.clone(),
            sizes[0],
            sizes[1],
            sizes[2..2 + n].to_vec(),
        );
        let plat = Platform::heterogeneous(speeds);
        let net = Network::infinite(p);
        let comm = if one_port { CommModel::OnePort } else { CommModel::BoundedMultiPort };
        // root + a prefix of leaves on P0, the remaining leaves on P1
        let cut = 1 + cut % (n + 1).max(1);
        let first: Vec<usize> = (0..cut.min(n + 1)).collect();
        let second: Vec<usize> = (cut.min(n + 1)..=n).collect();
        let mut groups = vec![Assignment::new(first, vec![ProcId(0)], Mode::Replicated)];
        if !second.is_empty() {
            groups.push(Assignment::new(second, vec![ProcId(1)], Mode::Replicated));
        }
        let m = Mapping::new(groups);
        prop_assert_eq!(
            comm_cost::fork_period(&fork, &plat, &net, comm, &m).unwrap(),
            cost::fork_period(&fork, &plat, &m).unwrap()
        );
        prop_assert_eq!(
            comm_cost::fork_latency(&fork, &plat, &net, comm, StartRule::Flexible, &m).unwrap(),
            cost::fork_latency(&fork, &plat, &m).unwrap()
        );

        // the same grouping with a join stage appended to the last group
        let fj = ForkJoin::new(root_weight, leaf_weights, join_weight);
        let mut groups: Vec<Assignment> = m.assignments().to_vec();
        let last = groups.len() - 1;
        let mut stages = groups[last].stages().to_vec();
        stages.push(fj.join_stage());
        groups[last] =
            Assignment::new(stages, groups[last].procs().to_vec(), Mode::Replicated);
        let fjm = Mapping::new(groups);
        prop_assert_eq!(
            comm_cost::forkjoin_period(&fj, &plat, &net, comm, &fjm).unwrap(),
            cost::forkjoin_period(&fj, &plat, &fjm).unwrap()
        );
        prop_assert_eq!(
            comm_cost::forkjoin_latency(
                &fj, &plat, &net, comm, StartRule::Flexible, &fjm
            ).unwrap(),
            cost::forkjoin_latency(&fj, &plat, &fjm).unwrap()
        );
    }

    /// The strict start rule can only delay fork completions relative to
    /// the flexible rule, and one-port sends relative to multi-port.
    #[test]
    fn comm_fork_discipline_monotonicity(
        root_weight in 1u64..=10,
        leaf_weights in prop::collection::vec(1u64..=10, 2..=4),
        broadcast in 0u64..=20,
        bw in 1u64..=4,
        speeds in prop::collection::vec(1u64..=5, 3..=4),
    ) {
        let n = leaf_weights.len();
        let p = speeds.len();
        let fork = Fork::with_data_sizes(root_weight, leaf_weights, 2, broadcast, vec![1; n]);
        let plat = Platform::heterogeneous(speeds);
        let net = Network::uniform(p, bw);
        // root alone on P0, each remaining proc takes a slice of leaves
        let mut groups = vec![Assignment::new(vec![0], vec![ProcId(0)], Mode::Replicated)];
        let chunk = n.div_ceil(p - 1);
        for (i, leaves) in (1..=n).collect::<Vec<_>>().chunks(chunk).enumerate() {
            groups.push(Assignment::new(
                leaves.to_vec(),
                vec![ProcId(1 + i)],
                Mode::Replicated,
            ));
        }
        let m = Mapping::new(groups);
        for comm in [CommModel::OnePort, CommModel::BoundedMultiPort] {
            let flexible =
                comm_cost::fork_latency(&fork, &plat, &net, comm, StartRule::Flexible, &m).unwrap();
            let strict =
                comm_cost::fork_latency(&fork, &plat, &net, comm, StartRule::Strict, &m).unwrap();
            prop_assert!(strict >= flexible);
        }
        let one =
            comm_cost::fork_latency(&fork, &plat, &net, CommModel::OnePort, StartRule::Flexible, &m)
                .unwrap();
        let multi = comm_cost::fork_latency(
            &fork, &plat, &net, CommModel::BoundedMultiPort, StartRule::Flexible, &m,
        )
        .unwrap();
        prop_assert!(one >= multi);
    }
}
