//! Property-based tests for the core model: rational arithmetic laws and
//! the paper's Lemmas 1 and 2 as executable invariants.

use proptest::prelude::*;
use repliflow_core::cost;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::rational::Rat;
use repliflow_core::workflow::Pipeline;

/// Small rationals that can never overflow in chained operations.
fn small_rat() -> impl Strategy<Value = Rat> {
    (-1000i128..=1000, 1i128..=1000).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    #[test]
    fn rat_add_commutative(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rat_add_associative(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rat_mul_commutative(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn rat_distributive(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rat_sub_roundtrip(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn rat_div_roundtrip(a in small_rat(), b in small_rat()) {
        prop_assume!(b != Rat::ZERO);
        prop_assert_eq!(a / b * b, a);
    }

    #[test]
    fn rat_order_total_and_consistent(a in small_rat(), b in small_rat()) {
        // exactly one of <, ==, > holds, and it matches subtraction sign
        let diff = a - b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff < Rat::ZERO),
            std::cmp::Ordering::Equal => prop_assert_eq!(diff, Rat::ZERO),
            std::cmp::Ordering::Greater => prop_assert!(diff > Rat::ZERO),
        }
    }

    #[test]
    fn rat_floor_ceil_bracket(a in small_rat()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rat::int(f) <= a && a <= Rat::int(c));
        prop_assert!(c - f <= 1);
    }

    #[test]
    fn rat_to_f64_monotone(a in small_rat(), b in small_rat()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }
}

/// Strategy: a pipeline of 1..=6 stages with weights 1..=30 plus a platform
/// of 1..=5 processors, and a random single-interval split point.
fn pipeline_platform() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    (
        prop::collection::vec(1u64..=30, 1..=6),
        prop::collection::vec(1u64..=10, 1..=5),
    )
}

/// Builds the canonical "split at k, first part on some procs replicated,
/// rest on the others" mapping used by several properties below.
fn split_mapping(n: usize, p: usize, k: usize, split_proc: usize, mode: Mode) -> Option<Mapping> {
    if n < 2 || p < 2 {
        return None;
    }
    let k = k % (n - 1); // first interval = stages 0..=k
    let split_proc = 1 + split_proc % (p - 1); // procs 0..split_proc | rest
    let first: Vec<ProcId> = (0..split_proc).map(ProcId).collect();
    let second: Vec<ProcId> = (split_proc..p).map(ProcId).collect();
    // data-parallel first interval only legal when it is a single stage
    let first_mode = if k == 0 { mode } else { Mode::Replicated };
    Some(Mapping::new(vec![
        Assignment::interval(0, k, first, first_mode),
        Assignment::interval(k + 1, n - 1, second, Mode::Replicated),
    ]))
}

proptest! {
    /// Lemma 1: on homogeneous platforms, a data-parallel single stage has
    /// exactly the same period as the same stage replicated on the same
    /// processor set.
    #[test]
    fn lemma1_dp_equals_replication_period_on_hom_platforms(
        (weights, _) in pipeline_platform(),
        p in 2usize..=5,
        s in 1u64..=10,
        k in 0usize..100,
        split in 0usize..100,
    ) {
        let n = weights.len();
        prop_assume!(n >= 2);
        let pipe = Pipeline::new(weights);
        let plat = Platform::homogeneous(p, s);
        let dp = split_mapping(n, p, k, split, Mode::DataParallel).unwrap();
        let rep = split_mapping(n, p, k, split, Mode::Replicated).unwrap();
        prop_assert_eq!(
            cost::pipeline_period(&pipe, &plat, &dp).unwrap(),
            cost::pipeline_period(&pipe, &plat, &rep).unwrap()
        );
    }

    /// Lemma 2: replication never changes the latency — shrinking every
    /// replicated group to its slowest processor alone preserves latency.
    #[test]
    fn lemma2_replication_does_not_change_latency(
        (weights, speeds) in pipeline_platform(),
        k in 0usize..100,
        split in 0usize..100,
    ) {
        let n = weights.len();
        let p = speeds.len();
        prop_assume!(n >= 2 && p >= 2);
        let pipe = Pipeline::new(weights);
        let plat = Platform::heterogeneous(speeds.clone());
        let m = split_mapping(n, p, k, split, Mode::Replicated).unwrap();
        // shrink each assignment to its slowest processor
        let shrunk = Mapping::new(
            m.assignments()
                .iter()
                .map(|a| {
                    let slowest = *a
                        .procs()
                        .iter()
                        .min_by_key(|&&q| (plat.speed(q), q.0))
                        .unwrap();
                    Assignment::new(a.stages().to_vec(), vec![slowest], Mode::Replicated)
                })
                .collect(),
        );
        prop_assert_eq!(
            cost::pipeline_latency(&pipe, &plat, &m).unwrap(),
            cost::pipeline_latency(&pipe, &plat, &shrunk).unwrap()
        );
    }

    /// Any mapping's period is at least total work / total platform speed
    /// (the lower bound used by Theorems 1 and 10).
    #[test]
    fn period_lower_bound(
        (weights, speeds) in pipeline_platform(),
        k in 0usize..100,
        split in 0usize..100,
        dp in any::<bool>(),
    ) {
        let n = weights.len();
        let p = speeds.len();
        prop_assume!(n >= 2 && p >= 2);
        let pipe = Pipeline::new(weights.clone());
        let plat = Platform::heterogeneous(speeds.clone());
        let mode = if dp { Mode::DataParallel } else { Mode::Replicated };
        let m = split_mapping(n, p, k, split, mode).unwrap();
        let period = cost::pipeline_period(&pipe, &plat, &m).unwrap();
        let bound = Rat::ratio(weights.iter().sum(), speeds.iter().sum());
        prop_assert!(period >= bound);
    }

    /// A group's delay is never smaller than its period.
    #[test]
    fn delay_at_least_period(
        work in 1u64..=1000,
        speeds in prop::collection::vec(1u64..=10, 1..=5),
        dp in any::<bool>(),
    ) {
        let plat = Platform::heterogeneous(speeds.clone());
        let procs: Vec<ProcId> = (0..speeds.len()).map(ProcId).collect();
        let mode = if dp { Mode::DataParallel } else { Mode::Replicated };
        let a = Assignment::new(vec![0], procs, mode);
        prop_assert!(
            cost::group_delay(work, &a, &plat) >= cost::group_period(work, &a, &plat)
        );
    }
}
