//! Streaming-deserializer equivalence: `from_str_streaming` must accept
//! exactly the JSON the tree path accepts and produce identical
//! instances — on every committed golden file and on a synthetic
//! instance big enough (a dense 120-processor network matrix) that the
//! streaming path is the one the serving layer actually leans on.

use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_core::prelude::{CommModel, Network};
use repliflow_core::workflow::Pipeline;
use std::path::PathBuf;

#[test]
fn every_golden_instance_parses_identically_via_both_paths() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/instances");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("examples/instances is readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let json = std::fs::read_to_string(&path).expect("golden readable");
        let tree: ProblemInstance = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{path:?} rejected by tree path: {e}"));
        let streamed: ProblemInstance = serde_json::from_str_streaming(&json)
            .unwrap_or_else(|e| panic!("{path:?} rejected by streaming path: {e}"));
        assert_eq!(tree, streamed, "{path:?}: paths disagree");
        checked += 1;
    }
    assert!(checked >= 8, "golden set shrank unexpectedly");
}

#[test]
fn multi_megabyte_instance_round_trips_through_the_streaming_path() {
    // p = 120 needs the wide-mask representation downstream and its
    // dense proc_bw matrix dominates the file — the shape the
    // de-quadratic loading work targets.
    let p = 120;
    let n = 40;
    let instance = ProblemInstance {
        workflow: Pipeline::with_data_sizes((1..=n as u64).collect(), (0..=n as u64).collect())
            .into(),
        platform: repliflow_core::platform::Platform::heterogeneous((1..=p as u64).collect()),
        allow_data_parallel: true,
        objective: Objective::Latency,
        cost_model: CostModel::WithComm {
            network: Network::uniform(p, 3),
            comm: CommModel::BoundedMultiPort,
            overlap: true,
        },
    };
    let json = serde_json::to_string_pretty(&instance).expect("serializes");
    assert!(
        json.len() > 100_000,
        "synthetic instance should be large ({} bytes)",
        json.len()
    );
    let streamed: ProblemInstance = serde_json::from_str_streaming(&json).expect("streaming parse");
    assert_eq!(streamed, instance);
    let tree: ProblemInstance = serde_json::from_str(&json).expect("tree parse");
    assert_eq!(tree, streamed);
}
