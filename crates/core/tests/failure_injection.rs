//! Failure injection: every public evaluation API must reject malformed
//! inputs with the right error instead of computing garbage.

use repliflow_core::cost;
use repliflow_core::error::Error;
use repliflow_core::mapping::{Assignment, Mapping, Mode};
use repliflow_core::platform::{Platform, ProcId};
use repliflow_core::workflow::{Fork, ForkJoin, Pipeline};

fn procs(ids: &[usize]) -> Vec<ProcId> {
    ids.iter().map(|&u| ProcId(u)).collect()
}

#[test]
fn pipeline_rejects_every_structural_violation() {
    let pipe = Pipeline::new(vec![1, 2, 3]);
    let plat = Platform::homogeneous(3, 1);
    let cases: Vec<(Mapping, Error)> = vec![
        (
            // missing stage 2
            Mapping::new(vec![Assignment::interval(
                0,
                1,
                procs(&[0]),
                Mode::Replicated,
            )]),
            Error::UnmappedStage(2),
        ),
        (
            // stage 1 twice
            Mapping::new(vec![
                Assignment::interval(0, 1, procs(&[0]), Mode::Replicated),
                Assignment::interval(1, 2, procs(&[1]), Mode::Replicated),
            ]),
            Error::DuplicateStage(1),
        ),
        (
            // processor reuse
            Mapping::new(vec![
                Assignment::interval(0, 0, procs(&[0]), Mode::Replicated),
                Assignment::interval(1, 2, procs(&[0]), Mode::Replicated),
            ]),
            Error::DuplicateProc(ProcId(0)),
        ),
        (
            // hole in the interval
            Mapping::new(vec![
                Assignment::new(vec![0, 2], procs(&[0]), Mode::Replicated),
                Assignment::new(vec![1], procs(&[1]), Mode::Replicated),
            ]),
            Error::NonContiguousInterval,
        ),
        (
            // data-parallel multi-stage interval
            Mapping::new(vec![
                Assignment::interval(0, 1, procs(&[0, 1]), Mode::DataParallel),
                Assignment::interval(2, 2, procs(&[2]), Mode::Replicated),
            ]),
            Error::DataParallelInterval,
        ),
        (
            // unknown processor
            Mapping::new(vec![Assignment::interval(
                0,
                2,
                procs(&[7]),
                Mode::Replicated,
            )]),
            Error::UnknownProc(ProcId(7)),
        ),
        (
            // unknown stage
            Mapping::new(vec![
                Assignment::interval(0, 2, procs(&[0]), Mode::Replicated),
                Assignment::interval(9, 9, procs(&[1]), Mode::Replicated),
            ]),
            Error::UnknownStage(9),
        ),
    ];
    for (mapping, expected) in cases {
        assert_eq!(
            cost::pipeline_period(&pipe, &plat, &mapping).unwrap_err(),
            expected
        );
        assert_eq!(
            cost::pipeline_latency(&pipe, &plat, &mapping).unwrap_err(),
            expected
        );
    }
}

#[test]
fn fork_rejects_root_mix_and_forkjoin_rejects_join_mix() {
    let fork = Fork::new(1, vec![2, 2]);
    let plat = Platform::homogeneous(3, 1);
    let bad = Mapping::new(vec![
        Assignment::new(vec![0, 1], procs(&[0, 1]), Mode::DataParallel),
        Assignment::new(vec![2], procs(&[2]), Mode::Replicated),
    ]);
    assert_eq!(
        cost::fork_period(&fork, &plat, &bad).unwrap_err(),
        Error::DataParallelRootMix
    );
    assert_eq!(
        cost::fork_latency(&fork, &plat, &bad).unwrap_err(),
        Error::DataParallelRootMix
    );

    let fj = ForkJoin::new(1, vec![2], 3);
    let bad = Mapping::new(vec![
        Assignment::new(vec![0], procs(&[0]), Mode::Replicated),
        Assignment::new(vec![1, 2], procs(&[1, 2]), Mode::DataParallel),
    ]);
    assert_eq!(
        cost::forkjoin_latency(&fj, &plat, &bad).unwrap_err(),
        Error::DataParallelRootMix
    );
}

#[test]
fn empty_groups_are_rejected() {
    let pipe = Pipeline::new(vec![1]);
    let plat = Platform::homogeneous(1, 1);
    let no_procs = Mapping::new(vec![Assignment::new(vec![0], vec![], Mode::Replicated)]);
    assert_eq!(
        cost::pipeline_period(&pipe, &plat, &no_procs).unwrap_err(),
        Error::EmptyProcSet
    );
    let no_stages = Mapping::new(vec![
        Assignment::new(vec![], procs(&[0]), Mode::Replicated),
        Assignment::new(vec![0], procs(&[0]), Mode::Replicated),
    ]);
    assert_eq!(
        cost::pipeline_period(&pipe, &plat, &no_stages).unwrap_err(),
        Error::EmptyStageSet
    );
}

#[test]
fn malformed_instance_json_is_an_error_not_a_panic() {
    use repliflow_core::instance::ProblemInstance;
    for bad in [
        "",
        "{}",
        r#"{"workflow": 5}"#,
        r#"{"workflow": {"Pipeline": {"weights": [], "data_sizes": []}}}"#,
    ] {
        assert!(serde_json::from_str::<ProblemInstance>(bad).is_err());
    }
}

#[test]
fn error_display_is_informative() {
    // every error names the offending entity
    assert!(Error::UnmappedStage(3).to_string().contains('3'));
    assert!(Error::UnknownProc(ProcId(4)).to_string().contains("P5"));
    assert!(Error::DataParallelForbidden.to_string().contains("forbid"));
}
