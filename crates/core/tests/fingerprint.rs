//! Property suite for [`InstanceFingerprint`]: the serving layer caches
//! on this identity, so it must be (1) invariant under JSON field
//! reordering and serde round-trips and (2) distinct whenever any
//! cost-relevant field changes.
//!
//! [`InstanceFingerprint`]: repliflow_core::fingerprint::InstanceFingerprint

use repliflow_core::comm::{CommModel, Network};
use repliflow_core::gen::Gen;
use repliflow_core::instance::{CostModel, Objective, ProblemInstance};
use repliflow_core::rational::Rat;
use serde_json::Value;

/// Seeded random instances across every workflow shape, both platform
/// kinds and both cost models.
fn random_instances(count: usize, seed: u64) -> Vec<ProblemInstance> {
    let mut gen = Gen::new(seed);
    (0..count)
        .map(|i| {
            let procs = 2 + i % 4;
            let workflow: repliflow_core::workflow::Workflow = match i % 3 {
                0 => gen.pipeline(2 + i % 5, 1, 12).into(),
                1 => gen.fork(2 + i % 4, 1, 12).into(),
                _ => gen.forkjoin(2 + i % 3, 1, 12).into(),
            };
            let platform = if i % 2 == 0 {
                gen.hom_platform(procs, 1, 5)
            } else {
                gen.het_platform(procs, 1, 5)
            };
            let objective = match i % 6 {
                0 => Objective::Period,
                1 => Objective::Latency,
                2 => Objective::LatencyUnderPeriod(Rat::new(9 + i as i128, 2)),
                3 => Objective::PeriodUnderLatency(Rat::int(20 + i as i128)),
                4 => Objective::LatencyUnderReliability(Rat::new(80 + i as i128 % 20, 100)),
                _ => Objective::PeriodUnderReliability(Rat::new(80 + i as i128 % 20, 100)),
            };
            // every third instance gets a failing platform, so the
            // invariance properties also cover the `failure` field
            let platform = if i % 3 == 0 {
                let probs = (0..procs)
                    .map(|u| Rat::new(1 + (i + u) as i128 % 4, 10))
                    .collect();
                platform.with_failure_probs(probs)
            } else {
                platform
            };
            let mut instance = ProblemInstance::new(workflow, platform, i % 2 == 1, objective);
            if i % 2 == 0 {
                instance.cost_model = CostModel::WithComm {
                    network: gen.het_network(procs, 1, 5),
                    comm: if i % 4 == 0 {
                        CommModel::OnePort
                    } else {
                        CommModel::BoundedMultiPort
                    },
                    overlap: i % 3 == 0,
                };
            }
            instance
        })
        .collect()
}

/// Recursively reverses every JSON object's field order — a maximal
/// reordering that JSON semantics treat as the identical document.
fn reverse_fields(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(reverse_fields).collect()),
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .rev()
                .map(|(k, v)| (k.clone(), reverse_fields(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[test]
fn fingerprint_invariant_under_serde_round_trip() {
    for (i, instance) in random_instances(60, 0xF1_01).into_iter().enumerate() {
        let json = serde_json::to_string(&instance).unwrap();
        let back: ProblemInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(
            instance.fingerprint(),
            back.fingerprint(),
            "instance {i} changed fingerprint across a serde round-trip"
        );
    }
}

#[test]
fn fingerprint_invariant_under_json_field_reordering() {
    for (i, instance) in random_instances(60, 0xF1_02).into_iter().enumerate() {
        let value = serde_json::parse_value(&serde_json::to_string(&instance).unwrap()).unwrap();
        let reordered = serde_json::to_string(&reverse_fields(&value)).unwrap();
        let back: ProblemInstance = serde_json::from_str(&reordered).unwrap();
        assert_eq!(
            instance.fingerprint(),
            back.fingerprint(),
            "instance {i} changed fingerprint after JSON field reordering"
        );
        // double-check the reordering actually produced the same instance
        assert_eq!(instance, back, "reordering corrupted instance {i}");
    }
}

#[test]
fn fingerprint_invariant_under_pretty_printing() {
    for (i, instance) in random_instances(20, 0xF1_03).into_iter().enumerate() {
        let pretty = serde_json::to_string_pretty(&instance).unwrap();
        let back: ProblemInstance = serde_json::from_str(&pretty).unwrap();
        assert_eq!(
            instance.fingerprint(),
            back.fingerprint(),
            "instance {i} changed fingerprint across pretty-printing"
        );
    }
}

#[test]
fn distinct_when_a_stage_weight_changes() {
    let mut gen = Gen::new(0xF1_04);
    for n in 2..8 {
        let weights = gen.positive_ints(n, 1, 20);
        let base = ProblemInstance::new(
            repliflow_core::workflow::Pipeline::new(weights.clone()),
            gen.hom_platform(3, 1, 4),
            false,
            Objective::Period,
        );
        for stage in 0..n {
            let mut bumped = weights.clone();
            bumped[stage] += 1;
            let changed = ProblemInstance {
                workflow: repliflow_core::workflow::Pipeline::new(bumped).into(),
                ..base.clone()
            };
            assert_ne!(
                base.fingerprint(),
                changed.fingerprint(),
                "n={n}: weight bump at stage {stage} not reflected"
            );
        }
    }
}

#[test]
fn distinct_when_platform_speed_changes() {
    let mut gen = Gen::new(0xF1_05);
    let base = ProblemInstance::new(
        gen.pipeline(4, 1, 9),
        repliflow_core::platform::Platform::heterogeneous(vec![3, 2, 1]),
        false,
        Objective::Latency,
    );
    let changed = ProblemInstance {
        platform: repliflow_core::platform::Platform::heterogeneous(vec![3, 2, 2]),
        ..base.clone()
    };
    assert_ne!(base.fingerprint(), changed.fingerprint());
}

#[test]
fn distinct_when_bandwidth_overlap_or_discipline_changes() {
    let skeleton = ProblemInstance::new(
        repliflow_core::workflow::Pipeline::new(vec![2, 2, 2]),
        repliflow_core::platform::Platform::homogeneous(3, 2),
        false,
        Objective::Period,
    );
    let with = |network: Network, comm: CommModel, overlap: bool| {
        skeleton.clone().with_cost_model(CostModel::WithComm {
            network,
            comm,
            overlap,
        })
    };
    let base = with(Network::uniform(3, 2), CommModel::OnePort, false);
    assert_ne!(
        base.fingerprint(),
        with(Network::uniform(3, 3), CommModel::OnePort, false).fingerprint(),
        "bandwidth change not reflected"
    );
    assert_ne!(
        base.fingerprint(),
        with(Network::uniform(3, 2), CommModel::BoundedMultiPort, false).fingerprint(),
        "discipline change not reflected"
    );
    assert_ne!(
        base.fingerprint(),
        with(Network::uniform(3, 2), CommModel::OnePort, true).fingerprint(),
        "overlap change not reflected"
    );
}

#[test]
fn distinct_when_objective_or_bound_changes() {
    let mut gen = Gen::new(0xF1_07);
    let base = ProblemInstance::new(
        gen.pipeline(4, 1, 9),
        gen.hom_platform(3, 1, 4),
        true,
        Objective::Period,
    );
    for other in [
        Objective::Latency,
        Objective::LatencyUnderPeriod(Rat::int(5)),
        Objective::LatencyUnderPeriod(Rat::int(6)),
        Objective::PeriodUnderLatency(Rat::int(5)),
    ] {
        let changed = ProblemInstance {
            objective: other,
            ..base.clone()
        };
        assert_ne!(
            base.fingerprint(),
            changed.fingerprint(),
            "objective change to {other:?} not reflected"
        );
    }
    // the two bound values above must also differ from each other
    let a = ProblemInstance {
        objective: Objective::LatencyUnderPeriod(Rat::int(5)),
        ..base.clone()
    };
    let b = ProblemInstance {
        objective: Objective::LatencyUnderPeriod(Rat::int(6)),
        ..base.clone()
    };
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn distinct_when_failure_probabilities_change() {
    let mut gen = Gen::new(0xF1_0A);
    let base = ProblemInstance::new(
        gen.pipeline(4, 1, 9),
        repliflow_core::platform::Platform::heterogeneous(vec![3, 2, 1]),
        true,
        Objective::Latency,
    );
    let annotate = |probs: Vec<Rat>| ProblemInstance {
        platform: repliflow_core::platform::Platform::heterogeneous(vec![3, 2, 1])
            .with_failure_probs(probs),
        ..base.clone()
    };
    let failing = annotate(vec![Rat::new(1, 10), Rat::new(1, 20), Rat::new(1, 4)]);
    assert_ne!(
        base.fingerprint(),
        failing.fingerprint(),
        "failure annotation not reflected"
    );
    assert_ne!(
        failing.fingerprint(),
        annotate(vec![Rat::new(1, 10), Rat::new(1, 20), Rat::new(1, 5)]).fingerprint(),
        "single failure-probability change not reflected"
    );
    // per-processor assignment matters, not just the multiset
    assert_ne!(
        failing.fingerprint(),
        annotate(vec![Rat::new(1, 4), Rat::new(1, 20), Rat::new(1, 10)]).fingerprint(),
        "failure-probability permutation not reflected"
    );
    // the all-zero annotation IS the fail-free platform (normalized
    // away), so caching treats the two spellings as one instance
    assert_eq!(
        base.fingerprint(),
        annotate(vec![Rat::ZERO; 3]).fingerprint(),
        "all-zero annotation must normalize to the fail-free platform"
    );
}

#[test]
fn distinct_when_reliability_bound_or_variant_changes() {
    let mut gen = Gen::new(0xF1_0B);
    let base = ProblemInstance::new(
        gen.pipeline(4, 1, 9),
        gen.het_platform(3, 1, 4).with_failure_probs(vec![
            Rat::new(1, 10),
            Rat::new(1, 20),
            Rat::new(1, 4),
        ]),
        true,
        Objective::Latency,
    );
    let with = |objective: Objective| ProblemInstance {
        objective,
        ..base.clone()
    };
    let bounded = with(Objective::LatencyUnderReliability(Rat::new(93, 100)));
    assert_ne!(
        base.fingerprint(),
        bounded.fingerprint(),
        "reliability bound not reflected"
    );
    assert_ne!(
        bounded.fingerprint(),
        with(Objective::LatencyUnderReliability(Rat::new(94, 100))).fingerprint(),
        "reliability bound value not reflected"
    );
    assert_ne!(
        bounded.fingerprint(),
        with(Objective::PeriodUnderReliability(Rat::new(93, 100))).fingerprint(),
        "reliability-bounded variant (latency vs period) not reflected"
    );
}

#[test]
fn every_objective_arm_has_distinct_fingerprint_coverage() {
    // Fail-closed guard: this match has NO wildcard, so adding an
    // `Objective` arm refuses to compile until the new variant is
    // added both here and to the pairwise-distinctness matrix below.
    fn exemplar(objective: &Objective) -> Objective {
        match objective {
            Objective::Period => Objective::Period,
            Objective::Latency => Objective::Latency,
            Objective::LatencyUnderPeriod(b) => Objective::LatencyUnderPeriod(*b),
            Objective::PeriodUnderLatency(b) => Objective::PeriodUnderLatency(*b),
            Objective::LatencyUnderReliability(b) => Objective::LatencyUnderReliability(*b),
            Objective::PeriodUnderReliability(b) => Objective::PeriodUnderReliability(*b),
            Objective::LatencyUnderPeriodStrict(b) => Objective::LatencyUnderPeriodStrict(*b),
            Objective::PeriodUnderLatencyStrict(b) => Objective::PeriodUnderLatencyStrict(*b),
        }
    }
    let bound = Rat::new(9, 10);
    let arms = [
        Objective::Period,
        Objective::Latency,
        Objective::LatencyUnderPeriod(bound),
        Objective::PeriodUnderLatency(bound),
        Objective::LatencyUnderReliability(bound),
        Objective::PeriodUnderReliability(bound),
        // strict (<) and inclusive (<=) bounds are different problems,
        // so they must never share a cache entry
        Objective::LatencyUnderPeriodStrict(bound),
        Objective::PeriodUnderLatencyStrict(bound),
    ];
    let mut gen = Gen::new(0xF1_0C);
    let base = ProblemInstance::new(
        gen.pipeline(4, 1, 9),
        gen.het_platform(3, 1, 4).with_failure_probs(vec![
            Rat::new(1, 10),
            Rat::new(1, 20),
            Rat::new(1, 4),
        ]),
        true,
        Objective::Period,
    );
    let mut prints: Vec<u128> = arms
        .iter()
        .map(|o| {
            ProblemInstance {
                objective: exemplar(o),
                ..base.clone()
            }
            .fingerprint()
            .as_u128()
        })
        .collect();
    prints.sort_unstable();
    prints.dedup();
    assert_eq!(
        prints.len(),
        arms.len(),
        "two objective variants share a fingerprint"
    );
}

#[test]
fn distinct_when_data_parallel_flag_flips() {
    for instance in random_instances(20, 0xF1_08) {
        let flipped = ProblemInstance {
            allow_data_parallel: !instance.allow_data_parallel,
            ..instance.clone()
        };
        assert_ne!(instance.fingerprint(), flipped.fingerprint());
    }
}

#[test]
fn random_instances_rarely_collide() {
    // 200 random instances: all pairwise distinct (a collision here
    // would mean the canonical encoding drops information).
    let instances = random_instances(200, 0xF1_09);
    let mut prints: Vec<u128> = instances
        .iter()
        .map(|i| i.fingerprint().as_u128())
        .collect();
    prints.sort_unstable();
    prints.dedup();
    assert_eq!(prints.len(), instances.len(), "fingerprint collision");
}
