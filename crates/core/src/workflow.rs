//! Application workflow graphs: pipeline, fork and fork-join.
//!
//! These are the application patterns of Section 3.1 of the paper
//! (Figures 1 and 2), plus the fork-join extension of Section 6.3.
//!
//! Stage indexing convention (0-based, mirrors the paper's 1-based one):
//! * [`Pipeline`] — stages `0 .. n` correspond to the paper's `S1 .. Sn`.
//! * [`Fork`] — stage `0` is the root `S0`; stages `1 ..= n` are the
//!   independent stages `S1 .. Sn`.
//! * [`ForkJoin`] — as [`Fork`] plus stage `n + 1`, the join stage `Sn+1`.
//!
//! Each stage `Sk` performs `w_k` computations per data set. Data sizes
//! `δ_k` (used only by the general model with communication, [`crate::comm`])
//! default to zero, which recovers the simplified model of Section 3.4.

use crate::cost;
use crate::error::Error;
use crate::mapping::Mapping;
use crate::platform::Platform;
use crate::rational::Rat;
use serde::{Deserialize, Serialize};

/// A linear pipeline of `n` stages (Figure 1).
///
/// Consecutive data sets are fed into stage 0 and traverse every stage in
/// order. The paper's *homogeneous pipeline* has all stage weights equal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pipeline {
    weights: Vec<u64>,
    /// `δ_0 .. δ_n`: `data_sizes[k]` is the size of the output of stage
    /// `k - 1` / input of stage `k`; `data_sizes[0]` comes from the outside
    /// world and `data_sizes[n]` returns to it. Length `n + 1`.
    data_sizes: Vec<u64>,
}

impl Pipeline {
    /// Pipeline with the given stage weights and zero communication sizes
    /// (the simplified model).
    ///
    /// # Panics
    /// Panics if `weights` is empty.
    pub fn new(weights: Vec<u64>) -> Self {
        assert!(!weights.is_empty(), "a pipeline needs at least one stage");
        let n = weights.len();
        Pipeline {
            weights,
            data_sizes: vec![0; n + 1],
        }
    }

    /// Pipeline with explicit data sizes `δ_0 .. δ_n` for the general model.
    ///
    /// # Panics
    /// Panics if `weights` is empty or `data_sizes.len() != weights.len() + 1`.
    pub fn with_data_sizes(weights: Vec<u64>, data_sizes: Vec<u64>) -> Self {
        assert!(!weights.is_empty(), "a pipeline needs at least one stage");
        assert_eq!(
            data_sizes.len(),
            weights.len() + 1,
            "need n+1 data sizes for an n-stage pipeline"
        );
        Pipeline {
            weights,
            data_sizes,
        }
    }

    /// The paper's *homogeneous pipeline*: `n` stages of identical weight `w`.
    pub fn uniform(n: usize, w: u64) -> Self {
        Pipeline::new(vec![w; n])
    }

    /// Number of stages `n`.
    #[inline]
    pub fn n_stages(&self) -> usize {
        self.weights.len()
    }

    /// Weight `w_k` of stage `k` (0-based).
    #[inline]
    pub fn weight(&self, stage: usize) -> u64 {
        self.weights[stage]
    }

    /// All stage weights.
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Data size `δ_k` (`k` in `0 ..= n`).
    #[inline]
    pub fn data_size(&self, k: usize) -> u64 {
        self.data_sizes[k]
    }

    /// Sum of weights over the stage interval `lo ..= hi` (inclusive).
    pub fn interval_work(&self, lo: usize, hi: usize) -> u64 {
        self.weights[lo..=hi].iter().sum()
    }

    /// Total work of one data set across all stages.
    pub fn total_work(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// True iff all stages have the same weight (*homogeneous pipeline*).
    pub fn is_homogeneous(&self) -> bool {
        self.weights.windows(2).all(|w| w[0] == w[1])
    }

    /// Period of `mapping` under the simplified model (Section 3.4).
    pub fn period(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        cost::pipeline_period(self, platform, mapping)
    }

    /// Latency of `mapping` under the simplified model (Section 3.4).
    pub fn latency(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        cost::pipeline_latency(self, platform, mapping)
    }
}

/// A fork graph: a root stage `S0` followed by `n` independent stages
/// (Figure 2).
///
/// Each data set traverses `S0`, whose output (size `δ_0`) feeds every
/// independent stage. The paper's *homogeneous fork* has all independent
/// stages of identical weight `w` (the root weight `w_0` may differ).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fork {
    root_weight: u64,
    leaf_weights: Vec<u64>,
    /// `δ_{-1}`: input size of the root from the outside world.
    input_size: u64,
    /// `δ_0`: size of the root's output broadcast to every leaf.
    broadcast_size: u64,
    /// `δ_1 .. δ_n`: output sizes of the independent stages.
    output_sizes: Vec<u64>,
}

impl Fork {
    /// Fork with root weight `w0` and independent-stage weights, zero
    /// communication sizes.
    ///
    /// `leaf_weights` may be empty (a fork degenerated to the root alone).
    pub fn new(root_weight: u64, leaf_weights: Vec<u64>) -> Self {
        let n = leaf_weights.len();
        Fork {
            root_weight,
            leaf_weights,
            input_size: 0,
            broadcast_size: 0,
            output_sizes: vec![0; n],
        }
    }

    /// The paper's *homogeneous fork*: root weight `w0`, `n` leaves of
    /// identical weight `w`.
    pub fn uniform(root_weight: u64, n: usize, w: u64) -> Self {
        Fork::new(root_weight, vec![w; n])
    }

    /// Fork with explicit communication sizes for the general model.
    ///
    /// # Panics
    /// Panics if `output_sizes.len() != leaf_weights.len()`.
    pub fn with_data_sizes(
        root_weight: u64,
        leaf_weights: Vec<u64>,
        input_size: u64,
        broadcast_size: u64,
        output_sizes: Vec<u64>,
    ) -> Self {
        assert_eq!(output_sizes.len(), leaf_weights.len());
        Fork {
            root_weight,
            leaf_weights,
            input_size,
            broadcast_size,
            output_sizes,
        }
    }

    /// Number of stages including the root (`n + 1`).
    #[inline]
    pub fn n_stages(&self) -> usize {
        self.leaf_weights.len() + 1
    }

    /// Number of independent stages `n`.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.leaf_weights.len()
    }

    /// Root weight `w_0`.
    #[inline]
    pub fn root_weight(&self) -> u64 {
        self.root_weight
    }

    /// Weight of stage `k` where `0` is the root and `1 ..= n` are leaves.
    #[inline]
    pub fn weight(&self, stage: usize) -> u64 {
        if stage == 0 {
            self.root_weight
        } else {
            self.leaf_weights[stage - 1]
        }
    }

    /// Weights of the independent stages `S1 .. Sn`.
    #[inline]
    pub fn leaf_weights(&self) -> &[u64] {
        &self.leaf_weights
    }

    /// `δ_{-1}`.
    #[inline]
    pub fn input_size(&self) -> u64 {
        self.input_size
    }

    /// `δ_0`.
    #[inline]
    pub fn broadcast_size(&self) -> u64 {
        self.broadcast_size
    }

    /// `δ_k` for leaf `k` (1-based stage id).
    #[inline]
    pub fn output_size(&self, stage: usize) -> u64 {
        self.output_sizes[stage - 1]
    }

    /// Total work of one data set: `w_0 + Σ w_i`.
    pub fn total_work(&self) -> u64 {
        self.root_weight + self.leaf_weights.iter().sum::<u64>()
    }

    /// True iff all *independent* stages have the same weight (the paper's
    /// *homogeneous fork*; the root weight may differ).
    pub fn is_homogeneous(&self) -> bool {
        self.leaf_weights.windows(2).all(|w| w[0] == w[1])
    }

    /// Period of `mapping` under the simplified model.
    pub fn period(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        cost::fork_period(self, platform, mapping)
    }

    /// Latency of `mapping` under the simplified, flexible model.
    pub fn latency(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        cost::fork_latency(self, platform, mapping)
    }
}

/// A fork-join graph (Section 6.3): a [`Fork`] plus a final stage `Sn+1`
/// that gathers every leaf's result and performs `join_weight` computations.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForkJoin {
    fork: Fork,
    join_weight: u64,
}

impl ForkJoin {
    /// Fork-join with the given root, leaf and join weights.
    pub fn new(root_weight: u64, leaf_weights: Vec<u64>, join_weight: u64) -> Self {
        ForkJoin {
            fork: Fork::new(root_weight, leaf_weights),
            join_weight,
        }
    }

    /// Homogeneous fork-join: `n` identical leaves of weight `w`.
    pub fn uniform(root_weight: u64, n: usize, w: u64, join_weight: u64) -> Self {
        ForkJoin::new(root_weight, vec![w; n], join_weight)
    }

    /// Fork-join with explicit data sizes on its fork part: `input_size`
    /// enters the root from `P_in`, `broadcast_size` is sent to every
    /// leaf group, and `output_sizes[i]` is shipped from leaf `i + 1` to
    /// the *join group* (instead of `P_out` as in a plain [`Fork`]).
    ///
    /// # Panics
    /// Panics if `output_sizes.len() != leaf_weights.len()`.
    pub fn with_data_sizes(
        root_weight: u64,
        leaf_weights: Vec<u64>,
        join_weight: u64,
        input_size: u64,
        broadcast_size: u64,
        output_sizes: Vec<u64>,
    ) -> Self {
        ForkJoin {
            fork: Fork::with_data_sizes(
                root_weight,
                leaf_weights,
                input_size,
                broadcast_size,
                output_sizes,
            ),
            join_weight,
        }
    }

    /// The underlying fork (root + leaves).
    #[inline]
    pub fn fork(&self) -> &Fork {
        &self.fork
    }

    /// Number of stages including root and join (`n + 2`).
    #[inline]
    pub fn n_stages(&self) -> usize {
        self.fork.n_stages() + 1
    }

    /// Number of independent stages `n`.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.fork.n_leaves()
    }

    /// Stage id of the join stage (`n + 1`).
    #[inline]
    pub fn join_stage(&self) -> usize {
        self.fork.n_stages()
    }

    /// Root weight `w_0`.
    #[inline]
    pub fn root_weight(&self) -> u64 {
        self.fork.root_weight()
    }

    /// Join weight `w_{n+1}`.
    #[inline]
    pub fn join_weight(&self) -> u64 {
        self.join_weight
    }

    /// Weight of stage `k` (`0` root, `1..=n` leaves, `n+1` join).
    #[inline]
    pub fn weight(&self, stage: usize) -> u64 {
        if stage == self.join_stage() {
            self.join_weight
        } else {
            self.fork.weight(stage)
        }
    }

    /// Total work of one data set.
    pub fn total_work(&self) -> u64 {
        self.fork.total_work() + self.join_weight
    }

    /// True iff all independent stages have the same weight.
    pub fn is_homogeneous(&self) -> bool {
        self.fork.is_homogeneous()
    }

    /// Period of `mapping` under the simplified model.
    pub fn period(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        cost::forkjoin_period(self, platform, mapping)
    }

    /// Latency of `mapping` under the simplified, flexible model.
    pub fn latency(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        cost::forkjoin_latency(self, platform, mapping)
    }
}

/// Any of the supported application graphs, for generic instance handling.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workflow {
    /// Linear pipeline (Figure 1).
    Pipeline(Pipeline),
    /// Fork (Figure 2).
    Fork(Fork),
    /// Fork-join (Section 6.3).
    ForkJoin(ForkJoin),
}

impl Workflow {
    /// Number of stages of the graph.
    pub fn n_stages(&self) -> usize {
        match self {
            Workflow::Pipeline(p) => p.n_stages(),
            Workflow::Fork(f) => f.n_stages(),
            Workflow::ForkJoin(fj) => fj.n_stages(),
        }
    }

    /// Weight of stage `k` under each graph's stage-id convention.
    pub fn weight(&self, stage: usize) -> u64 {
        match self {
            Workflow::Pipeline(p) => p.weight(stage),
            Workflow::Fork(f) => f.weight(stage),
            Workflow::ForkJoin(fj) => fj.weight(stage),
        }
    }

    /// Total work of one data set.
    pub fn total_work(&self) -> u64 {
        match self {
            Workflow::Pipeline(p) => p.total_work(),
            Workflow::Fork(f) => f.total_work(),
            Workflow::ForkJoin(fj) => fj.total_work(),
        }
    }

    /// True iff the graph is homogeneous in the paper's sense.
    pub fn is_homogeneous(&self) -> bool {
        match self {
            Workflow::Pipeline(p) => p.is_homogeneous(),
            Workflow::Fork(f) => f.is_homogeneous(),
            Workflow::ForkJoin(fj) => fj.is_homogeneous(),
        }
    }

    /// Period of `mapping` under the simplified model.
    pub fn period(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        match self {
            Workflow::Pipeline(p) => p.period(platform, mapping),
            Workflow::Fork(f) => f.period(platform, mapping),
            Workflow::ForkJoin(fj) => fj.period(platform, mapping),
        }
    }

    /// Latency of `mapping` under the simplified model.
    pub fn latency(&self, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
        match self {
            Workflow::Pipeline(p) => p.latency(platform, mapping),
            Workflow::Fork(f) => f.latency(platform, mapping),
            Workflow::ForkJoin(fj) => fj.latency(platform, mapping),
        }
    }
}

impl From<Pipeline> for Workflow {
    fn from(p: Pipeline) -> Self {
        Workflow::Pipeline(p)
    }
}
impl From<Fork> for Workflow {
    fn from(f: Fork) -> Self {
        Workflow::Fork(f)
    }
}
impl From<ForkJoin> for Workflow {
    fn from(fj: ForkJoin) -> Self {
        Workflow::ForkJoin(fj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_basics() {
        let p = Pipeline::new(vec![14, 4, 2, 4]);
        assert_eq!(p.n_stages(), 4);
        assert_eq!(p.total_work(), 24);
        assert_eq!(p.weight(0), 14);
        assert_eq!(p.interval_work(1, 3), 10);
        assert_eq!(p.interval_work(0, 0), 14);
        assert!(!p.is_homogeneous());
        assert!(Pipeline::uniform(5, 3).is_homogeneous());
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let _ = Pipeline::new(vec![]);
    }

    #[test]
    fn pipeline_data_sizes() {
        let p = Pipeline::with_data_sizes(vec![5, 6], vec![1, 2, 3]);
        assert_eq!(p.data_size(0), 1);
        assert_eq!(p.data_size(1), 2);
        assert_eq!(p.data_size(2), 3);
        // default sizes are zero
        let q = Pipeline::new(vec![5, 6]);
        assert_eq!(q.data_size(1), 0);
    }

    #[test]
    fn fork_basics() {
        let f = Fork::new(3, vec![1, 2, 3]);
        assert_eq!(f.n_stages(), 4);
        assert_eq!(f.n_leaves(), 3);
        assert_eq!(f.root_weight(), 3);
        assert_eq!(f.weight(0), 3);
        assert_eq!(f.weight(2), 2);
        assert_eq!(f.total_work(), 9);
        assert!(!f.is_homogeneous());
        assert!(Fork::uniform(7, 4, 2).is_homogeneous());
        // homogeneity ignores the root weight
        assert!(Fork::new(99, vec![2, 2]).is_homogeneous());
    }

    #[test]
    fn fork_without_leaves() {
        let f = Fork::new(5, vec![]);
        assert_eq!(f.n_stages(), 1);
        assert_eq!(f.total_work(), 5);
        assert!(f.is_homogeneous());
    }

    #[test]
    fn forkjoin_basics() {
        let fj = ForkJoin::new(1, vec![2, 2], 5);
        assert_eq!(fj.n_stages(), 4);
        assert_eq!(fj.join_stage(), 3);
        assert_eq!(fj.weight(0), 1);
        assert_eq!(fj.weight(1), 2);
        assert_eq!(fj.weight(3), 5);
        assert_eq!(fj.total_work(), 10);
    }

    #[test]
    fn workflow_enum_dispatch() {
        let w: Workflow = Pipeline::new(vec![1, 2]).into();
        assert_eq!(w.n_stages(), 2);
        assert_eq!(w.total_work(), 3);
        let w: Workflow = Fork::new(1, vec![1]).into();
        assert_eq!(w.n_stages(), 2);
        let w: Workflow = ForkJoin::new(1, vec![1], 1).into();
        assert_eq!(w.n_stages(), 3);
        assert!(w.is_homogeneous());
    }

    #[test]
    fn serde_round_trip() {
        let p = Pipeline::with_data_sizes(vec![5, 6], vec![1, 2, 3]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Pipeline = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
