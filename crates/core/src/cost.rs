//! The simplified cost model of Section 3.4: period and latency of a
//! mapping, with all communication costs and overheads neglected.
//!
//! For a stage group of total work `W = Σ w_ℓ` assigned to processors
//! `P_{q1} .. P_{qk}`:
//!
//! * **replicated** — period `W / (k · min_u s_{qu})`, traversal delay
//!   `W / min_u s_{qu}` (the slowest round-robin participant bounds both);
//! * **data-parallel** — period = delay = `W / Σ_u s_{qu}`.
//!
//! The **period** of a mapping is the maximum group period. The pipeline
//! **latency** is the sum of group delays along the pipeline. The fork
//! latency uses the *flexible* model: every non-root group starts as soon
//! as `S0` completes, so
//! `T_latency = max( t_max(1), w0/s0 + max_{r ≥ 2} t_max(r) )`
//! where group 1 holds the root and `s0` is the speed at which `S0` is
//! processed (`Σ s` if group 1 is data-parallel, `min s` if replicated).
//!
//! The fork-join extension (Section 6.3) appends a join stage `S_{n+1}`
//! that can start only when every leaf is complete:
//! `T_latency = AllLeavesDone + w_{n+1} / s_join`, where `AllLeavesDone`
//! is the fork latency computed over the non-join work of every group and
//! `s_join` is the aggregate (data-parallel) or minimum (replicated) speed
//! of the join group. The paper states the extension exists and keeps the
//! complexity; this is the natural formalization under the flexible model.

use crate::error::Error;
use crate::mapping::{Assignment, Mapping, Mode};
use crate::platform::Platform;
use crate::rational::Rat;
use crate::workflow::{Fork, ForkJoin, Pipeline};

/// Period of one stage group: the time between two consecutive data sets
/// entering the group at full utilization.
pub fn group_period(work: u64, assignment: &Assignment, platform: &Platform) -> Rat {
    let k = assignment.n_procs() as u64;
    match assignment.mode {
        Mode::Replicated => Rat::ratio(work, k * platform.subset_min_speed(assignment.procs())),
        Mode::DataParallel => Rat::ratio(work, platform.subset_speed(assignment.procs())),
    }
}

/// Traversal delay of one stage group: the time one data set spends in it.
pub fn group_delay(work: u64, assignment: &Assignment, platform: &Platform) -> Rat {
    match assignment.mode {
        Mode::Replicated => Rat::ratio(work, platform.subset_min_speed(assignment.procs())),
        Mode::DataParallel => Rat::ratio(work, platform.subset_speed(assignment.procs())),
    }
}

/// Delay of a **data-parallel** stage under the Amdahl refinement of
/// Section 3.3: a fixed inherently-sequential overhead `f_i` plus the
/// parallelizable work shared across the set — `f_i + w_i / Σ s`.
///
/// With `overhead = 0` this reduces to the simplified model. The paper
/// introduces the overhead "to account for the startup time induced by
/// system calls" but analyzes only the zero-overhead case; the
/// Amdahl-aware latency algorithm lives in
/// `repliflow-algorithms::hom_pipeline::min_latency_dp_amdahl`.
pub fn dp_delay_with_overhead(
    work: u64,
    overhead: u64,
    procs: &[crate::platform::ProcId],
    platform: &Platform,
) -> Rat {
    Rat::int(overhead as i128) + Rat::ratio(work, platform.subset_speed(procs))
}

/// Period of a pipeline mapping: `max_j` over interval periods.
pub fn pipeline_period(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    mapping.validate_pipeline(pipeline, platform, true)?;
    Ok(mapping
        .assignments()
        .iter()
        .map(|a| group_period(a.work(|s| pipeline.weight(s)), a, platform))
        .fold(Rat::ZERO, Rat::max))
}

/// Latency of a pipeline mapping: sum of interval delays.
pub fn pipeline_latency(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    mapping.validate_pipeline(pipeline, platform, true)?;
    Ok(mapping
        .assignments()
        .iter()
        .map(|a| group_delay(a.work(|s| pipeline.weight(s)), a, platform))
        .sum())
}

/// Period of a fork mapping: `max_r` over group periods.
pub fn fork_period(fork: &Fork, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
    mapping.validate_fork(fork, platform, true)?;
    Ok(mapping
        .assignments()
        .iter()
        .map(|a| group_period(a.work(|s| fork.weight(s)), a, platform))
        .fold(Rat::ZERO, Rat::max))
}

/// The speed at which the root stage is processed by its group:
/// `Σ s` if data-parallel, `min s` if replicated (Section 3.4).
fn root_speed(assignment: &Assignment, platform: &Platform) -> u64 {
    match assignment.mode {
        Mode::DataParallel => platform.subset_speed(assignment.procs()),
        Mode::Replicated => platform.subset_min_speed(assignment.procs()),
    }
}

/// Latency of a fork mapping under the flexible model.
pub fn fork_latency(fork: &Fork, platform: &Platform, mapping: &Mapping) -> Result<Rat, Error> {
    mapping.validate_fork(fork, platform, true)?;
    Ok(fork_latency_of_work(
        fork.root_weight(),
        |a| a.work(|s| fork.weight(s)),
        platform,
        mapping,
    ))
}

/// Shared fork-latency computation over a caller-supplied per-group work
/// function (lets the fork-join evaluation exclude the join stage's work).
fn fork_latency_of_work(
    root_weight: u64,
    work_of: impl Fn(&Assignment) -> u64,
    platform: &Platform,
    mapping: &Mapping,
) -> Rat {
    let root_group = mapping
        .assignment_of(0)
        .expect("validated mapping has a root group");
    let s0 = root_speed(root_group, platform);
    let root_done = Rat::ratio(root_weight, s0);

    let mut latency = group_delay(work_of(root_group), root_group, platform);
    for a in mapping.assignments() {
        if a.contains_stage(0) {
            continue;
        }
        let t = group_delay(work_of(a), a, platform);
        latency = latency.max(root_done + t);
    }
    latency
}

/// Period of a fork-join mapping: `max_r` over group periods (the join
/// stage's work counts toward its group's load like any other stage).
pub fn forkjoin_period(
    forkjoin: &ForkJoin,
    platform: &Platform,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    mapping.validate_forkjoin(forkjoin, platform, true)?;
    Ok(mapping
        .assignments()
        .iter()
        .map(|a| group_period(a.work(|s| forkjoin.weight(s)), a, platform))
        .fold(Rat::ZERO, Rat::max))
}

/// Latency of a fork-join mapping under the flexible model (see module
/// docs for the formalization).
pub fn forkjoin_latency(
    forkjoin: &ForkJoin,
    platform: &Platform,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    mapping.validate_forkjoin(forkjoin, platform, true)?;
    let join = forkjoin.join_stage();
    // Fork part: every group's work excluding the join stage.
    let all_leaves_done = fork_latency_of_work(
        forkjoin.root_weight(),
        |a| {
            a.stages()
                .iter()
                .filter(|&&s| s != join)
                .map(|&s| forkjoin.weight(s))
                .sum()
        },
        platform,
        mapping,
    );
    let join_group = mapping
        .assignment_of(join)
        .expect("validated mapping has a join group");
    let s_join = match join_group.mode {
        Mode::DataParallel => platform.subset_speed(join_group.procs()),
        Mode::Replicated => platform.subset_min_speed(join_group.procs()),
    };
    Ok(all_leaves_done + Rat::ratio(forkjoin.join_weight(), s_join))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ProcId;

    fn procs(ids: &[usize]) -> Vec<ProcId> {
        ids.iter().map(|&u| ProcId(u)).collect()
    }

    /// The Section 2 example: pipeline [14, 4, 2, 4].
    fn section2_pipeline() -> Pipeline {
        Pipeline::new(vec![14, 4, 2, 4])
    }

    #[test]
    fn section2_homogeneous_basic_mapping() {
        // S1 -> P1, S2..S4 -> P2: period 14, latency 24.
        let pipe = section2_pipeline();
        let plat = Platform::homogeneous(3, 1);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0]), Mode::Replicated),
            Assignment::interval(1, 3, procs(&[1]), Mode::Replicated),
        ]);
        assert_eq!(pipeline_period(&pipe, &plat, &m).unwrap(), Rat::int(14));
        assert_eq!(pipeline_latency(&pipe, &plat, &m).unwrap(), Rat::int(24));
    }

    #[test]
    fn section2_replicate_whole_pipeline() {
        // All four stages replicated on all three processors: period 8,
        // latency still 24.
        let pipe = section2_pipeline();
        let plat = Platform::homogeneous(3, 1);
        let m = Mapping::whole(4, procs(&[0, 1, 2]), Mode::Replicated);
        assert_eq!(pipeline_period(&pipe, &plat, &m).unwrap(), Rat::int(8));
        assert_eq!(pipeline_latency(&pipe, &plat, &m).unwrap(), Rat::int(24));
    }

    #[test]
    fn section2_replicate_s1_only() {
        // S1 replicated on {P1,P2}, S2..S4 on P3: period max(14/2, 10) = 10.
        let pipe = section2_pipeline();
        let plat = Platform::homogeneous(3, 1);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0, 1]), Mode::Replicated),
            Assignment::interval(1, 3, procs(&[2]), Mode::Replicated),
        ]);
        assert_eq!(pipeline_period(&pipe, &plat, &m).unwrap(), Rat::int(10));
        assert_eq!(pipeline_latency(&pipe, &plat, &m).unwrap(), Rat::int(24));
    }

    #[test]
    fn section2_two_replicated_intervals_four_procs() {
        // S1 on {P1,P2}, S2..S4 on {P3,P4}: period max(7, 5) = 7.
        let pipe = section2_pipeline();
        let plat = Platform::homogeneous(4, 1);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0, 1]), Mode::Replicated),
            Assignment::interval(1, 3, procs(&[2, 3]), Mode::Replicated),
        ]);
        assert_eq!(pipeline_period(&pipe, &plat, &m).unwrap(), Rat::int(7));
    }

    #[test]
    fn section2_data_parallel_s1() {
        // S1 data-parallel on {P1,P2}, S2..S4 on P3: latency 7 + 10 = 17,
        // period max(7, 10) = 10.
        let pipe = section2_pipeline();
        let plat = Platform::homogeneous(3, 1);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
            Assignment::interval(1, 3, procs(&[2]), Mode::Replicated),
        ]);
        assert_eq!(pipeline_latency(&pipe, &plat, &m).unwrap(), Rat::int(17));
        assert_eq!(pipeline_period(&pipe, &plat, &m).unwrap(), Rat::int(10));
    }

    #[test]
    fn section2_heterogeneous_replicate_all() {
        // Speeds (2,2,1,1); replicating everything on all four processors
        // gives period 24/(4·1) = 6 (slowest-speed rule) and latency 24.
        let pipe = section2_pipeline();
        let plat = Platform::heterogeneous(vec![2, 2, 1, 1]);
        let m = Mapping::whole(4, procs(&[0, 1, 2, 3]), Mode::Replicated);
        assert_eq!(pipeline_period(&pipe, &plat, &m).unwrap(), Rat::int(6));
        assert_eq!(pipeline_latency(&pipe, &plat, &m).unwrap(), Rat::int(24));
    }

    #[test]
    fn section2_heterogeneous_optimal_period() {
        // S1 data-parallel on {P1,P2}; S2..S4 replicated on {P3,P4}:
        // period max(14/4, 10/2) = 5 — the optimum; latency 3.5 + 10 = 13.5.
        let pipe = section2_pipeline();
        let plat = Platform::heterogeneous(vec![2, 2, 1, 1]);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
            Assignment::interval(1, 3, procs(&[2, 3]), Mode::Replicated),
        ]);
        assert_eq!(pipeline_period(&pipe, &plat, &m).unwrap(), Rat::int(5));
        assert_eq!(
            pipeline_latency(&pipe, &plat, &m).unwrap(),
            Rat::new(27, 2) // 13.5
        );
    }

    #[test]
    fn section2_heterogeneous_optimal_latency() {
        // S1 data-parallel on {P1,P2,P3}, S2..S4 on P4:
        // latency 14/5 + 10 = 12.8 — the optimum.
        let pipe = section2_pipeline();
        let plat = Platform::heterogeneous(vec![2, 2, 1, 1]);
        let m = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0, 1, 2]), Mode::DataParallel),
            Assignment::interval(1, 3, procs(&[3]), Mode::Replicated),
        ]);
        assert_eq!(
            pipeline_latency(&pipe, &plat, &m).unwrap(),
            Rat::new(64, 5) // 12.8
        );
    }

    #[test]
    fn fork_period_replicate_all() {
        // Theorem 10: replicate the whole fork on all processors.
        let fork = Fork::new(3, vec![1, 2, 3]);
        let plat = Platform::homogeneous(3, 2);
        let m = Mapping::whole(4, procs(&[0, 1, 2]), Mode::Replicated);
        // total work 9, p·s = 6 -> period 3/2
        assert_eq!(fork_period(&fork, &plat, &m).unwrap(), Rat::new(3, 2));
    }

    #[test]
    fn fork_latency_flexible_model() {
        // Root w0=1 with leaf {1} on P1; leaves {2,3} on P2; speed 1.
        // t_max(1) = (1 + 1)/1 = 2; other group starts at w0/s0 = 1 and
        // takes (2+3)/1 = 5 -> latency = max(2, 1 + 5) = 6.
        let fork = Fork::new(1, vec![1, 2, 3]);
        let plat = Platform::homogeneous(2, 1);
        let m = Mapping::new(vec![
            Assignment::new(vec![0, 1], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![2, 3], procs(&[1]), Mode::Replicated),
        ]);
        assert_eq!(fork_latency(&fork, &plat, &m).unwrap(), Rat::int(6));
    }

    #[test]
    fn fork_latency_data_parallel_root() {
        // Root alone data-parallel on {P1,P2} (speeds 2,2): s0 = 4, so the
        // leaves start at 8/4 = 2; leaf group {1,2} on P3 (speed 1) takes 6.
        let fork = Fork::new(8, vec![2, 4]);
        let plat = Platform::heterogeneous(vec![2, 2, 1]);
        let m = Mapping::new(vec![
            Assignment::new(vec![0], procs(&[0, 1]), Mode::DataParallel),
            Assignment::new(vec![1, 2], procs(&[2]), Mode::Replicated),
        ]);
        assert_eq!(fork_latency(&fork, &plat, &m).unwrap(), Rat::int(8));
        // t_max(1) = 2 alone; the max comes from 2 + 6.
    }

    #[test]
    fn fork_latency_replicated_root_uses_min_speed() {
        // Root group replicated on {fast, slow}: s0 = min = 1, so leaves
        // wait w0/1 even though a fast processor participates.
        let fork = Fork::new(6, vec![3]);
        let plat = Platform::heterogeneous(vec![4, 1, 1]);
        let m = Mapping::new(vec![
            Assignment::new(vec![0], procs(&[0, 1]), Mode::Replicated),
            Assignment::new(vec![1], procs(&[2]), Mode::Replicated),
        ]);
        // root done at 6/1 = 6; leaf takes 3 -> latency 9; t_max(1) = 6.
        assert_eq!(fork_latency(&fork, &plat, &m).unwrap(), Rat::int(9));
    }

    #[test]
    fn fork_latency_root_only_mapping() {
        let fork = Fork::new(5, vec![]);
        let plat = Platform::homogeneous(2, 1);
        let m = Mapping::new(vec![Assignment::new(
            vec![0],
            procs(&[0, 1]),
            Mode::Replicated,
        )]);
        assert_eq!(fork_latency(&fork, &plat, &m).unwrap(), Rat::int(5));
    }

    #[test]
    fn forkjoin_latency_and_period() {
        // root 1, leaves [2, 2], join 3, two unit processors.
        // Groups: {root, leaf1} on P1, {leaf2, join} on P2.
        let fj = ForkJoin::new(1, vec![2, 2], 3);
        let plat = Platform::homogeneous(2, 1);
        let m = Mapping::new(vec![
            Assignment::new(vec![0, 1], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![2, 3], procs(&[1]), Mode::Replicated),
        ]);
        // Non-join work: group1 = 3, group2 = 2. AllLeavesDone =
        // max(3, 1 + 2) = 3. Join adds 3/1 -> latency 6.
        assert_eq!(forkjoin_latency(&fj, &plat, &m).unwrap(), Rat::int(6));
        // Period: max(3/1, 5/1) = 5.
        assert_eq!(forkjoin_period(&fj, &plat, &m).unwrap(), Rat::int(5));
    }

    #[test]
    fn forkjoin_data_parallel_join() {
        // Join alone data-parallel on two unit processors halves its time.
        let fj = ForkJoin::new(2, vec![4], 6);
        let plat = Platform::homogeneous(3, 1);
        let m = Mapping::new(vec![
            Assignment::new(vec![0, 1], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![2], procs(&[1, 2]), Mode::DataParallel),
        ]);
        // AllLeavesDone = max((2+4)/1, 2 + 0) = 6; join 6/2 = 3 -> 9.
        assert_eq!(forkjoin_latency(&fj, &plat, &m).unwrap(), Rat::int(9));
    }

    #[test]
    fn invalid_mapping_is_an_error() {
        let pipe = Pipeline::new(vec![1, 2]);
        let plat = Platform::homogeneous(1, 1);
        let m = Mapping::new(vec![Assignment::interval(
            0,
            0,
            procs(&[0]),
            Mode::Replicated,
        )]);
        assert!(pipeline_period(&pipe, &plat, &m).is_err());
    }

    #[test]
    fn replication_never_changes_pipeline_latency() {
        // Lemma 2 flavor: replicating on a homogeneous platform leaves the
        // latency at total_work / s regardless of grouping.
        let pipe = Pipeline::new(vec![3, 5, 7]);
        let plat = Platform::homogeneous(3, 2);
        for m in [
            Mapping::whole(3, procs(&[0, 1, 2]), Mode::Replicated),
            Mapping::new(vec![
                Assignment::interval(0, 1, procs(&[0, 1]), Mode::Replicated),
                Assignment::interval(2, 2, procs(&[2]), Mode::Replicated),
            ]),
            Mapping::new(vec![
                Assignment::interval(0, 0, procs(&[0]), Mode::Replicated),
                Assignment::interval(1, 1, procs(&[1]), Mode::Replicated),
                Assignment::interval(2, 2, procs(&[2]), Mode::Replicated),
            ]),
        ] {
            assert_eq!(pipeline_latency(&pipe, &plat, &m).unwrap(), Rat::new(15, 2));
        }
    }
}
