//! The general model of Sections 3.2–3.3 evaluated over **arbitrary
//! legal mappings** (replicated and data-parallel groups), not just the
//! one-processor-per-interval allocations of [`crate::comm`].
//!
//! The paper gives closed formulas only for single-processor interval
//! mappings (formulas (1)–(2)); this module extends them to the full
//! mapping space of Section 3.4, in the spirit of the follow-up
//! multi-criteria pipeline work (Benoit, Rehn-Sonigo & Robert 2007/2008):
//!
//! * a transfer between two *groups* is billed at the worst (slowest)
//!   link between any processor pair of the two groups — the value every
//!   round-robin residue combination is guaranteed to meet;
//! * a **replicated** group on `k` processors processes every `k`-th data
//!   set, so its *period* contribution — input transfer, computation and
//!   output transfer alike — is amortized by `k`:
//!   `(δ_in/b + W/min s + δ_out/b) / k`. Its *delay* contribution is the
//!   full, unamortized sum (one data set traverses one replica);
//! * a **data-parallel** group serves every data set with all its
//!   processors, so neither its period nor its delay is amortized
//!   (`δ_in/b + W/Σs + δ_out/b`);
//! * fork sends of `δ_0` follow the requested [`CommModel`] (serialized
//!   in group order under one-port, concurrent under bounded
//!   multi-port) and the requested [`StartRule`] (strict sends wait for
//!   the root group's whole computation, flexible sends start when `S0`
//!   completes);
//! * fork-join leaf outputs are shipped to the *join group* (free when
//!   leaf and join share a group) instead of `P_out`.
//!
//! Two exact degeneracies anchor the extension:
//!
//! 1. on single-processor interval mappings the pipeline evaluators equal
//!    the paper-verbatim formulas of [`crate::comm`];
//! 2. with all-zero data sizes or the [`Network::infinite`] network (and
//!    [`StartRule::Flexible`] for forks), every evaluator equals its
//!    simplified-model counterpart in [`crate::cost`] — tested here and
//!    property-tested in `tests/properties.rs`.

use crate::comm::{CommModel, Endpoint, Network, StartRule};
use crate::cost::group_delay;
use crate::error::Error;
use crate::mapping::{Assignment, Mapping, Mode};
use crate::platform::{Platform, ProcId};
use crate::rational::Rat;
use crate::workflow::{Fork, ForkJoin, Pipeline};

/// One end of a group-to-group transfer.
#[derive(Clone, Copy)]
enum End<'a> {
    In,
    Out,
    Group(&'a [ProcId]),
}

/// Worst-link transfer time of `size` bytes between two processor
/// groups (the value every round-robin residue combination is
/// guaranteed to meet — the billing rule of this whole module). Public
/// for the branch-and-bound search in `repliflow-exact`, which prices
/// partial mappings with the same rule.
pub fn group_transfer(network: &Network, size: u64, from: &[ProcId], to: &[ProcId]) -> Rat {
    transfer(network, size, End::Group(from), End::Group(to))
}

/// Worst-link transfer time of `size` bytes from `P_in` into a group.
pub fn input_transfer(network: &Network, size: u64, to: &[ProcId]) -> Rat {
    transfer(network, size, End::In, End::Group(to))
}

/// Worst-link transfer time of `size` bytes from a group to `P_out`.
pub fn output_transfer(network: &Network, size: u64, from: &[ProcId]) -> Rat {
    transfer(network, size, End::Group(from), End::Out)
}

/// The bounded multi-port `volume / node_capacity` lower bound on a
/// sender's total outgoing volume (zero when the network is unbounded
/// or free). Public for the same reason as [`group_transfer`].
pub fn multiport_capacity_bound(network: &Network, volume: u64) -> Rat {
    capacity_bound(network, volume)
}

fn check_network(network: &Network, platform: &Platform) -> Result<(), Error> {
    if network.n_procs() != platform.n_procs() {
        return Err(Error::NetworkSize {
            expected: platform.n_procs(),
            got: network.n_procs(),
        });
    }
    Ok(())
}

/// Worst-case time to ship `size` bytes between two group ends: the
/// maximum pairwise transfer time (groups are processor-disjoint, so no
/// pair is ever a free same-processor transfer unless the ends coincide).
fn transfer(network: &Network, size: u64, from: End<'_>, to: End<'_>) -> Rat {
    if size == 0 {
        return Rat::ZERO;
    }
    let worst = |pairs: &mut dyn Iterator<Item = (Endpoint, Endpoint)>| {
        pairs
            .map(|(u, v)| network.transfer_time(size, u, v))
            .fold(Rat::ZERO, Rat::max)
    };
    match (from, to) {
        (End::Group(gu), End::Group(gv)) => worst(&mut gu.iter().flat_map(|&u| {
            gv.iter()
                .map(move |&v| (Endpoint::Proc(u), Endpoint::Proc(v)))
        })),
        (End::Group(gu), End::Out) => {
            worst(&mut gu.iter().map(|&u| (Endpoint::Proc(u), Endpoint::Out)))
        }
        (End::In, End::Group(gv)) => {
            worst(&mut gv.iter().map(|&v| (Endpoint::In, Endpoint::Proc(v))))
        }
        // no evaluation ships data into In, out of Out, or In -> Out
        _ => Rat::ZERO,
    }
}

/// The bounded multi-port node-capacity lower bound: `volume / capacity`
/// for the sender's total outgoing volume, zero when unbounded, empty or
/// on the free [`Network::infinite`] network.
fn capacity_bound(network: &Network, volume: u64) -> Rat {
    network
        .node_capacity()
        .filter(|_| volume > 0 && !network.is_infinite())
        .map(|cap| Rat::ratio(volume, cap))
        .unwrap_or(Rat::ZERO)
}

/// Divides a group's busy time by its replication factor for the period
/// contribution (round-robin amortization); data-parallel groups serve
/// every data set, so nothing is amortized.
fn amortize(total: Rat, assignment: &Assignment) -> Rat {
    match assignment.mode {
        Mode::Replicated => total / Rat::int(assignment.n_procs() as i128),
        Mode::DataParallel => total,
    }
}

/// Pipeline groups in stage order (a validated pipeline mapping's groups
/// are disjoint intervals, so ordering by first stage is total).
fn ordered_groups(mapping: &Mapping) -> Vec<&Assignment> {
    let mut groups: Vec<&Assignment> = mapping.assignments().iter().collect();
    groups.sort_by_key(|a| a.stages()[0]);
    groups
}

/// Per-group (input transfer, computation delay, output transfer) of a
/// pipeline mapping under the general model.
fn pipeline_terms(
    pipeline: &Pipeline,
    platform: &Platform,
    network: &Network,
    groups: &[&Assignment],
) -> Vec<(Rat, Rat, Rat)> {
    let m = groups.len();
    (0..m)
        .map(|j| {
            let a = groups[j];
            let lo = a.stages()[0];
            let hi = *a.stages().last().unwrap();
            let pred = if j == 0 {
                End::In
            } else {
                End::Group(groups[j - 1].procs())
            };
            let succ = if j + 1 == m {
                End::Out
            } else {
                End::Group(groups[j + 1].procs())
            };
            let me = End::Group(a.procs());
            let recv = transfer(network, pipeline.data_size(lo), pred, me);
            let send = transfer(network, pipeline.data_size(hi + 1), me, succ);
            let compute = group_delay(a.work(|s| pipeline.weight(s)), a, platform);
            (recv, compute, send)
        })
        .collect()
}

/// Period of a pipeline mapping under the general model: the maximum
/// per-group amortized busy time (extends formula (1) to replicated and
/// data-parallel groups).
pub fn pipeline_period(
    pipeline: &Pipeline,
    platform: &Platform,
    network: &Network,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    pipeline_objectives(pipeline, platform, network, mapping).map(|(period, _)| period)
}

/// Latency of a pipeline mapping under the general model: the sum of
/// unamortized per-group traversal times (extends formula (2)).
pub fn pipeline_latency(
    pipeline: &Pipeline,
    platform: &Platform,
    network: &Network,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    pipeline_objectives(pipeline, platform, network, mapping).map(|(_, latency)| latency)
}

/// Both objectives of a pipeline mapping in one pass — validation,
/// group ordering and the per-group transfer/compute terms are computed
/// once. This is the hot path of comm-aware enumeration and search;
/// prefer it whenever both values are needed.
pub fn pipeline_objectives(
    pipeline: &Pipeline,
    platform: &Platform,
    network: &Network,
    mapping: &Mapping,
) -> Result<(Rat, Rat), Error> {
    check_network(network, platform)?;
    mapping.validate_pipeline(pipeline, platform, true)?;
    let groups = ordered_groups(mapping);
    let mut period = Rat::ZERO;
    let mut latency = Rat::ZERO;
    for (&(recv, compute, send), a) in pipeline_terms(pipeline, platform, network, &groups)
        .iter()
        .zip(&groups)
    {
        let traversal = recv + compute + send;
        period = period.max(amortize(traversal, a));
        latency += traversal;
    }
    Ok((period, latency))
}

/// The open (last) group of a [`PipelinePrefix`]: its output-transfer
/// term is still unknown because the successor group has not been
/// chosen yet.
#[derive(Clone, Debug)]
pub struct PendingGroup {
    /// Shared slice so prefix extension is a reference-count bump, not
    /// a copy — the branch-and-bound search interns one slice per
    /// processor set and pushes millions of groups from it.
    procs: std::rc::Rc<[ProcId]>,
    mode: Mode,
    /// Input transfer + computation delay of the group — everything
    /// except the send to the (future) successor.
    busy: Rat,
}

impl PendingGroup {
    /// Processors of the open group (in the order the caller passed to
    /// [`PipelinePrefix::push_group`]; all evaluators are
    /// order-insensitive).
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// Execution mode of the open group.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Input transfer + computation delay accumulated so far (the send
    /// term is still missing).
    pub fn busy(&self) -> Rat {
        self.busy
    }

    /// Amortizes a completed traversal of this group for the period
    /// (round-robin replication divides by `k`; data-parallel does not).
    pub fn amortized(&self, traversal: Rat) -> Rat {
        match self.mode {
            Mode::Replicated => traversal / Rat::int(self.procs.len() as i128),
            Mode::DataParallel => traversal,
        }
    }
}

/// A pipeline mapping prefix evaluated **incrementally** under the
/// general model: stages `0 .. next_stage` are covered by a sequence of
/// groups, all of whose cost terms are final except the last group's
/// send (which depends on the yet-unchosen successor).
///
/// Extending a prefix with [`PipelinePrefix::push_group`] finalizes the
/// previous group's send term and opens the new group — so a
/// branch-and-bound search pays `O(|prev procs| · |new procs|)` per
/// extension instead of re-evaluating the whole partial mapping from
/// scratch. [`PipelinePrefix::finish`] closes the last group with its
/// transfer to `P_out`; on a complete prefix its result equals
/// [`pipeline_objectives`] exactly (tested below).
#[derive(Clone, Debug, Default)]
pub struct PipelinePrefix {
    next_stage: usize,
    /// Max over *closed* groups of their amortized traversal.
    period_closed: Rat,
    /// Sum over *closed* groups of their traversal.
    latency_closed: Rat,
    pending: Option<PendingGroup>,
}

impl PipelinePrefix {
    /// The empty prefix (no stage covered, no group open).
    pub fn empty() -> Self {
        PipelinePrefix::default()
    }

    /// First stage not yet covered by the prefix.
    pub fn next_stage(&self) -> usize {
        self.next_stage
    }

    /// Max amortized traversal over the groups whose terms are final.
    pub fn period_closed(&self) -> Rat {
        self.period_closed
    }

    /// Sum of traversals over the groups whose terms are final.
    pub fn latency_closed(&self) -> Rat {
        self.latency_closed
    }

    /// The open group, if any (none only on the empty prefix).
    pub fn pending(&self) -> Option<&PendingGroup> {
        self.pending.as_ref()
    }

    /// Extends the prefix with the group `stages [next_stage ..= hi]` on
    /// `procs` in `mode`: bills the handoff transfer
    /// `δ_{next_stage} / worst link` on **both** the closing group's
    /// send and the new group's receive (the general model's rule), then
    /// opens the new group with its receive + compute terms.
    pub fn push_group(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        network: &Network,
        hi: usize,
        procs: std::rc::Rc<[ProcId]>,
        mode: Mode,
    ) -> PipelinePrefix {
        let lo = self.next_stage;
        debug_assert!(lo <= hi && hi < pipeline.n_stages());
        let handoff = match &self.pending {
            Some(open) => group_transfer(network, pipeline.data_size(lo), &open.procs, &procs),
            None => input_transfer(network, pipeline.data_size(lo), &procs),
        };
        let (period_closed, latency_closed) = match &self.pending {
            Some(open) => {
                let traversal = open.busy + handoff;
                (
                    self.period_closed.max(open.amortized(traversal)),
                    self.latency_closed + traversal,
                )
            }
            None => (self.period_closed, self.latency_closed),
        };
        let work: u64 = (lo..=hi).map(|s| pipeline.weight(s)).sum();
        let compute = match mode {
            Mode::Replicated => Rat::ratio(work, platform.subset_min_speed(&procs)),
            Mode::DataParallel => Rat::ratio(work, platform.subset_speed(&procs)),
        };
        PipelinePrefix {
            next_stage: hi + 1,
            period_closed,
            latency_closed,
            pending: Some(PendingGroup {
                procs,
                mode,
                busy: handoff + compute,
            }),
        }
    }

    /// Closes a complete prefix (`next_stage == n`) with the last
    /// group's transfer to `P_out` and returns `(period, latency)` —
    /// equal to [`pipeline_objectives`] of the same mapping.
    pub fn finish(&self, pipeline: &Pipeline, network: &Network) -> (Rat, Rat) {
        assert_eq!(self.next_stage, pipeline.n_stages(), "prefix is incomplete");
        let open = self.pending.as_ref().expect("complete prefix has a group");
        let send = output_transfer(
            network,
            pipeline.data_size(pipeline.n_stages()),
            &open.procs,
        );
        let traversal = open.busy + send;
        (
            self.period_closed.max(open.amortized(traversal)),
            self.latency_closed + traversal,
        )
    }

    /// An **admissible lower bound** on the open group's still-unknown
    /// send term, given the processors the successor group could use:
    /// the successor is some non-empty subset of `avail`, and the
    /// worst-link billing makes its receive time at least
    /// `δ / bw(u, v)` for every `u` in the open group and any chosen
    /// `v` — so the cheapest possible successor is the single `v`
    /// maximizing the slowest link from the open group, and no legal
    /// completion can pay less. Returns the exact `P_out` transfer when
    /// the prefix is complete, and zero on an empty prefix or when no
    /// processor remains.
    pub fn pending_send_lower_bound(
        &self,
        pipeline: &Pipeline,
        network: &Network,
        avail: &[ProcId],
    ) -> Rat {
        let Some(open) = &self.pending else {
            return Rat::ZERO;
        };
        if self.next_stage == pipeline.n_stages() {
            return output_transfer(
                network,
                pipeline.data_size(pipeline.n_stages()),
                &open.procs,
            );
        }
        avail
            .iter()
            .map(|&v| {
                group_transfer(
                    network,
                    pipeline.data_size(self.next_stage),
                    &open.procs,
                    &[v],
                )
            })
            .min()
            .unwrap_or(Rat::ZERO)
    }
}

/// The root-first group order used for fork evaluation: ascending first
/// stage, which puts the group holding stage 0 first — the deterministic
/// "group order" in which one-port sends are serialized.
fn fork_groups(mapping: &Mapping) -> Vec<&Assignment> {
    let groups = ordered_groups(mapping);
    debug_assert!(groups[0].contains_stage(0));
    groups
}

/// The speed at which the root stage is processed by its group (`Σ s` if
/// data-parallel, `min s` if replicated — Section 3.4).
fn root_speed(assignment: &Assignment, platform: &Platform) -> u64 {
    match assignment.mode {
        Mode::DataParallel => platform.subset_speed(assignment.procs()),
        Mode::Replicated => platform.subset_min_speed(assignment.procs()),
    }
}

/// When each non-root group receives `δ_0`, given the send start time:
/// serialized in group order under one-port, concurrent (with the node
/// capacity bound) under bounded multi-port. `wants[g]` marks groups that
/// actually receive the broadcast. Entry 0 (the root group) stays at
/// `send_start`.
fn broadcast_arrivals(
    network: &Network,
    comm: CommModel,
    broadcast_size: u64,
    groups: &[&Assignment],
    wants: &[bool],
    send_start: Rat,
) -> Vec<Rat> {
    let root = End::Group(groups[0].procs());
    let mut recv_at = vec![send_start; groups.len()];
    let receivers = wants.iter().skip(1).filter(|&&w| w).count() as u64;
    match comm {
        CommModel::OnePort => {
            let mut t = send_start;
            for g in 1..groups.len() {
                if !wants[g] {
                    continue;
                }
                t += transfer(network, broadcast_size, root, End::Group(groups[g].procs()));
                recv_at[g] = t;
            }
        }
        CommModel::BoundedMultiPort => {
            let volume = broadcast_size * receivers;
            let bound = capacity_bound(network, volume);
            for g in 1..groups.len() {
                if !wants[g] {
                    continue;
                }
                let link = transfer(network, broadcast_size, root, End::Group(groups[g].procs()));
                recv_at[g] = send_start + link.max(bound);
            }
        }
    }
    recv_at
}

/// Completion time of every fork group under the general model over an
/// arbitrary legal mapping; the latency is the maximum entry. Leaf
/// outputs ship to `out` (`P_out` for plain forks, the join group for
/// fork-joins — free when the leaf shares the join's group).
#[allow(clippy::too_many_arguments)] // internal plumbing shared by fork and fork-join
fn fork_completions(
    fork: &Fork,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    start: StartRule,
    groups: &[&Assignment],
    work_of: &dyn Fn(&Assignment) -> u64,
    out_of: &dyn Fn(usize, &Assignment) -> Rat,
) -> Vec<Rat> {
    let root_group = groups[0];
    let recv_input = transfer(
        network,
        fork.input_size(),
        End::In,
        End::Group(root_group.procs()),
    );
    let root_stage_done =
        recv_input + Rat::ratio(fork.root_weight(), root_speed(root_group, platform));
    let root_all_done = recv_input + group_delay(work_of(root_group), root_group, platform);
    let send_start = match start {
        StartRule::Flexible => root_stage_done,
        StartRule::Strict => root_all_done,
    };
    // groups holding at least one leaf stage need δ0
    let wants: Vec<bool> = groups
        .iter()
        .map(|a| a.stages().iter().any(|&s| s >= 1 && s <= fork.n_leaves()))
        .collect();
    let recv_at = broadcast_arrivals(
        network,
        comm,
        fork.broadcast_size(),
        groups,
        &wants,
        send_start,
    );

    groups
        .iter()
        .enumerate()
        .map(|(g, a)| {
            let compute_done = if g == 0 {
                root_all_done
            } else {
                recv_at[g] + group_delay(work_of(a), a, platform)
            };
            let outputs: Rat = a
                .stages()
                .iter()
                .filter(|&&s| s >= 1 && s <= fork.n_leaves())
                .map(|&s| out_of(s, a))
                .sum();
            compute_done + outputs
        })
        .collect()
}

/// Latency of a fork mapping under the general model.
pub fn fork_latency(
    fork: &Fork,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    start: StartRule,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    fork_objectives(fork, platform, network, comm, start, mapping).map(|(_, latency)| latency)
}

/// Period of a fork mapping under the general model: the maximum
/// per-group amortized busy time (receive + compute + sends per data
/// set; the root group additionally broadcasts `δ_0` each period).
pub fn fork_period(
    fork: &Fork,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    fork_objectives(fork, platform, network, comm, StartRule::Flexible, mapping)
        .map(|(period, _)| period)
}

/// Both objectives of a fork mapping in one pass — validation and group
/// ordering are shared between the period and latency computations.
pub fn fork_objectives(
    fork: &Fork,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    start: StartRule,
    mapping: &Mapping,
) -> Result<(Rat, Rat), Error> {
    check_network(network, platform)?;
    mapping.validate_fork(fork, platform, true)?;
    let groups = fork_groups(mapping);
    let out_of = |s: usize, a: &Assignment| {
        transfer(
            network,
            fork.output_size(s),
            End::Group(a.procs()),
            End::Out,
        )
    };
    let work_of = |a: &Assignment| a.work(|s| fork.weight(s));
    let period = fork_period_of(fork, platform, network, comm, &groups, &work_of, &out_of);
    let completions = fork_completions(
        fork, platform, network, comm, start, &groups, &work_of, &out_of,
    );
    let latency = completions.into_iter().fold(Rat::ZERO, Rat::max);
    Ok((period, latency))
}

/// Shared fork/fork-join period core over caller-supplied per-group
/// work and per-leaf output functions.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by fork and fork-join
fn fork_period_of(
    fork: &Fork,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    groups: &[&Assignment],
    work_of: &dyn Fn(&Assignment) -> u64,
    out_of: &dyn Fn(usize, &Assignment) -> Rat,
) -> Rat {
    let root = End::Group(groups[0].procs());
    let has_leaves = |a: &Assignment| a.stages().iter().any(|&s| s >= 1 && s <= fork.n_leaves());
    let receivers: Vec<&&Assignment> = groups.iter().skip(1).filter(|a| has_leaves(a)).collect();
    let mut period = Rat::ZERO;
    for (g, a) in groups.iter().enumerate() {
        let me = End::Group(a.procs());
        let recv = if g == 0 {
            transfer(network, fork.input_size(), End::In, me)
        } else if has_leaves(a) {
            transfer(network, fork.broadcast_size(), root, me)
        } else {
            Rat::ZERO
        };
        let compute = group_delay(work_of(a), a, platform);
        let outputs: Rat = a
            .stages()
            .iter()
            .filter(|&&s| s >= 1 && s <= fork.n_leaves())
            .map(|&s| out_of(s, a))
            .sum();
        // the root group additionally sends δ0 to every leaf group
        let broadcasts = if g == 0 && !receivers.is_empty() {
            let links = receivers
                .iter()
                .map(|b| transfer(network, fork.broadcast_size(), root, End::Group(b.procs())));
            match comm {
                CommModel::OnePort => links.sum(),
                CommModel::BoundedMultiPort => {
                    let volume = fork.broadcast_size() * receivers.len() as u64;
                    let cap = capacity_bound(network, volume);
                    links.fold(Rat::ZERO, Rat::max).max(cap)
                }
            }
        } else {
            Rat::ZERO
        };
        let busy = recv + compute + outputs + broadcasts;
        period = period.max(amortize(busy, a));
    }
    period
}

/// Latency of a fork-join mapping under the general model: the fork part
/// ships leaf outputs to the join group (free within it), then the join
/// stage runs at its group's speed.
pub fn forkjoin_latency(
    forkjoin: &ForkJoin,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    start: StartRule,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    forkjoin_objectives(forkjoin, platform, network, comm, start, mapping)
        .map(|(_, latency)| latency)
}

/// Period of a fork-join mapping under the general model: fork-style
/// group terms with leaf outputs billed on the sender toward the join
/// group's link (free within the join group).
pub fn forkjoin_period(
    forkjoin: &ForkJoin,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    mapping: &Mapping,
) -> Result<Rat, Error> {
    forkjoin_objectives(
        forkjoin,
        platform,
        network,
        comm,
        StartRule::Flexible,
        mapping,
    )
    .map(|(period, _)| period)
}

/// Both objectives of a fork-join mapping in one pass — validation,
/// group ordering and the join-link transfer closures are shared.
pub fn forkjoin_objectives(
    forkjoin: &ForkJoin,
    platform: &Platform,
    network: &Network,
    comm: CommModel,
    start: StartRule,
    mapping: &Mapping,
) -> Result<(Rat, Rat), Error> {
    check_network(network, platform)?;
    mapping.validate_forkjoin(forkjoin, platform, true)?;
    let fork = forkjoin.fork();
    let join = forkjoin.join_stage();
    let groups = fork_groups(mapping);
    let join_group = mapping
        .assignment_of(join)
        .expect("validated mapping has a join group");
    // leaf outputs ship to the join group; free when produced inside it
    let out_of = |s: usize, a: &Assignment| {
        if std::ptr::eq(a, join_group) {
            Rat::ZERO
        } else {
            transfer(
                network,
                fork.output_size(s),
                End::Group(a.procs()),
                End::Group(join_group.procs()),
            )
        }
    };

    // Period: full group work; leaf -> join transfers are billed on the
    // sender's port only, matching the model's convention everywhere
    // else (one-port serializes *sends*; receivers — P_out in the fork
    // case, the join group here — are unconstrained).
    let period = fork_period_of(
        fork,
        platform,
        network,
        comm,
        &groups,
        &|a| a.work(|s| forkjoin.weight(s)),
        &out_of,
    );

    // Latency: fork part over the non-join work, then the join stage.
    let completions = fork_completions(
        fork,
        platform,
        network,
        comm,
        start,
        &groups,
        &|a| {
            a.stages()
                .iter()
                .filter(|&&s| s != join)
                .map(|&s| forkjoin.weight(s))
                .sum()
        },
        &out_of,
    );
    let all_leaves_done = completions.into_iter().fold(Rat::ZERO, Rat::max);
    let s_join = root_speed(join_group, platform);
    let latency = all_leaves_done + Rat::ratio(forkjoin.join_weight(), s_join);
    Ok((period, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{
        fork_completion_with_comm, fork_period_with_comm, pipeline_latency_with_comm,
        pipeline_period_with_comm, ForkAlloc, IntervalAlloc,
    };
    use crate::cost;
    use crate::gen::Gen;

    fn procs(ids: &[usize]) -> Vec<ProcId> {
        ids.iter().map(|&u| ProcId(u)).collect()
    }

    #[test]
    fn matches_paper_formulas_on_single_proc_intervals() {
        // Same instance as comm.rs's `formula_one_and_two`.
        let pipe = Pipeline::with_data_sizes(vec![8, 3], vec![4, 2, 6]);
        let plat = Platform::heterogeneous(vec![2, 1]);
        let net = Network::uniform(2, 2);
        let mapping = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0]), Mode::Replicated),
            Assignment::interval(1, 1, procs(&[1]), Mode::Replicated),
        ]);
        let alloc = vec![
            IntervalAlloc {
                lo: 0,
                hi: 0,
                proc: ProcId(0),
            },
            IntervalAlloc {
                lo: 1,
                hi: 1,
                proc: ProcId(1),
            },
        ];
        assert_eq!(
            pipeline_period(&pipe, &plat, &net, &mapping).unwrap(),
            pipeline_period_with_comm(&pipe, &plat, &net, &alloc)
        );
        assert_eq!(
            pipeline_latency(&pipe, &plat, &net, &mapping).unwrap(),
            pipeline_latency_with_comm(&pipe, &plat, &net, &alloc)
        );
    }

    #[test]
    fn random_single_proc_intervals_match_paper_formulas() {
        let mut gen = Gen::new(0xC0);
        for _ in 0..40 {
            let n = gen.size(1, 6);
            let p = gen.size(1, 4);
            let weights = gen.positive_ints(n, 1, 9);
            let sizes = gen.positive_ints(n + 1, 0, 6);
            let pipe = Pipeline::with_data_sizes(weights, sizes);
            let plat = gen.het_platform(p, 1, 5);
            let net = Network::uniform(p, gen.int(1, 4));
            // random interval partition, distinct single processors
            let mut cuts: Vec<usize> = Vec::new();
            for s in 1..n {
                if gen.flip(0.4) && cuts.len() + 1 < p {
                    cuts.push(s);
                }
            }
            let mut lo = 0;
            let mut alloc = Vec::new();
            let mut assignments = Vec::new();
            for (next_proc, &c) in cuts.iter().chain(std::iter::once(&n)).enumerate() {
                alloc.push(IntervalAlloc {
                    lo,
                    hi: c - 1,
                    proc: ProcId(next_proc),
                });
                assignments.push(Assignment::interval(
                    lo,
                    c - 1,
                    vec![ProcId(next_proc)],
                    Mode::Replicated,
                ));
                lo = c;
            }
            let mapping = Mapping::new(assignments);
            assert_eq!(
                pipeline_period(&pipe, &plat, &net, &mapping).unwrap(),
                pipeline_period_with_comm(&pipe, &plat, &net, &alloc)
            );
            assert_eq!(
                pipeline_latency(&pipe, &plat, &net, &mapping).unwrap(),
                pipeline_latency_with_comm(&pipe, &plat, &net, &alloc)
            );
        }
    }

    #[test]
    fn fork_single_proc_groups_match_paper_formulas() {
        let fork = Fork::with_data_sizes(2, vec![2, 2], 6, 4, vec![2, 2]);
        let plat = Platform::homogeneous(3, 1);
        let net = Network::uniform(3, 2);
        let mapping = Mapping::new(vec![
            Assignment::new(vec![0], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![1], procs(&[1]), Mode::Replicated),
            Assignment::new(vec![2], procs(&[2]), Mode::Replicated),
        ]);
        let fa = ForkAlloc {
            groups: vec![vec![], vec![1], vec![2]],
            procs: procs(&[0, 1, 2]),
        };
        for comm in [CommModel::OnePort, CommModel::BoundedMultiPort] {
            assert_eq!(
                fork_period(&fork, &plat, &net, comm, &mapping).unwrap(),
                fork_period_with_comm(&fork, &plat, &net, &fa, comm)
            );
            for start in [StartRule::Flexible, StartRule::Strict] {
                let (_, latency) = fork_completion_with_comm(&fork, &plat, &net, &fa, comm, start);
                assert_eq!(
                    fork_latency(&fork, &plat, &net, comm, start, &mapping).unwrap(),
                    latency
                );
            }
        }
    }

    #[test]
    fn infinite_network_degenerates_to_simplified_model() {
        let pipe = Pipeline::with_data_sizes(vec![14, 4, 2, 4], vec![9, 9, 9, 9, 9]);
        let plat = Platform::heterogeneous(vec![2, 2, 1, 1]);
        let net = Network::infinite(4);
        let mapping = Mapping::new(vec![
            Assignment::interval(0, 0, procs(&[0, 1]), Mode::DataParallel),
            Assignment::interval(1, 3, procs(&[2, 3]), Mode::Replicated),
        ]);
        assert_eq!(
            pipeline_period(&pipe, &plat, &net, &mapping).unwrap(),
            cost::pipeline_period(&pipe, &plat, &mapping).unwrap()
        );
        assert_eq!(
            pipeline_latency(&pipe, &plat, &net, &mapping).unwrap(),
            cost::pipeline_latency(&pipe, &plat, &mapping).unwrap()
        );

        let fork = Fork::with_data_sizes(1, vec![1, 2, 3], 5, 7, vec![2, 4, 6]);
        let plat = Platform::homogeneous(2, 1);
        let net = Network::infinite(2);
        let mapping = Mapping::new(vec![
            Assignment::new(vec![0, 1], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![2, 3], procs(&[1]), Mode::Replicated),
        ]);
        for comm in [CommModel::OnePort, CommModel::BoundedMultiPort] {
            assert_eq!(
                fork_period(&fork, &plat, &net, comm, &mapping).unwrap(),
                cost::fork_period(&fork, &plat, &mapping).unwrap()
            );
            assert_eq!(
                fork_latency(&fork, &plat, &net, comm, StartRule::Flexible, &mapping).unwrap(),
                cost::fork_latency(&fork, &plat, &mapping).unwrap()
            );
        }
    }

    #[test]
    fn infinite_network_forkjoin_degenerates_too() {
        let fj = ForkJoin::new(1, vec![2, 2], 3);
        let plat = Platform::homogeneous(2, 1);
        let net = Network::infinite(2);
        let mapping = Mapping::new(vec![
            Assignment::new(vec![0, 1], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![2, 3], procs(&[1]), Mode::Replicated),
        ]);
        assert_eq!(
            forkjoin_latency(
                &fj,
                &plat,
                &net,
                CommModel::OnePort,
                StartRule::Flexible,
                &mapping
            )
            .unwrap(),
            cost::forkjoin_latency(&fj, &plat, &mapping).unwrap()
        );
        assert_eq!(
            forkjoin_period(&fj, &plat, &net, CommModel::OnePort, &mapping).unwrap(),
            cost::forkjoin_period(&fj, &plat, &mapping).unwrap()
        );
    }

    #[test]
    fn replication_amortizes_comm_in_the_period() {
        // One stage replicated on both processors: the round-robin rule
        // halves the per-period transfer load as well as the compute.
        let pipe = Pipeline::with_data_sizes(vec![8], vec![4, 4]);
        let plat = Platform::homogeneous(2, 1);
        let net = Network::uniform(2, 2);
        let mapping = Mapping::whole(1, procs(&[0, 1]), Mode::Replicated);
        // busy = 4/2 (in) + 8/1 + 4/2 (out) = 12; amortized by k=2 -> 6
        assert_eq!(
            pipeline_period(&pipe, &plat, &net, &mapping).unwrap(),
            Rat::int(6)
        );
        // latency is never amortized
        assert_eq!(
            pipeline_latency(&pipe, &plat, &net, &mapping).unwrap(),
            Rat::int(12)
        );
    }

    #[test]
    fn one_port_broadcast_serializes_multi_port_does_not() {
        let fork = Fork::with_data_sizes(2, vec![2, 2], 0, 4, vec![0, 0]);
        let plat = Platform::homogeneous(3, 1);
        let net = Network::uniform(3, 2);
        let mapping = Mapping::new(vec![
            Assignment::new(vec![0], procs(&[0]), Mode::Replicated),
            Assignment::new(vec![1], procs(&[1]), Mode::Replicated),
            Assignment::new(vec![2], procs(&[2]), Mode::Replicated),
        ]);
        let one = fork_latency(
            &fork,
            &plat,
            &net,
            CommModel::OnePort,
            StartRule::Flexible,
            &mapping,
        )
        .unwrap();
        let multi = fork_latency(
            &fork,
            &plat,
            &net,
            CommModel::BoundedMultiPort,
            StartRule::Flexible,
            &mapping,
        )
        .unwrap();
        assert_eq!(one, Rat::int(8));
        assert_eq!(multi, Rat::int(6));
        assert!(multi <= one);
    }

    #[test]
    fn prefix_evaluation_matches_whole_mapping_evaluation() {
        // Build random legal pipeline mappings, push them group by
        // group through PipelinePrefix and check finish() against
        // pipeline_objectives — the anchor that lets the
        // branch-and-bound trust its incremental accounting.
        let mut gen = Gen::new(0xBB01);
        for _ in 0..60 {
            let n = gen.size(1, 6);
            let p = gen.size(1, 5);
            let pipe = Pipeline::with_data_sizes(
                gen.positive_ints(n, 1, 9),
                gen.positive_ints(n + 1, 0, 7),
            );
            let plat = gen.het_platform(p, 1, 5);
            let net = if gen.flip(0.3) {
                Network::infinite(p)
            } else {
                Network::uniform(p, gen.int(1, 4))
            };
            // random interval partition over random disjoint proc sets
            let mut order: Vec<ProcId> = plat.procs().collect();
            for i in (1..order.len()).rev() {
                order.swap(i, gen.size(0, i));
            }
            let mut assignments = Vec::new();
            let mut prefix = PipelinePrefix::empty();
            let mut lo = 0;
            let mut taken = 0;
            while lo < n {
                let procs_left = p - taken;
                let hi = if procs_left == 1 {
                    n - 1
                } else {
                    gen.size(lo, n - 1)
                };
                let max_k = if hi + 1 < n {
                    procs_left - 1 // leave at least one proc for the rest
                } else {
                    procs_left
                };
                let k = gen.size(1, max_k.max(1));
                let procs: Vec<ProcId> = order[taken..taken + k].to_vec();
                taken += k;
                let mode = if lo == hi && k >= 2 && gen.flip(0.3) {
                    Mode::DataParallel
                } else {
                    Mode::Replicated
                };
                assignments.push(Assignment::interval(lo, hi, procs.clone(), mode));
                prefix = prefix.push_group(&pipe, &plat, &net, hi, procs.into(), mode);
                lo = hi + 1;
            }
            let mapping = Mapping::new(assignments);
            let (period, latency) = pipeline_objectives(&pipe, &plat, &net, &mapping).unwrap();
            assert_eq!(prefix.finish(&pipe, &net), (period, latency));
        }
    }

    #[test]
    fn pending_send_lower_bound_is_admissible() {
        // For every possible successor group the bound must not exceed
        // the actual handoff transfer.
        let mut gen = Gen::new(0xBB02);
        for _ in 0..40 {
            let p = gen.size(2, 5);
            let pipe =
                Pipeline::with_data_sizes(gen.positive_ints(2, 1, 5), gen.positive_ints(3, 0, 8));
            let plat = gen.het_platform(p, 1, 4);
            let net = gen.het_network(p, 1, 6);
            let first: Vec<ProcId> = vec![ProcId(0)];
            let prefix = PipelinePrefix::empty().push_group(
                &pipe,
                &plat,
                &net,
                0,
                first.into(),
                Mode::Replicated,
            );
            let avail: Vec<ProcId> = (1..p).map(ProcId).collect();
            let lb = prefix.pending_send_lower_bound(&pipe, &net, &avail);
            // every non-empty subset of avail is a possible successor
            for mask in 1u32..(1 << avail.len()) {
                let succ: Vec<ProcId> = avail
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &q)| q)
                    .collect();
                let actual = group_transfer(
                    &net,
                    pipe.data_size(1),
                    prefix.pending().unwrap().procs(),
                    &succ,
                );
                assert!(lb <= actual, "bound {lb} exceeds actual {actual}");
            }
        }
    }

    #[test]
    fn network_size_mismatch_is_an_error() {
        let pipe = Pipeline::new(vec![1, 2]);
        let plat = Platform::homogeneous(3, 1);
        let net = Network::uniform(2, 1);
        let mapping = Mapping::whole(2, procs(&[0, 1, 2]), Mode::Replicated);
        assert_eq!(
            pipeline_period(&pipe, &plat, &net, &mapping).unwrap_err(),
            Error::NetworkSize {
                expected: 3,
                got: 2
            }
        );
    }
}
