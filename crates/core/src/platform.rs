//! Target platforms: sets of processors with (possibly different) speeds.
//!
//! The paper's *Homogeneous platform* has `p` identical processors of speed
//! `s`; the *Heterogeneous platform* has per-processor speeds `s_u`. The time
//! for processor `P_u` to execute `X` floating-point operations is `X / s_u`
//! (Section 3.2). Communication capacities of the general model live in
//! [`crate::comm`]; the simplified model of Section 3.4 ignores them.

use crate::rational::Rat;
use serde::{Deserialize, Serialize};

/// Identifier of a processor: an index into [`Platform::speeds`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub usize);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0 + 1) // paper numbers processors from 1
    }
}

/// A set of `p` processors with integer speeds, optionally annotated
/// with per-processor failure probabilities (the reliability model of
/// Benoit/Rehn-Sonigo/Robert 2008 — see `crate::reliability`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Platform {
    speeds: Vec<u64>,
    /// Per-processor failure probabilities `f_u ∈ [0, 1)`, parallel to
    /// `speeds`. `None` means the platform is fail-free (every `f_u`
    /// zero) — the representation every pre-reliability instance uses,
    /// which is why the field is normalized: all-zero vectors collapse
    /// to `None` so serialization, equality and fingerprints cannot
    /// distinguish "no failure annotation" from "annotated fail-free".
    failure: Option<Vec<Rat>>,
}

// Hand-written (the vendored derive has no `#[serde(skip)]`-style
// support): a fail-free platform serializes exactly as it did before
// the reliability model existed — `{"speeds": [...]}` — so existing
// instance JSON, snapshots and fingerprints are untouched, and the
// `failure` field appears only when some probability is nonzero.
impl Serialize for Platform {
    fn serialize(&self) -> serde::Value {
        let mut fields = vec![(
            String::from("speeds"),
            serde::Serialize::serialize(&self.speeds),
        )];
        if let Some(failure) = &self.failure {
            fields.push((
                String::from("failure"),
                serde::Serialize::serialize(failure),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for Platform {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::de::Error> {
        let speeds: Vec<u64> = serde::Deserialize::deserialize(
            value
                .field("speeds")
                .ok_or_else(|| serde::de::Error::missing_field("speeds", "Platform"))?,
        )?;
        let failure: Option<Vec<Rat>> = match value.field("failure") {
            Some(v) => Some(serde::Deserialize::deserialize(v)?),
            None => None,
        };
        Platform::try_build(speeds, failure).map_err(serde::de::Error::custom)
    }
}

impl serde::DeserializeStream for Platform {
    fn deserialize_stream(
        parser: &mut serde::de::JsonParser<'_>,
    ) -> Result<Self, serde::de::Error> {
        let mut speeds: Option<Vec<u64>> = None;
        let mut failure: Option<Vec<Rat>> = None;
        parser.begin_object()?;
        let mut first = true;
        while let Some(key) = parser.object_next(first)? {
            first = false;
            match key.as_ref() {
                "speeds" => speeds = Some(serde::DeserializeStream::deserialize_stream(parser)?),
                "failure" => failure = Some(serde::DeserializeStream::deserialize_stream(parser)?),
                _ => parser.skip_value()?,
            }
        }
        let speeds = speeds.ok_or_else(|| serde::de::Error::missing_field("speeds", "Platform"))?;
        Platform::try_build(speeds, failure).map_err(serde::de::Error::custom)
    }
}

impl Platform {
    /// Heterogeneous platform with the given per-processor speeds.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or any speed is zero.
    pub fn heterogeneous(speeds: Vec<u64>) -> Self {
        assert!(
            !speeds.is_empty(),
            "a platform needs at least one processor"
        );
        assert!(
            speeds.iter().all(|&s| s > 0),
            "processor speeds must be positive"
        );
        Platform {
            speeds,
            failure: None,
        }
    }

    /// Fallible constructor shared by the deserializers: validates the
    /// speed and failure-probability invariants and applies the
    /// fail-free normalization instead of panicking on untrusted input.
    fn try_build(speeds: Vec<u64>, failure: Option<Vec<Rat>>) -> Result<Self, String> {
        if speeds.is_empty() {
            return Err("a platform needs at least one processor".into());
        }
        if speeds.contains(&0) {
            return Err("processor speeds must be positive".into());
        }
        let failure = match failure {
            None => None,
            Some(probs) => {
                if probs.len() != speeds.len() {
                    return Err(format!(
                        "failure probabilities cover {} processors but the platform has {}",
                        probs.len(),
                        speeds.len()
                    ));
                }
                if probs.iter().any(|&f| f < Rat::ZERO || f >= Rat::ONE) {
                    return Err("failure probabilities must lie in [0, 1)".into());
                }
                // normalize: an all-zero annotation IS the fail-free
                // platform, not a distinguishable sibling of it
                probs.iter().any(|&f| f != Rat::ZERO).then_some(probs)
            }
        };
        Ok(Platform { speeds, failure })
    }

    /// Annotates the platform with per-processor failure probabilities
    /// (builder style). An all-zero vector normalizes back to the
    /// fail-free representation.
    ///
    /// # Panics
    /// Panics if `probs` has a different length than the platform or
    /// any probability lies outside `[0, 1)`.
    pub fn with_failure_probs(self, probs: Vec<Rat>) -> Self {
        Platform::try_build(self.speeds, Some(probs)).expect("invalid failure probabilities")
    }

    /// Failure probability `f_u` of processor `u` ([`Rat::ZERO`] on a
    /// fail-free platform).
    #[inline]
    pub fn failure_prob(&self, proc: ProcId) -> Rat {
        match &self.failure {
            Some(probs) => probs[proc.0],
            None => Rat::ZERO,
        }
    }

    /// The failure-probability annotation, if any processor can fail.
    pub fn failure_probs(&self) -> Option<&[Rat]> {
        self.failure.as_deref()
    }

    /// Whether any processor has a nonzero failure probability.
    pub fn can_fail(&self) -> bool {
        self.failure.is_some()
    }

    /// Homogeneous platform: `p` processors of identical speed `s`.
    ///
    /// # Panics
    /// Panics if `p == 0` or `s == 0`.
    pub fn homogeneous(p: usize, s: u64) -> Self {
        assert!(p > 0, "a platform needs at least one processor");
        Platform::heterogeneous(vec![s; p])
    }

    /// Number of processors `p`.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.speeds.len()
    }

    /// Speed `s_u` of processor `u`.
    #[inline]
    pub fn speed(&self, proc: ProcId) -> u64 {
        self.speeds[proc.0]
    }

    /// All speeds, indexed by processor id.
    #[inline]
    pub fn speeds(&self) -> &[u64] {
        &self.speeds
    }

    /// All processor ids, `P_0 .. P_{p-1}`.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.speeds.len()).map(ProcId)
    }

    /// Aggregate speed `Σ s_u` of the whole platform.
    pub fn total_speed(&self) -> u64 {
        self.speeds.iter().sum()
    }

    /// Aggregate speed of a processor subset.
    pub fn subset_speed(&self, procs: &[ProcId]) -> u64 {
        procs.iter().map(|&q| self.speed(q)).sum()
    }

    /// Slowest speed in a processor subset.
    ///
    /// # Panics
    /// Panics if `procs` is empty.
    pub fn subset_min_speed(&self, procs: &[ProcId]) -> u64 {
        procs
            .iter()
            .map(|&q| self.speed(q))
            .min()
            .expect("empty processor subset")
    }

    /// The fastest processor (smallest id wins ties).
    pub fn fastest(&self) -> ProcId {
        let mut best = ProcId(0);
        for u in 1..self.speeds.len() {
            if self.speeds[u] > self.speeds[best.0] {
                best = ProcId(u);
            }
        }
        best
    }

    /// Processor ids sorted by **non-increasing** speed (fastest first);
    /// ties broken by id for determinism.
    pub fn by_speed_desc(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.procs().collect();
        ids.sort_by(|a, b| self.speed(*b).cmp(&self.speed(*a)).then(a.0.cmp(&b.0)));
        ids
    }

    /// Processor ids sorted by **non-decreasing** speed (slowest first);
    /// ties broken by id. This is the ordering used by Lemmas 3 and 4.
    pub fn by_speed_asc(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.procs().collect();
        ids.sort_by(|a, b| self.speed(*a).cmp(&self.speed(*b)).then(a.0.cmp(&b.0)));
        ids
    }

    /// True iff all processors have the same speed.
    pub fn is_homogeneous(&self) -> bool {
        self.speeds.windows(2).all(|s| s[0] == s[1])
    }

    /// Time for processor `u` to execute `work` operations, `work / s_u`.
    #[inline]
    pub fn time(&self, proc: ProcId, work: u64) -> Rat {
        Rat::ratio(work, self.speed(proc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_platform() {
        let p = Platform::homogeneous(3, 2);
        assert_eq!(p.n_procs(), 3);
        assert!(p.is_homogeneous());
        assert_eq!(p.total_speed(), 6);
        assert_eq!(p.speed(ProcId(1)), 2);
        assert_eq!(p.time(ProcId(0), 7), Rat::new(7, 2));
    }

    #[test]
    fn heterogeneous_platform() {
        // the Section 2 heterogeneous platform: two fast, two slow
        let p = Platform::heterogeneous(vec![2, 2, 1, 1]);
        assert!(!p.is_homogeneous());
        assert_eq!(p.total_speed(), 6);
        assert_eq!(p.fastest(), ProcId(0));
        assert_eq!(
            p.by_speed_desc(),
            vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]
        );
        assert_eq!(
            p.by_speed_asc(),
            vec![ProcId(2), ProcId(3), ProcId(0), ProcId(1)]
        );
    }

    #[test]
    fn subset_aggregates() {
        let p = Platform::heterogeneous(vec![5, 3, 8]);
        let set = vec![ProcId(0), ProcId(2)];
        assert_eq!(p.subset_speed(&set), 13);
        assert_eq!(p.subset_min_speed(&set), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_panics() {
        let _ = Platform::heterogeneous(vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_platform_panics() {
        let _ = Platform::heterogeneous(vec![]);
    }

    #[test]
    fn sorting_is_deterministic_on_ties() {
        let p = Platform::heterogeneous(vec![4, 4, 4]);
        assert_eq!(p.by_speed_desc(), vec![ProcId(0), ProcId(1), ProcId(2)]);
        assert_eq!(p.by_speed_asc(), vec![ProcId(0), ProcId(1), ProcId(2)]);
        assert_eq!(p.fastest(), ProcId(0));
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::heterogeneous(vec![2, 2, 1, 1]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn fail_free_platform_serializes_without_failure_field() {
        let p = Platform::heterogeneous(vec![3, 2, 1]);
        assert_eq!(serde_json::to_string(&p).unwrap(), r#"{"speeds":[3,2,1]}"#);
        assert!(!p.can_fail());
        assert_eq!(p.failure_prob(ProcId(1)), Rat::ZERO);
    }

    #[test]
    fn failure_probs_round_trip_both_paths() {
        let p = Platform::heterogeneous(vec![3, 2])
            .with_failure_probs(vec![Rat::new(1, 10), Rat::ZERO]);
        assert!(p.can_fail());
        assert_eq!(p.failure_prob(ProcId(0)), Rat::new(1, 10));
        assert_eq!(p.failure_prob(ProcId(1)), Rat::ZERO);
        let json = serde_json::to_string(&p).unwrap();
        let tree: Platform = serde_json::from_str(&json).unwrap();
        let streamed: Platform = serde_json::from_str_streaming(&json).unwrap();
        assert_eq!(p, tree);
        assert_eq!(p, streamed);
    }

    #[test]
    fn all_zero_failure_probs_normalize_to_fail_free() {
        let p = Platform::homogeneous(2, 1).with_failure_probs(vec![Rat::ZERO, Rat::ZERO]);
        assert!(!p.can_fail());
        assert_eq!(p, Platform::homogeneous(2, 1));
        assert_eq!(serde_json::to_string(&p).unwrap(), r#"{"speeds":[1,1]}"#);
    }

    #[test]
    fn invalid_failure_probs_rejected() {
        // wrong length
        let json = r#"{"speeds":[1,1],"failure":[{"num":1,"den":10}]}"#;
        assert!(serde_json::from_str::<Platform>(json).is_err());
        assert!(serde_json::from_str_streaming::<Platform>(json).is_err());
        // probability of one (certain failure) is out of range
        let json = r#"{"speeds":[1],"failure":[{"num":1,"den":1}]}"#;
        assert!(serde_json::from_str::<Platform>(json).is_err());
        // negative probability
        let json = r#"{"speeds":[1],"failure":[{"num":-1,"den":10}]}"#;
        assert!(serde_json::from_str::<Platform>(json).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid failure probabilities")]
    fn mismatched_failure_prob_length_panics() {
        let _ = Platform::homogeneous(3, 1).with_failure_probs(vec![Rat::new(1, 10)]);
    }
}
