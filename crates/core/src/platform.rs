//! Target platforms: sets of processors with (possibly different) speeds.
//!
//! The paper's *Homogeneous platform* has `p` identical processors of speed
//! `s`; the *Heterogeneous platform* has per-processor speeds `s_u`. The time
//! for processor `P_u` to execute `X` floating-point operations is `X / s_u`
//! (Section 3.2). Communication capacities of the general model live in
//! [`crate::comm`]; the simplified model of Section 3.4 ignores them.

use crate::rational::Rat;
use serde::{Deserialize, Serialize};

/// Identifier of a processor: an index into [`Platform::speeds`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub usize);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0 + 1) // paper numbers processors from 1
    }
}

/// A set of `p` processors with integer speeds.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    speeds: Vec<u64>,
}

impl Platform {
    /// Heterogeneous platform with the given per-processor speeds.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or any speed is zero.
    pub fn heterogeneous(speeds: Vec<u64>) -> Self {
        assert!(
            !speeds.is_empty(),
            "a platform needs at least one processor"
        );
        assert!(
            speeds.iter().all(|&s| s > 0),
            "processor speeds must be positive"
        );
        Platform { speeds }
    }

    /// Homogeneous platform: `p` processors of identical speed `s`.
    ///
    /// # Panics
    /// Panics if `p == 0` or `s == 0`.
    pub fn homogeneous(p: usize, s: u64) -> Self {
        assert!(p > 0, "a platform needs at least one processor");
        Platform::heterogeneous(vec![s; p])
    }

    /// Number of processors `p`.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.speeds.len()
    }

    /// Speed `s_u` of processor `u`.
    #[inline]
    pub fn speed(&self, proc: ProcId) -> u64 {
        self.speeds[proc.0]
    }

    /// All speeds, indexed by processor id.
    #[inline]
    pub fn speeds(&self) -> &[u64] {
        &self.speeds
    }

    /// All processor ids, `P_0 .. P_{p-1}`.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.speeds.len()).map(ProcId)
    }

    /// Aggregate speed `Σ s_u` of the whole platform.
    pub fn total_speed(&self) -> u64 {
        self.speeds.iter().sum()
    }

    /// Aggregate speed of a processor subset.
    pub fn subset_speed(&self, procs: &[ProcId]) -> u64 {
        procs.iter().map(|&q| self.speed(q)).sum()
    }

    /// Slowest speed in a processor subset.
    ///
    /// # Panics
    /// Panics if `procs` is empty.
    pub fn subset_min_speed(&self, procs: &[ProcId]) -> u64 {
        procs
            .iter()
            .map(|&q| self.speed(q))
            .min()
            .expect("empty processor subset")
    }

    /// The fastest processor (smallest id wins ties).
    pub fn fastest(&self) -> ProcId {
        let mut best = ProcId(0);
        for u in 1..self.speeds.len() {
            if self.speeds[u] > self.speeds[best.0] {
                best = ProcId(u);
            }
        }
        best
    }

    /// Processor ids sorted by **non-increasing** speed (fastest first);
    /// ties broken by id for determinism.
    pub fn by_speed_desc(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.procs().collect();
        ids.sort_by(|a, b| self.speed(*b).cmp(&self.speed(*a)).then(a.0.cmp(&b.0)));
        ids
    }

    /// Processor ids sorted by **non-decreasing** speed (slowest first);
    /// ties broken by id. This is the ordering used by Lemmas 3 and 4.
    pub fn by_speed_asc(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.procs().collect();
        ids.sort_by(|a, b| self.speed(*a).cmp(&self.speed(*b)).then(a.0.cmp(&b.0)));
        ids
    }

    /// True iff all processors have the same speed.
    pub fn is_homogeneous(&self) -> bool {
        self.speeds.windows(2).all(|s| s[0] == s[1])
    }

    /// Time for processor `u` to execute `work` operations, `work / s_u`.
    #[inline]
    pub fn time(&self, proc: ProcId, work: u64) -> Rat {
        Rat::ratio(work, self.speed(proc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_platform() {
        let p = Platform::homogeneous(3, 2);
        assert_eq!(p.n_procs(), 3);
        assert!(p.is_homogeneous());
        assert_eq!(p.total_speed(), 6);
        assert_eq!(p.speed(ProcId(1)), 2);
        assert_eq!(p.time(ProcId(0), 7), Rat::new(7, 2));
    }

    #[test]
    fn heterogeneous_platform() {
        // the Section 2 heterogeneous platform: two fast, two slow
        let p = Platform::heterogeneous(vec![2, 2, 1, 1]);
        assert!(!p.is_homogeneous());
        assert_eq!(p.total_speed(), 6);
        assert_eq!(p.fastest(), ProcId(0));
        assert_eq!(
            p.by_speed_desc(),
            vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]
        );
        assert_eq!(
            p.by_speed_asc(),
            vec![ProcId(2), ProcId(3), ProcId(0), ProcId(1)]
        );
    }

    #[test]
    fn subset_aggregates() {
        let p = Platform::heterogeneous(vec![5, 3, 8]);
        let set = vec![ProcId(0), ProcId(2)];
        assert_eq!(p.subset_speed(&set), 13);
        assert_eq!(p.subset_min_speed(&set), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_panics() {
        let _ = Platform::heterogeneous(vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_platform_panics() {
        let _ = Platform::heterogeneous(vec![]);
    }

    #[test]
    fn sorting_is_deterministic_on_ties() {
        let p = Platform::heterogeneous(vec![4, 4, 4]);
        assert_eq!(p.by_speed_desc(), vec![ProcId(0), ProcId(1), ProcId(2)]);
        assert_eq!(p.by_speed_asc(), vec![ProcId(0), ProcId(1), ProcId(2)]);
        assert_eq!(p.fastest(), ProcId(0));
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::heterogeneous(vec![2, 2, 1, 1]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
