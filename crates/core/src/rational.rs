//! Exact rational arithmetic.
//!
//! Every objective value in the paper — periods and latencies — is a ratio of
//! integer work to integer speed (possibly summed over intervals). Evaluating
//! the dynamic programs and binary searches of Theorems 3–4, 7–8, 11 and 14
//! with floating point would introduce tie-breaking artifacts precisely where
//! the proofs rely on exact equality (e.g. the candidate-period binary search
//! of Theorem 7 terminates on an exactly achievable value). [`Rat`] provides
//! gcd-normalized `i128` rationals with a total order, plus a `+∞` value so
//! the dynamic programs can use the paper's `W(i,j) = −∞ / L(i,j,0) = +∞`
//! sentinels directly.
//!
//! Overflow policy: all arithmetic is `checked` internally and panics on
//! overflow with a descriptive message. Workloads and speeds in this crate
//! are `u64`s produced by instance generators that keep magnitudes far below
//! the `i128` range; a panic here indicates a logic error, not a user error.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number with `i128` numerator and denominator, plus
/// signed infinities.
///
/// Invariants (maintained by every constructor):
/// * the denominator is non-negative;
/// * `den == 0` encodes infinity: `num == 1` is `+∞`, `num == -1` is `-∞`
///   (a `0/0` NaN is never representable);
/// * finite values are fully reduced (`gcd(|num|, den) == 1`) and `0` is
///   always stored as `0/1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rat {
    num: i128,
    den: i128,
}

#[inline]
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rat {
    /// Positive infinity (`1/0`). Absorbing for `+` and `max`.
    pub const INFINITY: Rat = Rat { num: 1, den: 0 };
    /// Negative infinity (`-1/0`).
    pub const NEG_INFINITY: Rat = Rat { num: -1, den: 0 };
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates the reduced rational `num / den`.
    ///
    /// # Panics
    /// Panics if `den == 0`; use [`Rat::INFINITY`] explicitly instead.
    #[inline]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(
            den != 0,
            "Rat::new with zero denominator; use Rat::INFINITY"
        );
        let g = gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// `value / 1`.
    #[inline]
    pub fn int(value: i128) -> Self {
        Rat { num: value, den: 1 }
    }

    /// Ratio of two unsigned quantities, the common case `work / speed`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[inline]
    pub fn ratio(num: u64, den: u64) -> Self {
        Rat::new(num as i128, den as i128)
    }

    /// Numerator of the reduced form (`±1` for infinities).
    #[inline]
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced form (`0` for infinities).
    #[inline]
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True for `+∞` and `-∞`.
    #[inline]
    pub fn is_infinite(&self) -> bool {
        self.den == 0
    }

    /// True for any finite value.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.den != 0
    }

    /// Nearest `f64` (infinities map to `f64` infinities). For reporting
    /// only; never used in algorithmic decisions.
    #[inline]
    pub fn to_f64(&self) -> f64 {
        if self.den == 0 {
            if self.num > 0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        } else {
            self.num as f64 / self.den as f64
        }
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    #[inline]
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on `0` (its inverse is not a signed infinity we can pick).
    #[inline]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "Rat::recip(0)");
        if self.den == 0 {
            Rat::ZERO
        } else {
            let sign = if self.num < 0 { -1 } else { 1 };
            Rat {
                num: sign * self.den,
                den: sign * self.num,
            }
        }
    }

    /// Largest integer `k` with `k <= self`.
    ///
    /// # Panics
    /// Panics on infinities.
    #[inline]
    pub fn floor(self) -> i128 {
        assert!(self.is_finite(), "Rat::floor(±∞)");
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `k` with `k >= self`.
    ///
    /// # Panics
    /// Panics on infinities.
    #[inline]
    pub fn ceil(self) -> i128 {
        assert!(self.is_finite(), "Rat::ceil(±∞)");
        -(-self.num).div_euclid(self.den)
    }

    /// Checked addition: `None` on `i128` overflow or `∞ + (-∞)`.
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        match (self.den, rhs.den) {
            (0, 0) => {
                if self.num == rhs.num {
                    Some(self)
                } else {
                    None // ∞ - ∞
                }
            }
            (0, _) => Some(self),
            (_, 0) => Some(rhs),
            _ => {
                // a/b + c/d = (a*(d/g) + c*(b/g)) / lcm(b, d)
                let g = gcd(self.den, rhs.den);
                let lhs_scale = rhs.den / g;
                let rhs_scale = self.den / g;
                let num = self
                    .num
                    .checked_mul(lhs_scale)?
                    .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
                let den = self.den.checked_mul(lhs_scale)?;
                Some(Rat::new(num, den))
            }
        }
    }

    /// Checked multiplication: `None` on overflow or `0 * ∞`.
    pub fn checked_mul(self, rhs: Rat) -> Option<Rat> {
        if self.den == 0 || rhs.den == 0 {
            // infinity times anything nonzero keeps sign product
            if self.num == 0 || rhs.num == 0 {
                return None; // 0 * ∞
            }
            let sign = self.num.signum() * rhs.num.signum();
            return Some(if sign > 0 {
                Rat::INFINITY
            } else {
                Rat::NEG_INFINITY
            });
        }
        // cross-reduce before multiplying to keep magnitudes small
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rat::new(num, den))
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 0 {
            write!(f, "{}", if self.num > 0 { "+inf" } else { "-inf" })
        } else if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.den, other.den) {
            (0, 0) => self.num.cmp(&other.num),
            (0, _) => {
                if self.num > 0 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (_, 0) => {
                if other.num > 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            _ => {
                // a/b vs c/d with b,d > 0  <=>  a*d vs c*b
                let lhs = self
                    .num
                    .checked_mul(other.den)
                    .expect("Rat::cmp overflow (lhs)");
                let rhs = other
                    .num
                    .checked_mul(self.den)
                    .expect("Rat::cmp overflow (rhs)");
                lhs.cmp(&rhs)
            }
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    #[inline]
    fn add(self, rhs: Rat) -> Rat {
        self.checked_add(rhs)
            .unwrap_or_else(|| panic!("Rat overflow or ∞-∞ in {self} + {rhs}"))
    }
}

impl Sub for Rat {
    type Output = Rat;
    #[inline]
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    #[inline]
    fn mul(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs)
            .unwrap_or_else(|| panic!("Rat overflow or 0·∞ in {self} * {rhs}"))
    }
}

impl Div for Rat {
    type Output = Rat;
    #[inline]
    fn div(self, rhs: Rat) -> Rat {
        assert!(
            !(self.den == 0 && rhs.den == 0),
            "Rat division of two infinities"
        );
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    #[inline]
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Rat {
    fn from(v: u64) -> Self {
        Rat::int(v as i128)
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::int(v as i128)
    }
}

impl From<u32> for Rat {
    fn from(v: u32) -> Self {
        Rat::int(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(1, -2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(0, -7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::new(7, 7) == Rat::ONE);
        assert!(Rat::INFINITY > Rat::int(i64::MAX as i128));
        assert!(Rat::NEG_INFINITY < Rat::int(i64::MIN as i128));
        assert!(Rat::NEG_INFINITY < Rat::INFINITY);
    }

    #[test]
    fn infinity_absorbs_addition() {
        assert_eq!(Rat::INFINITY + Rat::new(3, 4), Rat::INFINITY);
        assert_eq!(Rat::new(3, 4) + Rat::INFINITY, Rat::INFINITY);
        assert_eq!(Rat::INFINITY + Rat::INFINITY, Rat::INFINITY);
        assert_eq!(Rat::INFINITY.checked_add(Rat::NEG_INFINITY), None);
    }

    #[test]
    fn infinity_multiplication() {
        assert_eq!(Rat::INFINITY * Rat::new(3, 4), Rat::INFINITY);
        assert_eq!(Rat::INFINITY * Rat::new(-3, 4), Rat::NEG_INFINITY);
        assert_eq!(Rat::INFINITY.checked_mul(Rat::ZERO), None);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn recip() {
        assert_eq!(Rat::new(3, 4).recip(), Rat::new(4, 3));
        assert_eq!(Rat::new(-3, 4).recip(), Rat::new(-4, 3));
        assert_eq!(Rat::INFINITY.recip(), Rat::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(1, 2).to_string(), "1/2");
        assert_eq!(Rat::int(5).to_string(), "5");
        assert_eq!(Rat::INFINITY.to_string(), "+inf");
        assert_eq!(Rat::NEG_INFINITY.to_string(), "-inf");
    }

    #[test]
    fn sum_iterator() {
        let total: Rat = [Rat::new(1, 2), Rat::new(1, 3), Rat::new(1, 6)]
            .into_iter()
            .sum();
        assert_eq!(total, Rat::ONE);
    }

    #[test]
    fn paper_section2_values() {
        // period of replicating [14,4,2,4] over 3 unit processors: 24/3 = 8
        let total = Rat::int(14 + 4 + 2 + 4);
        assert_eq!(total / Rat::int(3), Rat::int(8));
        // data-parallel S1 on speeds {2,2}: 14/4, plus 10 on one slow proc
        assert_eq!(Rat::new(14, 4) + Rat::int(10), Rat::new(27, 2)); // 13.5
                                                                     // data-parallel S1 on speeds {2,2,1}: 14/5 + 10 = 12.8
        assert_eq!(Rat::new(14, 5) + Rat::int(10), Rat::new(64, 5));
    }

    #[test]
    fn min_max() {
        assert_eq!(Rat::new(1, 2).max(Rat::new(2, 3)), Rat::new(2, 3));
        assert_eq!(Rat::new(1, 2).min(Rat::new(2, 3)), Rat::new(1, 2));
    }

    #[test]
    fn to_f64() {
        assert_eq!(Rat::new(1, 2).to_f64(), 0.5);
        assert_eq!(Rat::INFINITY.to_f64(), f64::INFINITY);
        assert_eq!(Rat::NEG_INFINITY.to_f64(), f64::NEG_INFINITY);
    }
}
