//! # repliflow-core
//!
//! Model substrate for *"Complexity results for throughput and latency
//! optimization of replicated and data-parallel workflows"* (Benoit &
//! Robert, Cluster 2007): application graphs, platforms, mappings, and the
//! exact-rational cost model.
//!
//! The crate encodes Section 3 of the paper:
//!
//! * [`workflow`] — pipeline (Figure 1), fork (Figure 2) and fork-join
//!   (Section 6.3) application graphs;
//! * [`platform`] — homogeneous / heterogeneous processor sets;
//! * [`mapping`] — interval-based mappings with replicated and
//!   data-parallel stage groups, including all structural legality rules;
//! * [`cost`] — the simplified model of Section 3.4 (no communication);
//! * [`comm`] — the general model of Sections 3.2–3.3 with link
//!   bandwidths, one-port and bounded multi-port disciplines;
//! * [`comm_cost`] — the general model evaluated over arbitrary legal
//!   mappings (replication and data-parallelism included), the engine
//!   behind [`instance::CostModel::WithComm`];
//! * [`rational`] — exact arithmetic so optimality is decided without
//!   floating-point ties;
//! * [`instance`] — problem instances and the Table 1 variant taxonomy;
//! * [`gen`] — seeded random-instance generators shared by tests and
//!   benches;
//! * [`fingerprint`] — canonical 128-bit instance identities (stable
//!   under JSON field order and round-trips), the cache key substrate
//!   of the serving layer;
//! * [`reliability`] — the Benoit/Rehn-Sonigo/Robert 2008 failure
//!   model: per-processor failure probabilities, mapping success
//!   probabilities, and the reliability-bound degeneracy analysis;
//! * [`dot`] — Figure 1/2 rendering (Graphviz DOT and ASCII).
//!
//! Higher-level crates build on this one: `repliflow-algorithms`
//! (polynomial algorithms), `repliflow-exact` (ground-truth solvers),
//! `repliflow-reductions` (NP-hardness), `repliflow-heuristics`, and
//! `repliflow-sim` (discrete-event validation).

#![warn(missing_docs)]

pub mod comm;
pub mod comm_cost;
pub mod cost;
pub mod dot;
pub mod error;
pub mod fingerprint;
pub mod gen;
pub mod instance;
pub mod mapping;
pub mod platform;
pub mod rational;
pub mod reliability;
pub mod workflow;

/// The most used types, for glob import.
pub mod prelude {
    pub use crate::comm::{CommModel, Network, StartRule};
    pub use crate::error::Error;
    pub use crate::fingerprint::InstanceFingerprint;
    pub use crate::instance::{CostModel, Objective, ProblemInstance, Variant};
    pub use crate::mapping::{Assignment, Mapping, Mode};
    pub use crate::platform::{Platform, ProcId};
    pub use crate::rational::Rat;
    pub use crate::workflow::{Fork, ForkJoin, Pipeline, Workflow};
}
