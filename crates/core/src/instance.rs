//! Problem instances and the sixteen-variant taxonomy of Table 1.
//!
//! A [`ProblemInstance`] bundles an application graph, a platform and the
//! model flag (*with* or *without* data-parallelism; replication is always
//! allowed, matching Section 4). [`Variant`] names the cell of Table 1 an
//! instance belongs to, which the benchmark harness uses to regenerate the
//! table.

use crate::comm::{CommModel, Network, StartRule};
use crate::comm_cost;
use crate::error::Error;
use crate::mapping::Mapping;
use crate::platform::Platform;
use crate::rational::Rat;
use crate::workflow::Workflow;
use serde::{Deserialize, Serialize};

/// The optimization objective of a mapping problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize the period (maximize throughput).
    Period,
    /// Minimize the latency (response time).
    Latency,
    /// Minimize the latency subject to `period <= bound`.
    LatencyUnderPeriod(Rat),
    /// Minimize the period subject to `latency <= bound`.
    PeriodUnderLatency(Rat),
    /// Minimize the latency subject to `period < bound` (strict).
    ///
    /// The strict variants exist for the ε-constraint Pareto sweep:
    /// over exact rationals there is no smallest ε, so "strictly better
    /// than the previous front point" must be a first-class constraint
    /// rather than a `bound - ε` approximation.
    LatencyUnderPeriodStrict(Rat),
    /// Minimize the period subject to `latency < bound` (strict).
    PeriodUnderLatencyStrict(Rat),
    /// Minimize the latency subject to the mapping's success
    /// probability being at least `bound` (the reliability model of
    /// Benoit/Rehn-Sonigo/Robert 2008 — see `crate::reliability`).
    ///
    /// Reliability depends on the *mapping*, not on the `(period,
    /// latency)` pair, so [`Objective::score`]/[`Objective::meets_bound`]
    /// treat this like plain [`Objective::Latency`]; the bound is
    /// enforced where the mapping is in hand (the heuristic scoring
    /// funnel, the exact enumerators, the registry's defense check) via
    /// [`Objective::reliability_bound`].
    LatencyUnderReliability(Rat),
    /// Minimize the period subject to the mapping's success probability
    /// being at least `bound`.
    PeriodUnderReliability(Rat),
}

impl Objective {
    /// Lexicographic `(primary, tiebreak)` score of an evaluated
    /// `(period, latency)` pair — smaller is better, bi-criteria bound
    /// violations score [`Rat::INFINITY`] in the primary slot. The one
    /// ordering every search (heuristic portfolios, branch-and-bound)
    /// ranks mappings by.
    pub fn score(self, period: Rat, latency: Rat) -> (Rat, Rat) {
        match self {
            Objective::Period => (period, latency),
            Objective::Latency => (latency, period),
            Objective::LatencyUnderPeriod(bound) => {
                if period <= bound {
                    (latency, period)
                } else {
                    (Rat::INFINITY, period)
                }
            }
            Objective::PeriodUnderLatency(bound) => {
                if latency <= bound {
                    (period, latency)
                } else {
                    (Rat::INFINITY, latency)
                }
            }
            Objective::LatencyUnderPeriodStrict(bound) => {
                if period < bound {
                    (latency, period)
                } else {
                    (Rat::INFINITY, period)
                }
            }
            Objective::PeriodUnderLatencyStrict(bound) => {
                if latency < bound {
                    (period, latency)
                } else {
                    (Rat::INFINITY, latency)
                }
            }
            // reliability is a property of the mapping, not of the
            // (period, latency) pair — enforced at the scoring funnel
            // that has the mapping (see `Objective::reliability_bound`)
            Objective::LatencyUnderReliability(_) => (latency, period),
            Objective::PeriodUnderReliability(_) => (period, latency),
        }
    }

    /// Whether `(period, latency)` meets this objective's bi-criteria
    /// bound (vacuously true for single-criterion objectives, and for
    /// the reliability-bounded ones — their bound constrains the
    /// mapping, not this pair; see [`Objective::reliability_bound`]).
    pub fn meets_bound(self, period: Rat, latency: Rat) -> bool {
        match self {
            Objective::Period
            | Objective::Latency
            | Objective::LatencyUnderReliability(_)
            | Objective::PeriodUnderReliability(_) => true,
            Objective::LatencyUnderPeriod(bound) => period <= bound,
            Objective::PeriodUnderLatency(bound) => latency <= bound,
            Objective::LatencyUnderPeriodStrict(bound) => period < bound,
            Objective::PeriodUnderLatencyStrict(bound) => latency < bound,
        }
    }

    /// The success-probability lower bound of a reliability-constrained
    /// objective (`None` for every other objective).
    pub fn reliability_bound(self) -> Option<Rat> {
        match self {
            Objective::LatencyUnderReliability(bound)
            | Objective::PeriodUnderReliability(bound) => Some(bound),
            _ => None,
        }
    }

    /// Whether this is a strict (`<`) ε-constraint variant — the bound
    /// form the Pareto-front sweep advances with (the paper's theorem
    /// algorithms take non-strict bounds only).
    pub fn is_strict(self) -> bool {
        matches!(
            self,
            Objective::LatencyUnderPeriodStrict(_) | Objective::PeriodUnderLatencyStrict(_)
        )
    }
}

/// Which cost model evaluates mappings of an instance.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// The simplified model of Section 3.4: communication is free.
    #[default]
    Simplified,
    /// The general model of Sections 3.2–3.3: transfers cost
    /// `size / bandwidth` over the given network.
    WithComm {
        /// Link bandwidths (including `P_in`/`P_out` links).
        network: Network,
        /// One-port or bounded multi-port send discipline.
        comm: CommModel,
        /// Whether fork sends may overlap the root group's remaining
        /// computation (`true` = the paper's *flexible* rule, matching
        /// the simplified model's timing; `false` = *strict*).
        overlap: bool,
    },
}

impl CostModel {
    /// True for [`CostModel::WithComm`].
    pub fn is_comm_aware(&self) -> bool {
        matches!(self, CostModel::WithComm { .. })
    }

    /// The fork send-start rule implied by the overlap flag
    /// ([`StartRule::Flexible`] for the simplified model).
    pub fn start_rule(&self) -> StartRule {
        match self {
            CostModel::Simplified => StartRule::Flexible,
            CostModel::WithComm { overlap: true, .. } => StartRule::Flexible,
            CostModel::WithComm { overlap: false, .. } => StartRule::Strict,
        }
    }
}

impl std::fmt::Display for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostModel::Simplified => f.write_str("simplified"),
            CostModel::WithComm { comm, overlap, .. } => {
                let rule = if *overlap { "overlapped" } else { "strict" };
                write!(f, "comm {comm}, {rule}")
            }
        }
    }
}

/// A complete problem instance.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ProblemInstance {
    /// The application graph.
    pub workflow: Workflow,
    /// The target platform.
    pub platform: Platform,
    /// Whether stages may be data-parallelized (the paper's "with
    /// data-par" column); replication is always permitted.
    pub allow_data_parallel: bool,
    /// What to optimize.
    pub objective: Objective,
    /// Which cost model evaluates mappings (defaults to
    /// [`CostModel::Simplified`], including for JSON instances that omit
    /// the field).
    pub cost_model: CostModel,
}

// Hand-written so pre-existing instance JSON without a `cost_model`
// field keeps deserializing (the vendored derive has no
// `#[serde(default)]` support).
impl serde::Deserialize for ProblemInstance {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::de::Error> {
        let field = |name: &str| {
            value
                .field(name)
                .ok_or_else(|| serde::de::Error::missing_field(name, "ProblemInstance"))
        };
        Ok(ProblemInstance {
            workflow: serde::Deserialize::deserialize(field("workflow")?)?,
            platform: serde::Deserialize::deserialize(field("platform")?)?,
            allow_data_parallel: serde::Deserialize::deserialize(field("allow_data_parallel")?)?,
            objective: serde::Deserialize::deserialize(field("objective")?)?,
            cost_model: match value.field("cost_model") {
                Some(v) => serde::Deserialize::deserialize(v)?,
                None => CostModel::Simplified,
            },
        })
    }
}

// Hand-written for the same reason as the tree impl above: `cost_model`
// defaults to `Simplified` when absent. This is the near-linear load
// path for multi-MB instance files (`serde_json::from_str_streaming`).
impl serde::DeserializeStream for ProblemInstance {
    fn deserialize_stream(
        parser: &mut serde::de::JsonParser<'_>,
    ) -> Result<Self, serde::de::Error> {
        let mut workflow = None;
        let mut platform = None;
        let mut allow_data_parallel = None;
        let mut objective = None;
        let mut cost_model = None;
        parser.begin_object()?;
        let mut first = true;
        while let Some(key) = parser.object_next(first)? {
            first = false;
            match key.as_ref() {
                "workflow" => {
                    workflow = Some(serde::DeserializeStream::deserialize_stream(parser)?)
                }
                "platform" => {
                    platform = Some(serde::DeserializeStream::deserialize_stream(parser)?)
                }
                "allow_data_parallel" => {
                    allow_data_parallel =
                        Some(serde::DeserializeStream::deserialize_stream(parser)?)
                }
                "objective" => {
                    objective = Some(serde::DeserializeStream::deserialize_stream(parser)?)
                }
                "cost_model" => {
                    cost_model = Some(serde::DeserializeStream::deserialize_stream(parser)?)
                }
                _ => parser.skip_value()?,
            }
        }
        let missing = |name| serde::de::Error::missing_field(name, "ProblemInstance");
        Ok(ProblemInstance {
            workflow: workflow.ok_or_else(|| missing("workflow"))?,
            platform: platform.ok_or_else(|| missing("platform"))?,
            allow_data_parallel: allow_data_parallel
                .ok_or_else(|| missing("allow_data_parallel"))?,
            objective: objective.ok_or_else(|| missing("objective"))?,
            cost_model: cost_model.unwrap_or(CostModel::Simplified),
        })
    }
}

impl ProblemInstance {
    /// Instance under the simplified Section 3.4 model (the common
    /// case; switch models with [`ProblemInstance::with_cost_model`]).
    pub fn new(
        workflow: impl Into<Workflow>,
        platform: Platform,
        allow_data_parallel: bool,
        objective: Objective,
    ) -> ProblemInstance {
        ProblemInstance {
            workflow: workflow.into(),
            platform,
            allow_data_parallel,
            objective,
            cost_model: CostModel::Simplified,
        }
    }

    /// Period of `mapping` under this instance's cost model.
    pub fn period(&self, mapping: &Mapping) -> Result<Rat, Error> {
        self.objectives(mapping).map(|(period, _)| period)
    }

    /// Latency of `mapping` under this instance's cost model.
    pub fn latency(&self, mapping: &Mapping) -> Result<Rat, Error> {
        self.objectives(mapping).map(|(_, latency)| latency)
    }

    /// Both objectives of `mapping` in one evaluation — under the
    /// communication-aware model this shares validation and the
    /// per-group transfer terms between period and latency, which is
    /// what the enumeration/search hot paths want.
    pub fn objectives(&self, mapping: &Mapping) -> Result<(Rat, Rat), Error> {
        match &self.cost_model {
            CostModel::Simplified => Ok((
                self.workflow.period(&self.platform, mapping)?,
                self.workflow.latency(&self.platform, mapping)?,
            )),
            CostModel::WithComm { network, comm, .. } => {
                let start = self.cost_model.start_rule();
                match &self.workflow {
                    Workflow::Pipeline(p) => {
                        comm_cost::pipeline_objectives(p, &self.platform, network, mapping)
                    }
                    Workflow::Fork(f) => comm_cost::fork_objectives(
                        f,
                        &self.platform,
                        network,
                        *comm,
                        start,
                        mapping,
                    ),
                    Workflow::ForkJoin(fj) => comm_cost::forkjoin_objectives(
                        fj,
                        &self.platform,
                        network,
                        *comm,
                        start,
                        mapping,
                    ),
                }
            }
        }
    }

    /// Replaces the cost model (builder style).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> ProblemInstance {
        self.cost_model = cost_model;
        self
    }
    /// Classifies this instance into its Table 1 cell.
    pub fn variant(&self) -> Variant {
        Variant {
            graph: match &self.workflow {
                Workflow::Pipeline(p) => {
                    if p.is_homogeneous() {
                        GraphClass::HomPipeline
                    } else {
                        GraphClass::HetPipeline
                    }
                }
                Workflow::Fork(f) => {
                    if f.is_homogeneous() {
                        GraphClass::HomFork
                    } else {
                        GraphClass::HetFork
                    }
                }
                Workflow::ForkJoin(fj) => {
                    if fj.is_homogeneous() {
                        GraphClass::HomForkJoin
                    } else {
                        GraphClass::HetForkJoin
                    }
                }
            },
            platform: if self.platform.is_homogeneous() {
                PlatformClass::Homogeneous
            } else {
                PlatformClass::Heterogeneous
            },
            data_parallel: self.allow_data_parallel,
            objective: match self.objective {
                Objective::Period => ObjectiveClass::Period,
                Objective::Latency => ObjectiveClass::Latency,
                Objective::LatencyUnderPeriod(_)
                | Objective::PeriodUnderLatency(_)
                | Objective::LatencyUnderPeriodStrict(_)
                | Objective::PeriodUnderLatencyStrict(_) => ObjectiveClass::BiCriteria,
                Objective::LatencyUnderReliability(_) | Objective::PeriodUnderReliability(_) => {
                    ObjectiveClass::Reliability
                }
            },
        }
    }
}

/// Row class of Table 1 (application graph kind).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphClass {
    /// Pipeline with identical stage weights.
    HomPipeline,
    /// Pipeline with arbitrary stage weights.
    HetPipeline,
    /// Fork with identical leaf weights.
    HomFork,
    /// Fork with arbitrary leaf weights.
    HetFork,
    /// Fork-join with identical leaf weights (Section 6.3 extension).
    HomForkJoin,
    /// Fork-join with arbitrary leaf weights (Section 6.3 extension).
    HetForkJoin,
}

/// Platform column of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformClass {
    /// Identical processors.
    Homogeneous,
    /// Different-speed processors.
    Heterogeneous,
}

/// Objective column of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectiveClass {
    /// Period minimization ("P").
    Period,
    /// Latency minimization ("L").
    Latency,
    /// Bi-criteria ("both").
    BiCriteria,
    /// Reliability-constrained (period or latency under a success-
    /// probability bound — the Benoit/Rehn-Sonigo/Robert 2008
    /// extension; outside the source paper's Table 1).
    Reliability,
}

/// One cell of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Variant {
    /// Application graph class.
    pub graph: GraphClass,
    /// Platform class.
    pub platform: PlatformClass,
    /// Model with (`true`) or without (`false`) data-parallel stages.
    pub data_parallel: bool,
    /// Objective class.
    pub objective: ObjectiveClass,
}

/// The complexity of a Table 1 cell as established by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Complexity {
    /// Polynomial, with the theorem providing the algorithm.
    Polynomial(&'static str),
    /// NP-hard, with the theorem providing the reduction.
    NpHard(&'static str),
}

impl Variant {
    /// The paper's complexity classification of this cell (Table 1),
    /// restricted to pipeline/fork (fork-join inherits its fork
    /// counterpart per Section 6.3).
    pub fn paper_complexity(&self) -> Complexity {
        use Complexity::*;
        use GraphClass::*;
        use ObjectiveClass::*;
        use PlatformClass::*;
        // Reliability-constrained cells are outside the source paper's
        // Table 1; the successor paper (Benoit/Rehn-Sonigo/Robert 2008)
        // establishes NP-hardness for the heterogeneous bi-criteria
        // latency/reliability problem, and we conservatively classify
        // the whole column as hard: no polynomial paper algorithm is
        // available, which keeps the paper engine unrouted here.
        if self.objective == Reliability {
            return NpHard("BRS'08");
        }
        let graph = match self.graph {
            HomForkJoin => HomFork,
            HetForkJoin => HetFork,
            g => g,
        };
        match (graph, self.platform, self.data_parallel, self.objective) {
            // ---- Homogeneous platforms ----
            // Pipelines: everything polynomial (Theorems 1-4).
            (HomPipeline | HetPipeline, Homogeneous, false, Period) => Polynomial("Thm 1"),
            (HomPipeline | HetPipeline, Homogeneous, false, Latency) => Polynomial("Thm 2"),
            (HomPipeline | HetPipeline, Homogeneous, false, BiCriteria) => Polynomial("Cor 1"),
            (HomPipeline | HetPipeline, Homogeneous, true, Period) => Polynomial("Thm 1"),
            (HomPipeline | HetPipeline, Homogeneous, true, Latency) => Polynomial("Thm 3"),
            (HomPipeline | HetPipeline, Homogeneous, true, BiCriteria) => Polynomial("Thm 4"),
            // Forks on homogeneous platforms.
            (HomFork | HetFork, Homogeneous, _, Period) => Polynomial("Thm 10"),
            (HomFork, Homogeneous, _, Latency) => Polynomial("Thm 11"),
            (HomFork, Homogeneous, _, BiCriteria) => Polynomial("Thm 11"),
            (HetFork, Homogeneous, _, Latency | BiCriteria) => NpHard("Thm 12"),
            // ---- Heterogeneous platforms ----
            (HomPipeline, Heterogeneous, false, Period) => Polynomial("Thm 7"),
            (HomPipeline, Heterogeneous, false, Latency) => Polynomial("Thm 6"),
            (HomPipeline, Heterogeneous, false, BiCriteria) => Polynomial("Thm 8"),
            (HomPipeline, Heterogeneous, true, _) => NpHard("Thm 5"),
            (HetPipeline, Heterogeneous, false, Period) => NpHard("Thm 9"),
            (HetPipeline, Heterogeneous, false, Latency) => Polynomial("Thm 6"),
            (HetPipeline, Heterogeneous, false, BiCriteria) => NpHard("Thm 9"),
            (HetPipeline, Heterogeneous, true, _) => NpHard("Thm 5"),
            (HomFork, Heterogeneous, false, _) => Polynomial("Thm 14"),
            (HomFork, Heterogeneous, true, _) => NpHard("Thm 13"),
            (HetFork, Heterogeneous, _, _) => NpHard("Thm 15"),
            (HomForkJoin | HetForkJoin, _, _, _) => unreachable!("normalized above"),
            (_, _, _, Reliability) => unreachable!("handled by the early return above"),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = match self.graph {
            GraphClass::HomPipeline => "Hom. pipeline",
            GraphClass::HetPipeline => "Het. pipeline",
            GraphClass::HomFork => "Hom. fork",
            GraphClass::HetFork => "Het. fork",
            GraphClass::HomForkJoin => "Hom. fork-join",
            GraphClass::HetForkJoin => "Het. fork-join",
        };
        let p = match self.platform {
            PlatformClass::Homogeneous => "Hom. platform",
            PlatformClass::Heterogeneous => "Het. platform",
        };
        let dp = if self.data_parallel {
            "with data-par"
        } else {
            "without data-par"
        };
        let o = match self.objective {
            ObjectiveClass::Period => "P",
            ObjectiveClass::Latency => "L",
            ObjectiveClass::BiCriteria => "both",
            ObjectiveClass::Reliability => "reliability",
        };
        write!(f, "{g} / {p} / {dp} / {o}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{Fork, Pipeline};

    #[test]
    fn classification() {
        let inst = ProblemInstance {
            cost_model: CostModel::Simplified,
            workflow: Pipeline::uniform(4, 3).into(),
            platform: Platform::heterogeneous(vec![1, 2]),
            allow_data_parallel: false,
            objective: Objective::Period,
        };
        let v = inst.variant();
        assert_eq!(v.graph, GraphClass::HomPipeline);
        assert_eq!(v.platform, PlatformClass::Heterogeneous);
        assert_eq!(v.objective, ObjectiveClass::Period);
        assert_eq!(v.paper_complexity(), Complexity::Polynomial("Thm 7"));
    }

    #[test]
    fn np_hard_cells() {
        // Het pipeline period on het platform without DP: Theorem 9.
        let v = Variant {
            graph: GraphClass::HetPipeline,
            platform: PlatformClass::Heterogeneous,
            data_parallel: false,
            objective: ObjectiveClass::Period,
        };
        assert_eq!(v.paper_complexity(), Complexity::NpHard("Thm 9"));
        // Hom pipeline with DP on het platform: Theorem 5 (any objective).
        for o in [
            ObjectiveClass::Period,
            ObjectiveClass::Latency,
            ObjectiveClass::BiCriteria,
        ] {
            let v = Variant {
                graph: GraphClass::HomPipeline,
                platform: PlatformClass::Heterogeneous,
                data_parallel: true,
                objective: o,
            };
            assert_eq!(v.paper_complexity(), Complexity::NpHard("Thm 5"));
        }
    }

    #[test]
    fn fork_cells() {
        let v = Variant {
            graph: GraphClass::HetFork,
            platform: PlatformClass::Homogeneous,
            data_parallel: false,
            objective: ObjectiveClass::Latency,
        };
        assert_eq!(v.paper_complexity(), Complexity::NpHard("Thm 12"));
        let v = Variant {
            graph: GraphClass::HomFork,
            platform: PlatformClass::Heterogeneous,
            data_parallel: false,
            objective: ObjectiveClass::BiCriteria,
        };
        assert_eq!(v.paper_complexity(), Complexity::Polynomial("Thm 14"));
        let v = Variant {
            graph: GraphClass::HetFork,
            platform: PlatformClass::Heterogeneous,
            data_parallel: true,
            objective: ObjectiveClass::Period,
        };
        assert_eq!(v.paper_complexity(), Complexity::NpHard("Thm 15"));
    }

    #[test]
    fn forkjoin_inherits_fork_complexity() {
        let inst = ProblemInstance {
            cost_model: CostModel::Simplified,
            workflow: crate::workflow::ForkJoin::uniform(2, 3, 5, 1).into(),
            platform: Platform::heterogeneous(vec![1, 2]),
            allow_data_parallel: false,
            objective: Objective::Latency,
        };
        assert_eq!(
            inst.variant().paper_complexity(),
            Complexity::Polynomial("Thm 14")
        );
    }

    #[test]
    fn serde_round_trip() {
        let inst = ProblemInstance {
            cost_model: CostModel::Simplified,
            workflow: Fork::new(1, vec![2, 3]).into(),
            platform: Platform::homogeneous(2, 1),
            allow_data_parallel: true,
            objective: Objective::LatencyUnderPeriod(Rat::new(7, 2)),
        };
        let json = serde_json::to_string(&inst).unwrap();
        let back: ProblemInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn streaming_deserializer_matches_the_tree_path() {
        let inst = ProblemInstance {
            cost_model: CostModel::WithComm {
                network: crate::comm::Network::uniform(3, 2),
                comm: CommModel::BoundedMultiPort,
                overlap: true,
            },
            workflow: Pipeline::with_data_sizes(vec![8, 4], vec![8, 2, 8]).into(),
            platform: Platform::heterogeneous(vec![2, 2, 1]),
            allow_data_parallel: false,
            objective: Objective::PeriodUnderLatency(Rat::new(9, 2)),
        };
        for json in [
            serde_json::to_string(&inst).unwrap(),
            serde_json::to_string_pretty(&inst).unwrap(),
        ] {
            let tree: ProblemInstance = serde_json::from_str(&json).unwrap();
            let streamed: ProblemInstance = serde_json::from_str_streaming(&json).unwrap();
            assert_eq!(tree, streamed);
            assert_eq!(inst, streamed);
        }
    }

    #[test]
    fn streaming_deserializer_accepts_reordered_and_unknown_fields() {
        // field order is free in JSON and unknown keys are skipped —
        // the hand-rolled streaming impl must match the tree path here
        let json = r#"{
            "objective": "Period",
            "cost_model": "Simplified",
            "platform": { "speeds": [1, 1] },
            "comment": { "unknown": ["keys", "are", "skipped"] },
            "allow_data_parallel": true,
            "workflow": { "Pipeline": { "weights": [3, 5], "data_sizes": [0, 0, 0] } }
        }"#;
        let tree: ProblemInstance = serde_json::from_str(json).unwrap();
        let streamed: ProblemInstance = serde_json::from_str_streaming(json).unwrap();
        assert_eq!(tree, streamed);
    }

    #[test]
    fn display_names() {
        let v = Variant {
            graph: GraphClass::HomPipeline,
            platform: PlatformClass::Heterogeneous,
            data_parallel: true,
            objective: ObjectiveClass::BiCriteria,
        };
        assert_eq!(
            v.to_string(),
            "Hom. pipeline / Het. platform / with data-par / both"
        );
    }
}
